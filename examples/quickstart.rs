//! Quickstart: Figure 1 of the paper, running — a distributed ledger as
//! "blockchain + peer-to-peer network + consensus".
//!
//! Builds a 12-peer proof-of-work network over a gossip overlay, submits a
//! client transaction stream, runs two simulated hours, and reports the DCS
//! measurements (§2.7): throughput and latency (Scalability), fork/reorg
//! behaviour and replica agreement (Consistency), and who actually produced
//! the chain (Decentralization).
//!
//! Run with: `cargo run --example quickstart`

use dcs_ledger::{builders, collect, workload::Workload};
use dcs_primitives::ConsensusKind;
use dcs_sim::{SimDuration, SimTime};

fn main() {
    let seed = 42;

    // 1. Configure the network: 12 miners, 1 kH/s each, targeting 60 s
    //    blocks (a sped-up Bitcoin so the demo finishes instantly).
    let mut params = builders::PowParams {
        nodes: 12,
        hash_powers: vec![1_000.0],
        ..Default::default()
    };
    params.chain.consensus = ConsensusKind::ProofOfWork {
        initial_difficulty: 12 * 1_000 * 60,
        retarget_window: 16,
        target_interval_us: 60_000_000,
    };
    let mut runner = builders::build_pow(&params, seed);

    // 2. Clients submit 5 transfers per second for one simulated hour.
    let horizon = SimDuration::from_secs(3_600);
    let workload = Workload::transfers(5.0, horizon, 200);
    let submitted = workload.inject(runner.net_mut(), seed);
    println!("submitted {} transactions to random peers", submitted.len());

    // 3. Run the simulation (plus cooldown for in-flight blocks).
    runner.run_until(SimTime::ZERO + horizon + SimDuration::from_secs(300));

    // 4. Measure.
    let result = collect(runner.nodes(), &submitted, horizon);
    println!(
        "\n=== DCS report ({} peers, PoW, 60 s target) ===",
        params.nodes
    );
    println!("Scalability:");
    println!("  throughput          {:.2} tx/s", result.tps);
    println!(
        "  commit latency      mean {:.1} s, max {:.1} s",
        result.latency.mean(),
        result.latency.max()
    );
    println!("Consistency:");
    println!(
        "  blocks              {} canonical / {} total ({:.1}% stale)",
        result.canonical_blocks,
        result.total_blocks,
        result.stale_rate * 100.0
    );
    println!(
        "  reorgs              {} (deepest {})",
        result.reorgs, result.max_reorg_depth
    );
    println!("  replicas agree      {}", result.replicas_agree);
    println!("Decentralization:");
    println!("  proposer gini       {:.3}", result.proposer_gini);
    println!("  nakamoto coeff.     {}", result.nakamoto);
    println!(
        "  work expended       {:.2e} hash attempts ({:.2e} per block)",
        result.work_expended, result.work_per_block
    );
    println!(
        "\nnetwork: {} messages, {:.1} MB gossiped",
        runner.stats().sent,
        runner.stats().bytes_sent as f64 / 1e6
    );
    assert!(result.replicas_agree, "the ledger must converge");
}
