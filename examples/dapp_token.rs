//! Blockchain 2.0 (§3.2 of the paper): a decentralized application.
//!
//! Deploys the paper's §2.5 greeter ("Hello World") and a fungible token
//! contract on an account-model ledger, exercises the gas economics —
//! state-writing calls cost gas paid to the proposer, the constant `say()`
//! is free — and watches contract events through the middleware event bus.
//!
//! Run with: `cargo run --example dapp_token`

use dcs_chain::Chain;
use dcs_contracts::{exec, stdlib, AccountMachine};
use dcs_crypto::{sha256, Address};
use dcs_middleware::{EventBus, EventFilter};
use dcs_primitives::{AccountTx, Block, BlockHeader, ChainConfig, Seal, Transaction};

fn seal_block(chain: &mut Chain<AccountMachine>, txs: Vec<Transaction>) {
    let header = BlockHeader::new(
        chain.tip_hash(),
        chain.height() + 1,
        chain.height() + 1,
        Address::from_index(999), // block proposer: collects the gas fees
        Seal::Authority {
            view: 0,
            sequence: chain.height() + 1,
            votes: 1,
        },
    );
    chain.import(Block::new(header, txs)).expect("valid block");
}

fn main() {
    let alice = Address::from_index(1);
    let bob = Address::from_index(2);
    let proposer = Address::from_index(999);

    // A permissioned 2.0 chain with paid gas (Ethereum-style economics).
    let mut cfg = ChainConfig::hyperledger_like();
    cfg.gas = dcs_primitives::GasSchedule::default();
    let genesis = dcs_chain::genesis_block(&cfg);
    let machine = AccountMachine::with_alloc(&[(alice, 1_000_000_000), (bob, 1_000_000_000)]);
    let mut chain = Chain::new(genesis, cfg, machine);
    let mut bus = EventBus::new();

    // --- Deploy the greeter and the token in block 1. ---
    let greeter_deploy = AccountTx::deploy(alice, stdlib::greeter(), 0, 10_000_000);
    let greeter_addr = greeter_deploy.contract_address();
    let token_deploy = AccountTx::deploy(alice, stdlib::token(), 1, 10_000_000);
    let token_addr = token_deploy.contract_address();
    seal_block(
        &mut chain,
        vec![
            Transaction::Account(greeter_deploy),
            Transaction::Account(token_deploy),
        ],
    );
    println!("greeter deployed at {greeter_addr}");
    println!("token   deployed at {token_addr}");

    // Subscribe to everything the token emits.
    let token_events = bus.subscribe(EventFilter::contract(token_addr));

    // --- Block 2: setGreeting + mint + transfer. ---
    seal_block(
        &mut chain,
        vec![
            Transaction::Account(AccountTx::call(
                alice,
                greeter_addr,
                stdlib::greeter_set_input("hello, distributed world"),
                0,
                2,
                1_000_000,
            )),
            Transaction::Account(AccountTx::call(
                alice,
                token_addr,
                stdlib::token_mint_input(10_000),
                0,
                3,
                1_000_000,
            )),
            Transaction::Account(AccountTx::call(
                alice,
                token_addr,
                stdlib::token_transfer_input(&bob, 2_500),
                0,
                4,
                1_000_000,
            )),
        ],
    );

    // Fan receipts out to subscribers.
    for (block, receipts) in chain.drain_receipts() {
        bus.publish_block(block, &receipts);
        for r in &receipts {
            if r.gas_used > 0 {
                println!(
                    "tx {}…: {:?}, gas {}, fee {} → proposer",
                    &r.tx_id.to_string()[..8],
                    r.status,
                    r.gas_used,
                    r.fee_paid
                );
            }
        }
    }
    println!("token events observed: {}", bus.drain(token_events).len());

    // --- The free read path (§2.5: "it does not cost gas to execute"). ---
    let db = &mut chain.machine_mut().db;
    let greeting =
        exec::query(db, &greeter_addr, &alice, &stdlib::greeter_say_input()).expect("say() runs");
    println!(
        "say() → {:?}   (read-only: zero gas)",
        dcs_contracts::Word(greeting.try_into().expect("one word")).to_trimmed_string()
    );
    let bal = |db: &mut dcs_state::AccountDb, who: &Address| {
        let out = exec::query(db, &token_addr, who, &stdlib::token_balance_input(who)).unwrap();
        dcs_contracts::Word(out.try_into().expect("one word")).as_u64()
    };
    println!(
        "token balances: alice={}, bob={}",
        bal(db, &alice),
        bal(db, &bob)
    );
    println!("proposer fee revenue: {}", db.balance(&proposer));

    // Notarize a document hash for good measure (the 1-line ÐApp).
    let doc = sha256(b"Q3 audited financial statement");
    println!("document digest anchored: {doc}");
}
