//! Blockchain 3.0 (§3.3 of the paper): a pervasive consortium application —
//! supply-chain management across every layer of the blockchain stack
//! (Fig. 3).
//!
//! * Application/modeling: the shipment process is *modeled* as a
//!   BPMN-style workflow and compiled to a contract — the model is the
//!   contract.
//! * Contract layer: Fig. 3's trade-network registry tracks commodity
//!   ownership.
//! * System/data layers: a permissioned ledger executes and commits it.
//! * Middleware: a certificate authority admits consortium members; IoT
//!   temperature sensors (one tampered!) are aggregated by an oracle and
//!   anchored on-chain; the event bus notifies the retailer.
//! * Privacy: the financial settlement runs on a separate channel, with an
//!   atomic cross-channel swap (goods channel ↔ payment channel).
//!
//! Run with: `cargo run --example supply_chain`

use dcs_chain::Chain;
use dcs_contracts::{exec, stdlib, AccountMachine, Word};
use dcs_crypto::Address;
use dcs_middleware::workflow::{Transition, Workflow};
use dcs_middleware::{
    identity::Role, CertificateAuthority, EventBus, EventFilter, Oracle, Registry, Sensor,
    SensorConfig,
};
use dcs_primitives::{AccountTx, Block, BlockHeader, ChainConfig, GasSchedule, Seal, Transaction};
use dcs_privacy::{commitments::Hashlock, MultiChannel};
use dcs_sim::Rng;

fn seal_block(chain: &mut Chain<AccountMachine>, txs: Vec<Transaction>) {
    let header = BlockHeader::new(
        chain.tip_hash(),
        chain.height() + 1,
        chain.height() + 1,
        Address::from_index(999),
        Seal::Authority {
            view: 0,
            sequence: chain.height() + 1,
            votes: 1,
        },
    );
    chain.import(Block::new(header, txs)).expect("valid block");
}

fn main() {
    let mut rng = Rng::seed_from(2026);

    // --- Identity: the consortium admits its members. -------------------
    let mut ca = CertificateAuthority::new([7u8; 32], 4);
    let registry = Registry::new(ca.public_key());
    let producer_key = dcs_crypto::KeyPair::generate([1u8; 32], 2);
    let shipper_key = dcs_crypto::KeyPair::generate([2u8; 32], 2);
    let retailer_key = dcs_crypto::KeyPair::generate([3u8; 32], 2);
    let producer = producer_key.address();
    let shipper = shipper_key.address();
    let retailer = retailer_key.address();
    let certs = [
        ca.issue(producer_key.public_key(), Role::Peer).unwrap(),
        ca.issue(shipper_key.public_key(), Role::Peer).unwrap(),
        ca.issue(retailer_key.public_key(), Role::Peer).unwrap(),
    ];
    for cert in &certs {
        assert!(registry.verify(cert, Role::Client));
    }
    println!("consortium membership: 3 certificates issued and verified");

    // --- The goods ledger: trade registry contract. ---------------------
    let mut cfg = ChainConfig::hyperledger_like();
    cfg.gas = GasSchedule::free();
    let genesis = dcs_chain::genesis_block(&cfg);
    // Balances must cover the *offered* gas (limit × price) up-front, even
    // though the free schedule refunds it all.
    let gateway = Address::from_index(77); // the IoT gateway's own account
    let mut machine = AccountMachine::with_alloc(&[
        (producer, 100_000_000),
        (shipper, 100_000_000),
        (retailer, 100_000_000),
        (gateway, 100_000_000),
    ]);
    machine.schedule = GasSchedule::free(); // consortium: metered by policy

    let mut goods = Chain::new(genesis, cfg, machine);
    let mut bus = EventBus::new();

    let deploy = AccountTx::deploy(producer, stdlib::trade_registry(), 0, 10_000_000);
    let registry_addr = deploy.contract_address();
    seal_block(&mut goods, vec![Transaction::Account(deploy)]);
    let shipment_events = bus.subscribe(EventFilter::contract(registry_addr));

    // Producer registers the shipment, then trades it down the chain.
    let call = |from: Address, input: Vec<u8>, nonce: u64| {
        Transaction::Account(AccountTx::call(
            from,
            registry_addr,
            input,
            0,
            nonce,
            1_000_000,
        ))
    };
    seal_block(
        &mut goods,
        vec![call(
            producer,
            stdlib::trade_input(1, "GRAIN-LOT-7", None),
            1,
        )],
    );
    seal_block(
        &mut goods,
        vec![call(
            producer,
            stdlib::trade_input(2, "GRAIN-LOT-7", Some(&shipper)),
            2,
        )],
    );
    seal_block(
        &mut goods,
        vec![call(
            shipper,
            stdlib::trade_input(2, "GRAIN-LOT-7", Some(&retailer)),
            0,
        )],
    );

    for (block, receipts) in goods.drain_receipts() {
        bus.publish_block(block, &receipts);
    }
    println!(
        "shipment events delivered to the retailer's subscription: {}",
        bus.drain(shipment_events).len()
    );
    let owner = exec::query(
        &mut goods.machine_mut().db,
        &registry_addr,
        &retailer,
        &stdlib::trade_input(0, "GRAIN-LOT-7", None),
    )
    .expect("ownerOf runs");
    let owner = Word(owner.try_into().expect("one word")).as_address();
    assert_eq!(owner, retailer);
    println!("on-chain owner of GRAIN-LOT-7: retailer ✓");

    // --- IoT: cold-chain telemetry, tamper-resistant. --------------------
    let mut sensors: Vec<Sensor> = (0..4)
        .map(|_| {
            Sensor::new(SensorConfig {
                noise_std: 0.3,
                ..SensorConfig::default()
            })
        })
        .collect();
    // One sensor is compromised and reports a fake safe temperature.
    sensors.push(Sensor::new(SensorConfig {
        tampered_value: Some(4.0),
        ..SensorConfig::default()
    }));
    let mut oracle = Oracle::new(sensors, gateway);
    let mut anchored = Vec::new();
    for hour in 0..6u64 {
        let actual = 4.0 + 0.4 * hour as f64; // the truck is warming up!
        let agreed = oracle.measure(actual, &mut rng);
        let tx = oracle.anchor_tx(agreed, hour * 3_600_000_000);
        anchored.push(tx.clone());
        seal_block(&mut goods, vec![tx]);
    }
    let readings: Vec<f64> = anchored
        .iter()
        .map(|tx| Oracle::parse_anchor(tx).expect("anchored telemetry").0)
        .collect();
    println!(
        "cold-chain telemetry (median of 5 sensors, 1 tampered): {:?}",
        readings
            .iter()
            .map(|v| format!("{v:.1}°C"))
            .collect::<Vec<_>>()
    );
    assert!(
        readings.last().unwrap() > &5.0,
        "the warming trend is visible on-chain"
    );

    // --- Settlement: atomic swap across privacy domains (§5.3, E14). -----
    let mut channels = MultiChannel::new();
    let goods_ch = channels.create_channel(
        "goods-tokens",
        vec![producer, retailer],
        &[(retailer, 0), (producer, 100)], // producer holds 100 grain tokens
    );
    let pay_ch =
        channels.create_channel("payments", vec![producer, retailer], &[(retailer, 50_000)]);
    let secret = b"delivery-confirmed-lot7";
    let lock = Hashlock::from_secret(secret);
    let h_goods = channels
        .lock(goods_ch, producer, retailer, 100, lock, 10)
        .unwrap();
    let h_pay = channels
        .lock(pay_ch, retailer, producer, 45_000, lock, 5)
        .unwrap();
    channels.claim(pay_ch, producer, h_pay, secret).unwrap();
    let revealed = channels
        .revealed_preimage(pay_ch, retailer, h_pay)
        .unwrap()
        .expect("preimage published on the payment channel");
    channels
        .claim(goods_ch, retailer, h_goods, &revealed)
        .unwrap();
    println!(
        "atomic settlement: producer received {} (payments channel), retailer received {} grain tokens (goods channel)",
        channels.balance(pay_ch, producer, producer).unwrap(),
        channels.balance(goods_ch, retailer, retailer).unwrap(),
    );

    // --- Modeling layer: the process model IS the contract (§4.2). --------
    let process = Workflow {
        states: vec![
            "Production".into(),
            "Shipping".into(),
            "Validation".into(),
            "Agreement".into(),
        ],
        transitions: vec![
            Transition {
                name: "ship".into(),
                from: 0,
                to: 1,
                actor: producer,
            },
            Transition {
                name: "deliver".into(),
                from: 1,
                to: 2,
                actor: shipper,
            },
            Transition {
                name: "approve".into(),
                from: 2,
                to: 3,
                actor: retailer,
            },
        ],
    };
    let process_code = process.compile().expect("model compiles");
    let verification = dcs_contracts::verify::analyze(&process_code);
    println!(
        "workflow model compiled to {} bytes of contract code; static verifier: clean = {}",
        process_code.len(),
        verification.is_clean()
    );
    let wf_deploy = AccountTx::deploy(producer, process_code, 3, 10_000_000);
    let wf_addr = wf_deploy.contract_address();
    seal_block(&mut goods, vec![Transaction::Account(wf_deploy)]);
    // Fire ship → deliver → approve, each by its authorized actor.
    seal_block(
        &mut goods,
        vec![Transaction::Account(AccountTx::call(
            producer,
            wf_addr,
            process.fire_input(0),
            0,
            4,
            1_000_000,
        ))],
    );
    seal_block(
        &mut goods,
        vec![Transaction::Account(AccountTx::call(
            shipper,
            wf_addr,
            process.fire_input(1),
            0,
            1,
            1_000_000,
        ))],
    );
    seal_block(
        &mut goods,
        vec![Transaction::Account(AccountTx::call(
            retailer,
            wf_addr,
            process.fire_input(2),
            0,
            0,
            1_000_000,
        ))],
    );
    let state = exec::query(
        &mut goods.machine_mut().db,
        &wf_addr,
        &retailer,
        &process.state_input(),
    )
    .expect("state query");
    let state = Word(state.try_into().expect("one word")).as_u64();
    println!(
        "workflow state on-chain: {} ({})",
        state, process.states[state as usize]
    );

    // --- Analytics over the goods ledger. --------------------------------
    let report = dcs_middleware::analytics::analyze(&goods);
    println!(
        "goods ledger: {} blocks, {} transactions, mean utilization {:.1} tx/block",
        report.blocks, report.transactions, report.mean_block_utilization
    );
}
