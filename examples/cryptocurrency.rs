//! Blockchain 1.0 (§3.1 of the paper): cryptocurrency end to end.
//!
//! A UTXO ledger with *actually mined* proof-of-work blocks (real nonce
//! grinding at demo difficulty), witness-verified spends signed with
//! hash-based signatures, an SPV light wallet verifying a payment from
//! headers + a Merkle proof, and the privacy epilogue: taint tracing of a
//! "stolen" coin and its rehabilitation through a mixer.
//!
//! Run with: `cargo run --example cryptocurrency`

use dcs_chain::Chain;
use dcs_consensus::pow::mine_real;
use dcs_contracts::machine::UtxoMachine;
use dcs_crypto::{Address, Hash256, KeyPair, MerkleTree};
use dcs_primitives::{
    Block, BlockHeader, ChainConfig, Seal, Transaction, TxAuth, TxIn, TxOut, UtxoTx,
};
use dcs_privacy::TaintTracker;
use dcs_scale::light::LightClient;
use dcs_state::OutPoint;

const DIFFICULTY: u64 = 1 << 12; // ~4k hash attempts per block: instant demo

fn mine_block(chain: &mut Chain<UtxoMachine>, miner: Address, txs: Vec<Transaction>) -> Block {
    let mut body = vec![Transaction::Coinbase {
        to: miner,
        value: 50_0000_0000,
        height: chain.height() + 1,
    }];
    body.extend(txs);
    let template = Block::new(
        BlockHeader::new(
            chain.tip_hash(),
            chain.height() + 1,
            chain.height() + 1,
            miner,
            Seal::None,
        ),
        body,
    );
    let (header, attempts) = mine_real(template.header.clone(), DIFFICULTY, 0);
    let block = Block::from_parts(header, template.txs);
    println!(
        "mined block {} with {} hash attempts → {}",
        block.header.height,
        attempts,
        block.hash()
    );
    chain.import(block.clone()).expect("mined block is valid");
    block
}

fn main() {
    // Wallets: hash-based many-time keys (Merkle-WOTS).
    let mut alice = KeyPair::generate([1u8; 32], 4);
    let mut _bob = KeyPair::generate([2u8; 32], 4);
    let miner = Address::from_index(9);

    let mut cfg = ChainConfig::bitcoin_like();
    cfg.verify_signatures = true;
    let genesis = dcs_chain::genesis_block(&cfg);
    let mut machine = UtxoMachine::new();
    machine.set = dcs_state::UtxoSet::with_witness_verification();
    let alice_coin = machine.set.mint(alice.address(), 100_0000_0000); // genesis allocation
    let mut chain = Chain::new(genesis.clone(), cfg, machine);
    let mut headers = vec![genesis.header.clone()];
    chain.check_pow_hash = true; // demand real proofs of work

    // --- Alice pays Bob 30, signed, mined into block 1. ------------------
    let mut payment = UtxoTx {
        inputs: vec![TxIn {
            prev_tx: alice_coin.tx,
            index: alice_coin.index,
            auth: None,
        }],
        outputs: vec![
            TxOut {
                value: 30_0000_0000,
                recipient: _bob.address(),
            },
            TxOut {
                value: 70_0000_0000,
                recipient: alice.address(),
            },
        ],
    };
    let signing = Transaction::Utxo(payment.clone()).signing_hash();
    let sig = alice.sign(&signing).expect("keys remain");
    payment.inputs[0].auth = Some(TxAuth {
        pubkey: alice.public_key(),
        signature: sig,
    });
    let payment = Transaction::Utxo(payment);
    let payment_id = payment.id();

    let b1 = mine_block(&mut chain, miner, vec![payment.clone()]);
    headers.push(b1.header.clone());
    for _ in 0..3 {
        let b = mine_block(&mut chain, miner, vec![]);
        headers.push(b.header.clone());
    }
    println!(
        "bob's balance (full node scan): {}",
        chain.machine().set.balance_of(&_bob.address())
    );

    // --- Bob's SPV wallet: headers + one Merkle proof. --------------------
    let mut wallet = LightClient::new(genesis.header.clone());
    wallet.check_pow = true; // the wallet validates the actual PoW
    wallet.sync(&headers[1..]).expect("mined headers verify");
    let leaves: Vec<Hash256> = b1.txs.iter().map(Transaction::id).collect();
    let index = leaves.iter().position(|l| *l == payment_id).unwrap();
    let proof = MerkleTree::from_leaves(leaves).prove(index).unwrap();
    let included = wallet.verify_inclusion(&payment_id, 1, &proof).unwrap();
    println!(
        "SPV wallet: payment included at height 1 = {included}, confirmations = {}, downloaded {} bytes (vs ~{} for full blocks)",
        wallet.confirmations(1).unwrap(),
        wallet.bytes_downloaded,
        b1.encoded_len() * headers.len()
    );

    // --- Privacy epilogue: taint and mixing (§5.3). -----------------------
    let mut taint = TaintTracker::new();
    let stolen = OutPoint {
        tx: payment_id,
        index: 0,
    }; // suppose Bob's coin is flagged
    taint.add_clean(stolen, 30_0000_0000);
    taint.mark_tainted(stolen);
    println!(
        "\nexchange flags bob's coin: taint = {:.2}",
        taint.taint_of(&stolen)
    );
    // Two 1:1 mixes launder it down.
    let mut current = stolen;
    for round in 0..2 {
        let fresh = OutPoint {
            tx: dcs_crypto::sha256(&[round]),
            index: 0,
        };
        taint.add_clean(fresh, 30_0000_0000);
        let mix = UtxoTx {
            inputs: vec![
                TxIn {
                    prev_tx: current.tx,
                    index: current.index,
                    auth: None,
                },
                TxIn {
                    prev_tx: fresh.tx,
                    index: fresh.index,
                    auth: None,
                },
            ],
            outputs: vec![
                TxOut {
                    value: 30_0000_0000,
                    recipient: Address::from_index(50),
                },
                TxOut {
                    value: 30_0000_0000,
                    recipient: Address::from_index(51),
                },
            ],
        };
        let id = Transaction::Utxo(mix.clone()).id();
        taint.apply(&mix, id);
        current = OutPoint { tx: id, index: 0 };
        println!(
            "after mix round {}: taint = {:.2}",
            round + 1,
            taint.taint_of(&current)
        );
    }
    println!(
        "fungibility restored: the exchange's >50% taint filter now passes this coin: {}",
        taint.taint_of(&current) <= 0.5
    );
}
