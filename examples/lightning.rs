//! Off-chain scaling (§5.4 of the paper, [30]): "another possibility is to
//! offload transactions outside the blockchain, as in the Lightning
//! network".
//!
//! Opens a small channel network, routes hundreds of multi-hop payments
//! entirely off-chain, demonstrates the dispute mechanism punishing a stale
//! close, and reports how many on-chain transactions the ledger was spared
//! — the E8 measurement.
//!
//! Run with: `cargo run --example lightning`

use dcs_scale::channels::ChannelNetwork;

fn main() {
    let mut net = ChannelNetwork::new(10);

    // Five parties in a line-plus-hub topology: a—b—c—d, and a hub h
    // connected to everyone.
    let a = net.add_party([1u8; 32], 10, 1_000_000);
    let b = net.add_party([2u8; 32], 10, 1_000_000);
    let c = net.add_party([3u8; 32], 10, 1_000_000);
    let d = net.add_party([4u8; 32], 10, 1_000_000);
    let h = net.add_party([5u8; 32], 10, 10_000_000);

    net.open_channel(a, b, 50_000, 50_000).unwrap();
    net.open_channel(b, c, 50_000, 50_000).unwrap();
    net.open_channel(c, d, 50_000, 50_000).unwrap();
    for &leaf in &[a, b, c, d] {
        net.open_channel(h, leaf, 200_000, 20_000).unwrap();
    }
    println!("opened 7 channels ({} on-chain txs)", net.onchain_txs);

    // 300 payments between random pairs, all routed off-chain.
    let parties = [a, b, c, d, h];
    let mut hops_total = 0usize;
    let mut rng = dcs_sim::Rng::seed_from(9);
    let mut ok = 0;
    for _ in 0..300 {
        let from = parties[rng.below(5) as usize];
        let to = parties[rng.below(5) as usize];
        if from == to {
            continue;
        }
        if let Ok(hops) = net.pay(from, to, 10 + rng.below(90)) {
            hops_total += hops;
            ok += 1;
        }
    }
    println!(
        "routed {ok} payments ({} off-chain state updates, {:.2} hops average) — still {} on-chain txs",
        net.offchain_updates,
        hops_total as f64 / ok as f64,
        net.onchain_txs
    );

    // A cheating close: d publishes a stale state on its hub channel; the
    // hub challenges with the newer one inside the dispute window.
    let hub_d = 6; // the h—d channel id (4th hub channel)
    let (stale, s_a, s_b) = net.signed_current_state(hub_d).unwrap();
    net.channel_pay(hub_d, d, 5_000).unwrap(); // d pays the hub after snapshotting
    let (fresh, f_a, f_b) = net.signed_current_state(hub_d).unwrap();
    net.unilateral_close(hub_d, stale, &s_a, &s_b).unwrap();
    net.challenge(hub_d, fresh, &f_a, &f_b).unwrap();
    net.advance_height(11);
    net.finalize_close(hub_d).unwrap();
    println!("stale close challenged and overridden: the newer state settled");

    // Cooperatively close the rest.
    for id in 0..6 {
        net.cooperative_close(id).unwrap();
    }
    println!(
        "final tally: {} payments settled with only {} on-chain transactions ({:.1} payments per on-chain tx)",
        net.payments,
        net.onchain_txs,
        net.payments as f64 / net.onchain_txs as f64
    );
    assert!(
        net.payments > 10 * net.onchain_txs,
        "the chain was offloaded"
    );
}
