//! The hard-fork scenario of §3.1: "one important challenge is the presence
//! of hard forks when new versions of blockchain code are incompatible with
//! previous ones. When a hard fork occurs, the userbase is divided when
//! there is resistance to update the code."
//!
//! Half the validators run a new rule set (big blocks, cf. Segwit2x [42]);
//! half refuse to upgrade. The moment a big block lands on the majority
//! chain, old-rule nodes reject it and the network splits into two
//! persistent currencies.

use dcs_chain::ChainError;
use dcs_chain::NullMachine;
use dcs_consensus::pos::{PosNode, StakeTable};
use dcs_consensus::WireMsg;
use dcs_crypto::Address;
use dcs_ledger::workload::Workload;
use dcs_ledger::LedgerNode;
use dcs_net::{LatencyModel, NetConfig, NodeId, Runner, Topology};
use dcs_primitives::{
    AccountTx, Block, BlockHeader, ChainConfig, ConsensusKind, Seal, Transaction,
};
use dcs_sim::{SimDuration, SimTime};

const OLD_LIMIT: usize = 5; // legacy rule: tiny blocks
const NEW_LIMIT: usize = 500; // upgraded rule: big blocks

fn config_with_limit(limit: usize) -> ChainConfig {
    ChainConfig {
        consensus: ConsensusKind::ProofOfStake { slot_us: 2_000_000 },
        block_tx_limit: limit,
        ..ChainConfig::ethereum_like()
    }
}

#[test]
fn mixed_version_network_splits_on_big_blocks() {
    let n = 8;
    // Both versions share genesis (the chain id / history is common).
    let genesis = dcs_chain::genesis_block(&config_with_limit(OLD_LIMIT));
    let stake_table = StakeTable::new(
        (0..n).map(|i| Address::from_index(i as u64)).collect(),
        vec![100; n],
        config_with_limit(OLD_LIMIT).chain_id,
    );
    let net = NetConfig {
        nodes: n,
        topology: Topology::Complete,
        latency: LatencyModel::lan(),
        drop_probability: 0.0,
        bandwidth_bytes_per_sec: None,
    };
    let mut runner = Runner::new(net, 2016, |id: NodeId| {
        // Nodes 0..4 refuse to upgrade; 4..8 run the big-block rules.
        let limit = if id.0 < 4 { OLD_LIMIT } else { NEW_LIMIT };
        let mut node = PosNode::new(
            id,
            genesis.clone(),
            config_with_limit(limit),
            NullMachine,
            stake_table.clone(),
            id.0,
        );
        node.core.chain.enforce_block_limit = true;
        node
    });

    // Light load first: everyone agrees while blocks stay small.
    let quiet = Workload::transfers(1.0, SimDuration::from_secs(60), 20);
    quiet.inject(runner.net_mut(), 1);
    runner.run_until(SimTime::ZERO + SimDuration::from_secs(61));
    let tip_old = runner.node(NodeId(0)).core().chain.tip_hash();
    let tip_new = runner.node(NodeId(7)).core().chain.tip_hash();
    assert_eq!(tip_old, tip_new, "small blocks satisfy both rule sets");
    let common_height = runner.node(NodeId(0)).core().chain.height();

    // Burst load: the next big-block leader fills a block beyond OLD_LIMIT.
    let burst = Workload {
        duration: SimDuration::from_secs(240),
        ..Workload::transfers(30.0, SimDuration::from_secs(240), 50)
    };
    let mut net_burst = burst;
    net_burst.tps = 30.0;
    net_burst.inject(runner.net_mut(), 2);
    runner.run_until(SimTime::ZERO + SimDuration::from_secs(301));

    let old_node = runner.node(NodeId(0)).core();
    let new_node = runner.node(NodeId(7)).core();
    // The user base divided: the two rule sets follow different chains.
    assert_ne!(
        old_node.chain.tip_hash(),
        new_node.chain.tip_hash(),
        "a big block must have split the network"
    );
    // Both sides kept making progress past the fork point — two currencies.
    assert!(
        old_node.chain.height() > common_height,
        "legacy side stalled"
    );
    assert!(
        new_node.chain.height() > common_height,
        "upgraded side stalled"
    );
    // The new side accepted at least one block the old side's rules forbid.
    let oversized = new_node
        .chain
        .canonical()
        .iter()
        .any(|h| new_node.chain.tree().get(h).unwrap().block().txs.len() > OLD_LIMIT + 1);
    assert!(oversized, "the split was caused by an oversized block");
}

#[test]
fn import_rejects_oversized_block_directly() {
    let cfg = config_with_limit(3);
    let genesis = dcs_chain::genesis_block(&cfg);
    let mut chain = dcs_chain::Chain::new(genesis.clone(), cfg, NullMachine);
    chain.enforce_block_limit = true;
    let txs: Vec<Transaction> = (0..10)
        .map(|i| {
            Transaction::Account(AccountTx::transfer(
                Address::from_index(i),
                Address::from_index(i + 1),
                1,
                0,
            ))
        })
        .collect();
    let big = Block::new(
        BlockHeader::new(genesis.hash(), 1, 1, Address::ZERO, Seal::None),
        txs,
    );
    assert!(matches!(
        chain.import(big),
        Err(ChainError::BadTransaction(_))
    ));
    // Within-limit blocks still import (3 txs + coinbase allowance).
    let ok = Block::new(
        BlockHeader::new(genesis.hash(), 1, 1, Address::ZERO, Seal::None),
        vec![Transaction::Coinbase {
            to: Address::ZERO,
            value: 1,
            height: 1,
        }],
    );
    chain.import(ok).unwrap();
    let _ = WireMsg::BlockRequest(dcs_crypto::Hash256::ZERO); // crate linkage
}
