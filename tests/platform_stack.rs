//! Whole-stack integration tests: scenarios that cut across four or more
//! crates at once — contracts executing on consensus networks, witness
//! verification under gossip, the middleware pipeline fed by a live chain,
//! and the PoET-cheating security concern the paper cites ([41]).

use dcs_chain::StateMachine;
use dcs_consensus::pos::{PosNode, StakeTable};
use dcs_consensus::WireMsg;
use dcs_contracts::{exec, stdlib, AccountMachine, Word};
use dcs_crypto::{Address, KeyPair};
use dcs_ledger::{builders, collect, LedgerNode};
use dcs_middleware::{EventBus, EventFilter};
use dcs_net::{LatencyModel, NetConfig, NodeId, Runner, Topology};
use dcs_primitives::{
    AccountTx, ChainConfig, ConsensusKind, GasSchedule, SealedTx, Transaction, TxAuth,
};
use dcs_sim::{SimDuration, SimTime};
use std::sync::Arc;

fn at(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

/// A full generation-2.0 deployment: a PoS validator network whose state
/// machine executes real contract transactions, with the event bus consuming
/// receipts at the end — Fig. 3's stack, live.
#[test]
fn contracts_execute_on_a_pos_network() {
    let alice = Address::from_index(1_000);
    let n = 6;
    let chain_cfg = ChainConfig {
        consensus: ConsensusKind::ProofOfStake { slot_us: 2_000_000 },
        gas: GasSchedule::default(),
        ..ChainConfig::ethereum_like()
    };
    let stake_table = StakeTable::new(
        (0..n).map(|i| Address::from_index(i as u64)).collect(),
        vec![100; n],
        chain_cfg.chain_id,
    );
    let genesis = dcs_chain::genesis_block(&chain_cfg);
    let net = NetConfig {
        nodes: n,
        topology: Topology::Complete,
        latency: LatencyModel::lan(),
        drop_probability: 0.0,
        bandwidth_bytes_per_sec: None,
    };
    let mut runner = Runner::new(net, 5, |id: NodeId| {
        PosNode::new(
            id,
            genesis.clone(),
            chain_cfg.clone(),
            AccountMachine::with_alloc(&[(alice, 10_000_000_000)]),
            stake_table.clone(),
            id.0,
        )
    });

    // Client transactions: deploy the token, mint, transfer.
    let deploy = AccountTx::deploy(alice, stdlib::token(), 0, 10_000_000);
    let token = deploy.contract_address();
    let txs = vec![
        Transaction::Account(deploy),
        Transaction::Account(AccountTx::call(
            alice,
            token,
            stdlib::token_mint_input(5_000),
            0,
            1,
            1_000_000,
        )),
        Transaction::Account(AccountTx::call(
            alice,
            token,
            stdlib::token_transfer_input(&Address::from_index(2_000), 1_200),
            0,
            2,
            1_000_000,
        )),
    ];
    for (i, tx) in txs.into_iter().enumerate() {
        let msg = WireMsg::Tx(SealedTx::new(Arc::new(tx)));
        let size = dcs_consensus::wire_size(&msg);
        runner
            .net_mut()
            .inject(at(i as u64 * 5), NodeId(0), msg, size);
    }
    // Stop mid-slot (slots fire on even seconds) so the last proposal has
    // propagated to every replica before we compare.
    runner.run_until(at(121));

    // Every validator executed the same contracts to the same state root.
    let roots: Vec<_> = runner
        .nodes()
        .iter()
        .map(|node| node.core().chain.machine().state_root())
        .collect();
    assert!(
        roots.windows(2).all(|w| w[0] == w[1]),
        "replicated execution diverged"
    );

    // And the token balance is queryable on any replica.
    let machine = runner.node_mut(NodeId(3)).core.chain.machine_mut();
    let out = exec::query(
        &mut machine.db,
        &token,
        &alice,
        &stdlib::token_balance_input(&Address::from_index(2_000)),
    )
    .expect("query runs");
    assert_eq!(Word(out.try_into().expect("one word")).as_u64(), 1_200);

    // Middleware: feed one replica's receipts through the event bus.
    let mut bus = EventBus::new();
    let sub = bus.subscribe(EventFilter::contract(token));
    let receipts = runner.node_mut(NodeId(0)).core.chain.drain_receipts();
    for (block, rs) in &receipts {
        bus.publish_block(*block, rs);
    }
    let events = bus.drain(sub);
    assert!(!events.is_empty(), "token transfer emitted an event");
}

/// Witness verification under gossip: an ordering-service ledger that
/// demands signatures accepts a properly signed transfer and (as a Failed
/// receipt economy) the state never moves for forged value.
#[test]
fn signed_transactions_verified_across_the_network() {
    let mut alice_keys = KeyPair::generate([42u8; 32], 3);
    let alice = alice_keys.address();
    let bob = Address::from_index(7);

    let chain_cfg = ChainConfig {
        gas: GasSchedule::free(),
        ..ChainConfig::hyperledger_like()
    };
    let genesis = dcs_chain::genesis_block(&chain_cfg);
    let net = NetConfig {
        nodes: 4,
        topology: Topology::Complete,
        latency: LatencyModel::lan(),
        drop_probability: 0.0,
        bandwidth_bytes_per_sec: None,
    };
    let mut runner = Runner::new(net, 9, |id: NodeId| {
        let mut machine = AccountMachine::with_alloc(&[(alice, 1_000_000)]);
        machine.schedule = GasSchedule::free();
        machine.verify_signatures = true;
        dcs_consensus::ordering::OrderingNode::new(
            id,
            Address::from_index(id.0 as u64),
            genesis.clone(),
            chain_cfg.clone(),
            machine,
            4,
        )
    });

    // A signed transfer commits.
    let mut tx = AccountTx::transfer(alice, bob, 250, 0);
    tx.gas_limit = 0;
    tx.gas_price = 0;
    let unsigned = Transaction::Account(tx.clone());
    let sig = alice_keys.sign(&unsigned.signing_hash()).unwrap();
    tx.auth = Some(TxAuth {
        pubkey: alice_keys.public_key(),
        signature: sig,
    });
    let msg = WireMsg::Tx(SealedTx::new(Arc::new(Transaction::Account(tx))));
    let size = dcs_consensus::wire_size(&msg);
    runner.net_mut().inject(at(1), NodeId(2), msg, size);
    runner.run_until(at(30));
    for node in runner.nodes() {
        assert_eq!(
            node.core().chain.machine().db.balance(&bob),
            250,
            "signed tx applied"
        );
    }

    // An unsigned transfer poisons its block: state never moves.
    let mut forged = AccountTx::transfer(alice, bob, 999, 1);
    forged.gas_limit = 0;
    forged.gas_price = 0;
    let msg = WireMsg::Tx(SealedTx::new(Arc::new(Transaction::Account(forged))));
    let size = dcs_consensus::wire_size(&msg);
    runner.net_mut().inject(at(31), NodeId(1), msg, size);
    runner.run_until(at(60));
    for node in runner.nodes() {
        assert_eq!(
            node.core().chain.machine().db.balance(&bob),
            250,
            "forgery rejected"
        );
    }
}

/// The PoET security concern ([41]): a compromised enclave that shortens
/// its waits wins a disproportionate share of blocks — decentralization
/// quietly collapses even though the protocol "works".
#[test]
fn poet_cheater_captures_block_production() {
    let mut params = builders::PoetParams {
        nodes: 8,
        // Node 0's enclave draws waits 4x shorter than honest peers.
        cheat_factors: vec![0.25, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
        ..Default::default()
    };
    params.chain.consensus = ConsensusKind::ProofOfElapsedTime {
        mean_wait_us: 8 * 5_000_000,
    };
    let mut runner = builders::build_poet(&params, 99);
    runner.run_until(at(1_500));
    let result = collect(
        runner.nodes(),
        &std::collections::HashMap::new(),
        SimDuration::from_secs(1_500),
    );

    let cheater_share = result.proposer_counts[0] as f64 / result.canonical_blocks.max(1) as f64;
    // An honest peer would hold 1/8 = 12.5%; a 4x cheater converges to
    // 4/(4+7) ≈ 36%.
    assert!(
        cheater_share > 0.25,
        "cheater should dominate production, got {cheater_share:.2}"
    );
    assert!(
        result.nakamoto <= 3,
        "decentralization collapses: nakamoto {}",
        result.nakamoto
    );
    assert!(result.replicas_agree, "the chain itself still converges");
}

/// Analytics over a live simulated network: the middleware report matches
/// the metric suite's counts.
#[test]
fn analytics_agree_with_metrics() {
    let params = builders::OrderingParams {
        nodes: 4,
        ..Default::default()
    };
    let mut runner = builders::build_ordering(&params, 3);
    let submitted = dcs_ledger::workload::Workload::transfers(50.0, SimDuration::from_secs(10), 20)
        .inject(runner.net_mut(), 1);
    runner.run_until(at(30));
    let result = collect(runner.nodes(), &submitted, SimDuration::from_secs(10));
    let report = dcs_middleware::analytics::analyze(&runner.nodes()[0].core().chain);
    assert_eq!(report.transactions, result.committed_txs);
    assert_eq!(report.blocks, result.canonical_blocks);
    assert!(report.mean_block_utilization > 0.0);
}
