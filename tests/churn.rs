//! Acceptance tests for crash/restart fault injection (E18's claims, as
//! assertions): PBFT keeps committing through `f` crashed replicas and
//! re-admits them, and a crashed-then-restarted node catches up to the
//! canonical tip via the locator sync protocol — under PBFT and PoW.

use dcs_faults::FaultSchedule;
use dcs_ledger::{builders, install_faults, workload::Workload};
use dcs_net::NodeId;
use dcs_primitives::ConsensusKind;
use dcs_sim::{SimDuration, SimTime};

fn at(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

/// PBFT n=4 (f=1): the view-0 leader crashes mid-run. The survivors hold a
/// 2f+1 quorum, fire a view change, and keep committing while it is down;
/// after restart the replica adopts the working view, catches up through
/// the sync protocol, and converges to the survivors' canonical chain.
#[test]
fn pbft_survives_leader_crash_and_readmits_the_restarted_replica() {
    let params = builders::PbftParams {
        nodes: 4,
        ..Default::default()
    };
    let mut runner = builders::build_pbft(&params, 77);
    Workload::transfers(20.0, SimDuration::from_secs(55), 50).inject(runner.net_mut(), 770);

    let schedule = FaultSchedule::new()
        .crash_at(at(10), NodeId(0))
        .restart_at(at(30), NodeId(0));
    let mut driver = install_faults(&runner, schedule);

    driver.run_until(&mut runner, at(12));
    let height_at_crash = runner.nodes()[1].core.chain.height();

    // Liveness through the crash: the survivors commit while the leader is
    // down, which requires the view change to have replaced it.
    driver.run_until(&mut runner, at(30));
    let height_before_restart = runner.nodes()[1].core.chain.height();
    assert!(
        height_before_restart > height_at_crash,
        "survivors stalled: {height_at_crash} -> {height_before_restart}"
    );
    assert!(
        runner.nodes()[1].view_changes >= 1,
        "no view change fired while the view-0 leader was down"
    );
    assert!(
        runner.nodes()[0].core.chain.height() <= height_at_crash,
        "a crashed replica must not advance"
    );

    driver.run_until(&mut runner, at(60));

    // Re-admission: the restarted replica reached the survivors' canonical
    // tip (modulo one in-flight block) through the catch-up protocol.
    let reference = &runner.nodes()[1].core.chain;
    let node0 = &runner.nodes()[0].core;
    assert!(
        node0.chain.height() + 1 >= reference.height(),
        "node 0 stuck at {} vs reference {}",
        node0.chain.height(),
        reference.height()
    );
    assert!(node0.catchup_rounds > 0, "recovery never ran catch-up sync");
    let common = node0.chain.height().min(reference.height());
    assert_eq!(
        node0.chain.canonical_at(common),
        reference.canonical_at(common),
        "restarted replica disagrees with the survivors at height {common}"
    );
    // And it rejoined the working view (adopted from the leader's traffic).
    assert_eq!(runner.nodes()[0].view(), runner.nodes()[1].view());
}

/// PoW, 4 equal miners: one crashes, misses a stretch of the chain, and on
/// restart rebuilds from its store and syncs the gap — converging to the
/// same canonical prefix as the peers that never went down.
#[test]
fn pow_miner_catches_up_to_canonical_tip_after_restart() {
    let mut params = builders::PowParams {
        nodes: 4,
        hash_powers: vec![1_000.0],
        ..Default::default()
    };
    params.chain.consensus = ConsensusKind::ProofOfWork {
        initial_difficulty: 4_000 * 5, // ~5 s blocks network-wide
        retarget_window: 0,
        target_interval_us: 5_000_000,
    };
    let confirmation = params.chain.confirmation_depth;
    let mut runner = builders::build_pow(&params, 78);
    Workload::transfers(5.0, SimDuration::from_secs(110), 30).inject(runner.net_mut(), 780);

    let schedule = FaultSchedule::new()
        .crash_at(at(30), NodeId(3))
        .restart_at(at(60), NodeId(3));
    let mut driver = install_faults(&runner, schedule);

    driver.run_until(&mut runner, at(60));
    let behind_by = runner.nodes()[0].core.chain.height() - runner.nodes()[3].core.chain.height();
    assert!(
        behind_by >= 2,
        "the crash window was too quiet to exercise catch-up (behind by {behind_by})"
    );

    driver.run_until(&mut runner, at(120));

    let reference = &runner.nodes()[0].core.chain;
    let node3 = &runner.nodes()[3].core;
    // Within the natural propagation slack of concurrent mining.
    assert!(
        node3.chain.height() + 2 >= reference.height(),
        "node 3 stuck at {} vs reference {}",
        node3.chain.height(),
        reference.height()
    );
    assert!(
        node3.catchup_rounds >= 1,
        "recovery never ran catch-up sync"
    );
    // Prefix agreement at the confirmed portion of the shorter chain.
    let check = node3
        .chain
        .height()
        .min(reference.height())
        .saturating_sub(confirmation);
    assert_eq!(
        node3.chain.canonical_at(check),
        reference.canonical_at(check),
        "restarted miner disagrees with the network at height {check}"
    );

    // The fabric actually suppressed traffic to the dead node — the crash
    // was real, not a no-op.
    let stats = runner.net().stats();
    assert_eq!(stats.crashes, 1);
    assert_eq!(stats.restarts, 1);
    assert!(stats.suppressed_deliveries > 0);
}
