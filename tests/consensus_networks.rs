//! End-to-end integration tests: whole simulated networks for every
//! consensus family the paper surveys (§2.4), validating the properties the
//! paper attributes to each — these are the miniature versions of
//! experiments E1–E5.

use dcs_ledger::{builders, collect, workload::Workload, LedgerNode};
use dcs_net::{NodeId, Topology};
use dcs_primitives::{ChainConfig, ConsensusKind, ForkChoice};
use dcs_sim::{SimDuration, SimTime};

fn at(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

#[test]
fn pow_network_reaches_consensus_and_commits_transactions() {
    let mut params = builders::PowParams {
        nodes: 8,
        hash_powers: vec![1_000.0],
        ..Default::default()
    };
    params.chain.consensus = ConsensusKind::ProofOfWork {
        initial_difficulty: 8 * 1_000 * 10, // 8 kH/s → ~10 s blocks
        retarget_window: 0,
        target_interval_us: 10_000_000,
    };
    let mut runner = builders::build_pow(&params, 1);
    let submitted =
        Workload::transfers(2.0, SimDuration::from_secs(500), 50).inject(runner.net_mut(), 99);
    runner.run_until(at(600));
    let result = collect(runner.nodes(), &submitted, SimDuration::from_secs(600));

    assert!(
        result.canonical_blocks > 20,
        "blocks: {}",
        result.canonical_blocks
    );
    assert!(
        result.committed_txs > 500,
        "committed: {}",
        result.committed_txs
    );
    assert!(
        result.replicas_agree,
        "replicas must agree below confirmation depth"
    );
    assert!(
        (result.mean_block_interval - 10.0).abs() < 5.0,
        "interval {:.1}s should be near 10s",
        result.mean_block_interval
    );
    assert!(result.latency.mean() > 0.0);
    assert!(result.work_expended > 0.0, "PoW burns work");
    // Equal hash power → decentralized production.
    assert!(result.nakamoto >= 3, "nakamoto {}", result.nakamoto);
}

#[test]
fn pow_difficulty_retargets_to_hold_interval() {
    // Start with difficulty tuned for ~2.5 s blocks against a 10 s target;
    // retargeting must slow the chain toward 10 s (the E1 mechanism).
    let mut params = builders::PowParams {
        nodes: 8,
        hash_powers: vec![1_000.0],
        ..Default::default()
    };
    params.chain.consensus = ConsensusKind::ProofOfWork {
        initial_difficulty: 8 * 1_000 * 10 / 4,
        retarget_window: 16,
        target_interval_us: 10_000_000,
    };
    let mut runner = builders::build_pow(&params, 3);
    runner.run_until(at(1_200));
    let core = runner.node(NodeId(0)).core();
    let chain = &core.chain;
    assert!(
        chain.height() > 48,
        "need several eras, got {}",
        chain.height()
    );
    // Mean interval over the last two eras ≈ target.
    let h = chain.height();
    let t_end = chain
        .tree()
        .get(&chain.canonical_at(h).unwrap())
        .unwrap()
        .header()
        .timestamp_us;
    let t_start = chain
        .tree()
        .get(&chain.canonical_at(h - 32).unwrap())
        .unwrap()
        .header()
        .timestamp_us;
    let mean = (t_end - t_start) as f64 / 32.0 / 1_000_000.0;
    assert!(
        (mean - 10.0).abs() < 4.0,
        "late-chain interval {mean:.2}s should approach the 10s target"
    );
}

#[test]
fn pos_proposers_follow_stake_and_burn_no_hashes() {
    let mut params = builders::PosParams {
        nodes: 10,
        // Node 9 holds half the total stake.
        stakes: vec![10, 10, 10, 10, 10, 10, 10, 10, 10, 90],
        ..Default::default()
    };
    params.chain.consensus = ConsensusKind::ProofOfStake { slot_us: 5_000_000 };
    let mut runner = builders::build_pos(&params, 5);
    let submitted =
        Workload::transfers(5.0, SimDuration::from_secs(500), 50).inject(runner.net_mut(), 7);
    runner.run_until(at(600));
    let result = collect(runner.nodes(), &submitted, SimDuration::from_secs(600));

    assert!(
        result.canonical_blocks > 80,
        "one block per 5s slot, got {}",
        result.canonical_blocks
    );
    assert!(result.replicas_agree);
    assert!(result.committed_txs > 1_000);
    // The whale produced roughly half the blocks.
    let whale = result.proposer_counts[9] as f64 / result.canonical_blocks as f64;
    assert!((whale - 0.5).abs() < 0.15, "whale share {whale:.2}");
    // Work is lottery evaluations (~1 per node per slot), orders of
    // magnitude below any PoW difficulty.
    assert!(
        result.work_expended < 5_000.0,
        "work {}",
        result.work_expended
    );
    // Stake concentration shows up as a low Nakamoto coefficient.
    assert!(result.nakamoto <= 3, "nakamoto {}", result.nakamoto);
}

#[test]
fn poet_behaves_like_pow_without_work() {
    let mut params = builders::PoetParams {
        nodes: 8,
        ..Default::default()
    };
    params.chain.consensus = ConsensusKind::ProofOfElapsedTime {
        mean_wait_us: 8 * 10_000_000, // 8 peers → ~10 s between blocks
    };
    let mut runner = builders::build_poet(&params, 11);
    let submitted =
        Workload::transfers(2.0, SimDuration::from_secs(500), 20).inject(runner.net_mut(), 3);
    runner.run_until(at(600));
    let result = collect(runner.nodes(), &submitted, SimDuration::from_secs(600));

    assert!(
        result.canonical_blocks > 25,
        "blocks {}",
        result.canonical_blocks
    );
    assert!(result.replicas_agree);
    assert!(
        (result.mean_block_interval - 10.0).abs() < 5.0,
        "interval {:.1}",
        result.mean_block_interval
    );
    // "Work" is one wait-draw per proposal opportunity — thousands of times
    // cheaper than hashing.
    assert!(result.work_expended < 10_000.0);
}

#[test]
fn ordering_service_is_fast_and_forkless() {
    let params = builders::OrderingParams {
        nodes: 8,
        ..Default::default()
    };
    let mut runner = builders::build_ordering(&params, 17);
    let submitted =
        Workload::transfers(200.0, SimDuration::from_secs(20), 100).inject(runner.net_mut(), 23);
    runner.run_until(at(40));
    let result = collect(runner.nodes(), &submitted, SimDuration::from_secs(20));

    // Essentially everything submitted commits, quickly.
    assert!(
        result.committed_txs as f64 > 0.95 * submitted.len() as f64,
        "committed {} of {}",
        result.committed_txs,
        submitted.len()
    );
    assert_eq!(result.stale_blocks, 0, "no branching is possible (§2.4)");
    assert_eq!(result.reorgs, 0);
    assert!(result.replicas_agree);
    assert!(
        result.latency.mean() < 2.0,
        "latency {:.2}s",
        result.latency.mean()
    );
    // The price: one orderer produced everything — zero decentralization.
    assert_eq!(result.nakamoto, 1);
    assert!(
        result.proposer_gini > 0.8,
        "gini {:.2}",
        result.proposer_gini
    );
}

#[test]
fn ordering_rotation_spreads_production() {
    let mut params = builders::OrderingParams {
        nodes: 4,
        ..Default::default()
    };
    params.chain.consensus = ConsensusKind::Ordering {
        batch_size: 50,
        batch_timeout_us: 200_000,
        rotate_every: 2,
    };
    let mut runner = builders::build_ordering(&params, 29);
    let submitted =
        Workload::transfers(100.0, SimDuration::from_secs(20), 50).inject(runner.net_mut(), 31);
    runner.run_until(at(40));
    let result = collect(runner.nodes(), &submitted, SimDuration::from_secs(20));
    assert!(result.committed_txs > 0);
    let producers = result.proposer_counts.iter().filter(|&&c| c > 0).count();
    assert!(
        producers >= 3,
        "rotation should spread production, got {producers}"
    );
    assert!(result.nakamoto >= 2);
}

#[test]
fn pbft_commits_with_quorum_and_agrees() {
    let params = builders::PbftParams::default(); // 7 replicas, f = 2
    let mut runner = builders::build_pbft(&params, 37);
    let submitted =
        Workload::transfers(50.0, SimDuration::from_secs(20), 50).inject(runner.net_mut(), 41);
    runner.run_until(at(60));
    let result = collect(runner.nodes(), &submitted, SimDuration::from_secs(20));

    assert!(
        result.committed_txs as f64 > 0.9 * submitted.len() as f64,
        "committed {} of {}",
        result.committed_txs,
        submitted.len()
    );
    assert!(result.replicas_agree);
    assert_eq!(result.reorgs, 0, "PBFT never forks");
    // All blocks carry the quorum-size vote count in their seal.
    let core = runner.node(NodeId(1)).core();
    for hash in core.chain.canonical().iter().skip(1) {
        let seal = &core.chain.tree().get(hash).unwrap().header().seal;
        match seal {
            dcs_primitives::Seal::Authority { votes, .. } => assert_eq!(*votes, 5),
            other => panic!("expected Authority seal, got {other:?}"),
        }
    }
}

#[test]
fn pbft_survives_crashed_replicas_up_to_f() {
    // n=7 → f=2; two non-leader replicas fail-stop.
    let params = builders::PbftParams {
        crashed: vec![2, 5],
        ..Default::default()
    };
    let mut runner = builders::build_pbft(&params, 43);
    let submitted =
        Workload::transfers(20.0, SimDuration::from_secs(15), 20).inject(runner.net_mut(), 47);
    runner.run_until(at(60));
    // Measure agreement among the live replicas only.
    let live: Vec<usize> = (0..7).filter(|i| !params.crashed.contains(i)).collect();
    let reference = runner.node(NodeId(live[0])).core();
    // Transactions injected at the two crashed peers are lost with them
    // (clients picked a dead point of contact), so expect ~5/7 to commit.
    assert!(
        reference.committed_tx_count() as f64 > 0.6 * submitted.len() as f64,
        "committed {} of {}",
        reference.committed_tx_count(),
        submitted.len()
    );
    let tip = reference.chain.tip_hash();
    for &i in &live[1..] {
        assert_eq!(runner.node(NodeId(i)).core().chain.tip_hash(), tip);
    }
}

#[test]
fn pbft_view_change_replaces_crashed_leader() {
    let params = builders::PbftParams {
        crashed: vec![0], // the view-0 leader is dead
        ..Default::default()
    };
    let mut runner = builders::build_pbft(&params, 53);
    let submitted =
        Workload::transfers(20.0, SimDuration::from_secs(15), 20).inject(runner.net_mut(), 59);
    runner.run_until(at(120));
    let survivor = runner.node(NodeId(1));
    assert!(survivor.view() >= 1, "view change must have happened");
    // ~1/7 of clients contacted the dead leader and lost their txs.
    assert!(
        survivor.core().committed_tx_count() as f64 > 0.75 * submitted.len() as f64,
        "committed {} of {} under the new leader",
        survivor.core().committed_tx_count(),
        submitted.len()
    );
}

#[test]
fn bitcoin_ng_decouples_throughput_from_key_blocks() {
    let mut params = builders::NgParams {
        nodes: 8,
        hash_powers: vec![1_000.0],
        ..Default::default()
    };
    params.chain.consensus = ConsensusKind::BitcoinNg {
        key_difficulty: 8 * 1_000 * 30, // ~30 s key blocks
        key_interval_us: 30_000_000,
        micro_interval_us: 1_000_000, // 1 s microblocks
    };
    let mut runner = builders::build_ng(&params, 61);
    let submitted =
        Workload::transfers(20.0, SimDuration::from_secs(300), 50).inject(runner.net_mut(), 67);
    runner.run_until(at(400));
    let result = collect(runner.nodes(), &submitted, SimDuration::from_secs(400));

    assert!(result.replicas_agree);
    // Key blocks alone would cap the chain at ~400/30 ≈ 13 blocks; micro-
    // blocks push block count far beyond that.
    assert!(
        result.canonical_blocks > 40,
        "microblocks should dominate, got {}",
        result.canonical_blocks
    );
    assert!(
        result.committed_txs as f64 > 0.8 * submitted.len() as f64,
        "committed {} of {}",
        result.committed_txs,
        submitted.len()
    );
    // Blocks commit far more often than key blocks arrive.
    assert!(
        result.mean_block_interval < 10.0,
        "{}",
        result.mean_block_interval
    );
}

#[test]
fn partition_forks_then_heals_into_one_chain() {
    // PoS with fast slots: both sides keep producing during the split, then
    // fork choice reconciles — consistency under partition, the paper's CAP
    // analogy made visible.
    let mut params = builders::PosParams {
        nodes: 10,
        ..Default::default()
    };
    params.chain.consensus = ConsensusKind::ProofOfStake { slot_us: 5_000_000 };
    params.net.topology = Topology::Complete;
    let mut runner = builders::build_pos(&params, 71);

    // Phase 1: healthy.
    runner.run_until(at(100));
    // Phase 2: split 5 | 5.
    let groups: Vec<u32> = (0..10).map(|i| u32::from(i >= 5)).collect();
    runner.net_mut().set_partition(groups);
    runner.run_until(at(300));
    let tip_a = runner.node(NodeId(0)).core().chain.tip_hash();
    let tip_b = runner.node(NodeId(9)).core().chain.tip_hash();
    assert_ne!(tip_a, tip_b, "the split sides must diverge");

    // Phase 3: heal; slot leaders' new blocks carry the longer chain to
    // everyone.
    runner.net_mut().heal_partition();
    runner.run_until(at(600));
    let submitted = std::collections::HashMap::new();
    let result = collect(runner.nodes(), &submitted, SimDuration::from_secs(600));
    assert!(
        result.replicas_agree,
        "post-heal the network must reconverge"
    );
    let reorgs_somewhere: u64 = runner
        .nodes()
        .iter()
        .map(|n| n.core().chain.stats().reorgs)
        .sum();
    assert!(
        reorgs_somewhere > 0,
        "healing requires at least one side to reorg"
    );
}

#[test]
fn ghost_vs_longest_chain_under_fast_blocks() {
    // E2 in miniature: at aggressive block rates, GHOST keeps a committee
    // of uncles working for chain security; both rules must still converge,
    // and the stale rate must be visibly nonzero.
    let mk = |fork_choice: ForkChoice, seed: u64| {
        let mut params = builders::PowParams {
            nodes: 8,
            hash_powers: vec![1_000.0],
            ..Default::default()
        };
        params.chain = ChainConfig {
            consensus: ConsensusKind::ProofOfWork {
                initial_difficulty: 8 * 1_000, // ~1 s blocks vs ~0.1 s latency
                retarget_window: 0,
                target_interval_us: 1_000_000,
            },
            fork_choice,
            ..ChainConfig::bitcoin_like()
        };
        let mut runner = builders::build_pow(&params, seed);
        runner.run_until(at(300));
        collect(
            runner.nodes(),
            &std::collections::HashMap::new(),
            SimDuration::from_secs(300),
        )
    };
    let longest = mk(ForkChoice::LongestChain, 73);
    let ghost = mk(ForkChoice::Ghost, 79);
    assert!(
        longest.stale_rate > 0.02,
        "fast blocks must fork: {}",
        longest.stale_rate
    );
    assert!(ghost.stale_rate > 0.02);
    assert!(longest.replicas_agree);
    assert!(ghost.replicas_agree);
}
