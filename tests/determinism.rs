//! Same-seed reproducibility: the whole platform — discrete-event core,
//! gossip network, consensus engines, chain manager — must be bit-for-bit
//! deterministic, because every experiment claim in the paper reproduction
//! rests on runs being replayable. Each test executes the same simulated
//! network twice with identical seeds and asserts the canonical chains and
//! the measured statistics are identical. The `dcs-lint` static-analysis
//! rules (wall-clock, unseeded-rng, hash-collections, …) exist to keep
//! these tests passing; see DESIGN.md §10.

use dcs_crypto::{sha256, Hash256};
use dcs_faults::FaultSchedule;
use dcs_ledger::{
    builders, collect, collect_traces, install_faults, install_tracing, workload::Workload,
    LedgerNode, SimResult,
};
use dcs_net::NodeId;
use dcs_primitives::ConsensusKind;
use dcs_sim::{SimDuration, SimTime};
use dcs_trace::{Timelines, TraceConfig};
use std::collections::BTreeMap;

fn at(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

/// One digest over every peer's full canonical chain, in peer order — two
/// runs that differ anywhere (any peer, any height) produce different
/// digests.
fn network_digest<P: LedgerNode>(nodes: &[P]) -> Hash256 {
    let mut bytes = Vec::new();
    for node in nodes {
        for hash in node.core().chain.canonical() {
            bytes.extend_from_slice(hash.as_bytes());
        }
    }
    sha256(&bytes)
}

/// The statistics that must replay exactly. Floats are compared by bit
/// pattern: determinism means *identical*, not merely close.
fn fingerprint(result: &SimResult) -> [u64; 10] {
    [
        result.committed_txs,
        result.canonical_blocks,
        result.total_blocks,
        result.stale_blocks,
        result.reorgs,
        result.max_reorg_depth,
        result.rejected_blocks,
        result.internal_errors,
        result.tps.to_bits(),
        result.latency.mean().to_bits(),
    ]
}

/// Builds the standard 8-peer PoW-gossip network used by the replay tests,
/// with full tracing armed so trace digests are part of what must replay.
fn pow_gossip_runner(
    seed: u64,
) -> dcs_net::Runner<dcs_consensus::pow::PowNode<dcs_chain::NullMachine>> {
    let mut params = builders::PowParams {
        nodes: 8,
        hash_powers: vec![1_000.0],
        ..Default::default()
    };
    params.chain.consensus = ConsensusKind::ProofOfWork {
        initial_difficulty: 8 * 1_000 * 5, // ~5 s blocks
        retarget_window: 16,
        target_interval_us: 5_000_000,
    };
    let mut runner = builders::build_pow(&params, seed);
    install_tracing(&mut runner, &TraceConfig::full());
    runner
}

/// PoW over a gossip network: the adversarial case for determinism — forks,
/// reorgs, difficulty retargeting, and randomized gossip fan-out all in play.
/// Returns the chain digest, the statistics fingerprint, and the per-source
/// trace digests (`net`, `sim`, and one per peer).
fn run_pow_gossip(seed: u64, shards: usize) -> (Hash256, [u64; 10], BTreeMap<String, u64>) {
    let mut runner = pow_gossip_runner(seed);
    runner.set_shards(shards);
    let submitted =
        Workload::transfers(2.0, SimDuration::from_secs(150), 30).inject(runner.net_mut(), 99);
    runner.run_until(at(200));
    let result = collect(runner.nodes(), &submitted, SimDuration::from_secs(200));
    assert!(
        result.canonical_blocks > 10,
        "run must do real work: {} blocks",
        result.canonical_blocks
    );
    assert_eq!(
        result.internal_errors, 0,
        "no internal invariant may break on a healthy run"
    );
    let traces = collect_traces(&runner);
    (
        network_digest(runner.nodes()),
        fingerprint(&result),
        traces.digests().clone(),
    )
}

/// PBFT: quorum tallies and view bookkeeping iterate over vote sets, which
/// is exactly where unordered collections used to leak nondeterminism.
fn run_pbft(seed: u64) -> (Hash256, [u64; 10], BTreeMap<String, u64>) {
    let params = builders::PbftParams::default(); // 7 replicas, f = 2
    let mut runner = builders::build_pbft(&params, seed);
    install_tracing(&mut runner, &TraceConfig::full());
    let submitted =
        Workload::transfers(50.0, SimDuration::from_secs(20), 50).inject(runner.net_mut(), 41);
    runner.run_until(at(40));
    let result = collect(runner.nodes(), &submitted, SimDuration::from_secs(20));
    assert!(
        result.committed_txs > 0,
        "run must commit transactions to be a meaningful replay check"
    );
    assert_eq!(result.internal_errors, 0);
    let traces = collect_traces(&runner);
    (
        network_digest(runner.nodes()),
        fingerprint(&result),
        traces.digests().clone(),
    )
}

/// Asserts two runs produced identical trace digests on *every* source —
/// the fabric, the event queue, and each individual peer — so a divergence
/// pinpoints which actor's event stream differed.
fn assert_trace_digests_match(a: &BTreeMap<String, u64>, b: &BTreeMap<String, u64>, peers: usize) {
    assert_eq!(
        a.len(),
        peers + 2,
        "one digest per peer plus net and sim: {a:?}"
    );
    for (key, digest) in a {
        assert_eq!(
            Some(digest),
            b.get(key),
            "trace digest for `{key}` must replay bit-identically"
        );
    }
    assert_eq!(a, b);
}

/// The full fault repertoire in one schedule: crash/restart, a link flap,
/// a timed partition with heal, and duplication/corruption windows.
fn churn_schedule() -> FaultSchedule {
    FaultSchedule::new()
        .crash_at(at(20), NodeId(3))
        .link_down_at(at(25), NodeId(0), NodeId(1))
        .set_duplication_at(at(30), 0.2)
        .set_corruption_at(at(30), 0.05)
        .partition_at(at(50), vec![0, 0, 0, 0, 1, 1, 1, 1])
        .heal_at(at(70))
        .set_duplication_at(at(80), 0.0)
        .set_corruption_at(at(80), 0.0)
        .link_up_at(at(90), NodeId(0), NodeId(1))
        .restart_at(at(100), NodeId(3))
}

/// PoW gossip under the churn schedule: faults are part of the seeded
/// execution, so the run must replay bit-identically — including the
/// suppressed/duplicated/corrupted accounting and the recovery sync.
fn run_pow_gossip_with_faults(
    seed: u64,
    shards: usize,
) -> (Hash256, [u64; 10], BTreeMap<String, u64>) {
    let mut runner = pow_gossip_runner(seed);
    runner.set_shards(shards);
    let submitted =
        Workload::transfers(2.0, SimDuration::from_secs(150), 30).inject(runner.net_mut(), 99);
    let mut driver = install_faults(&runner, churn_schedule());
    driver.run_until(&mut runner, at(200));
    let result = collect(runner.nodes(), &submitted, SimDuration::from_secs(200));
    assert!(
        result.canonical_blocks > 10,
        "run must do real work: {} blocks",
        result.canonical_blocks
    );
    assert_eq!(result.internal_errors, 0);
    assert!(
        result.catchup_rounds > 0,
        "the restarted node must actually catch up"
    );
    let stats = runner.net().stats();
    assert!(stats.suppressed_deliveries > 0 && stats.duplicated > 0 && stats.corrupted > 0);
    let traces = collect_traces(&runner);
    (
        network_digest(runner.nodes()),
        fingerprint(&result),
        traces.digests().clone(),
    )
}

/// PBFT under crash/restart: the view change and the re-admission catch-up
/// must replay exactly, vote sets and all.
fn run_pbft_with_faults(seed: u64) -> (Hash256, [u64; 10], BTreeMap<String, u64>) {
    let params = builders::PbftParams::default(); // 7 replicas, f = 2
    let mut runner = builders::build_pbft(&params, seed);
    install_tracing(&mut runner, &TraceConfig::full());
    let submitted =
        Workload::transfers(50.0, SimDuration::from_secs(35), 50).inject(runner.net_mut(), 41);
    let schedule = FaultSchedule::new()
        .crash_at(at(5), NodeId(0))
        .crash_at(at(5), NodeId(1))
        .restart_at(at(25), NodeId(0))
        .restart_at(at(30), NodeId(1));
    let mut driver = install_faults(&runner, schedule);
    driver.run_until(&mut runner, at(40));
    let result = collect(runner.nodes(), &submitted, SimDuration::from_secs(35));
    assert!(
        result.committed_txs > 0,
        "run must commit through the churn"
    );
    assert_eq!(result.internal_errors, 0);
    let traces = collect_traces(&runner);
    (
        network_digest(runner.nodes()),
        fingerprint(&result),
        traces.digests().clone(),
    )
}

#[test]
fn pow_gossip_replays_bit_identically() {
    let (digest_a, stats_a, traces_a) = run_pow_gossip(7, 1);
    let (digest_b, stats_b, traces_b) = run_pow_gossip(7, 1);
    assert_eq!(
        digest_a, digest_b,
        "same seed must reproduce every peer's canonical chain"
    );
    assert_eq!(stats_a, stats_b, "same seed must reproduce all statistics");
    assert_trace_digests_match(&traces_a, &traces_b, 8);
}

#[test]
fn pow_gossip_seeds_are_actually_used() {
    // Guard against a degenerate "determinism" where the seed is ignored:
    // different seeds must explore different executions.
    let (digest_a, _, traces_a) = run_pow_gossip(7, 1);
    let (digest_b, _, traces_b) = run_pow_gossip(8, 1);
    assert_ne!(digest_a, digest_b, "different seeds must diverge");
    assert_ne!(traces_a, traces_b, "trace digests must diverge too");
}

#[test]
fn pbft_replays_bit_identically() {
    let (digest_a, stats_a, traces_a) = run_pbft(37);
    let (digest_b, stats_b, traces_b) = run_pbft(37);
    assert_eq!(
        digest_a, digest_b,
        "same seed must reproduce every replica's canonical chain"
    );
    assert_eq!(stats_a, stats_b, "same seed must reproduce all statistics");
    assert_trace_digests_match(&traces_a, &traces_b, 7);
}

#[test]
fn pow_gossip_with_fault_schedule_replays_bit_identically() {
    let (digest_a, stats_a, traces_a) = run_pow_gossip_with_faults(7, 1);
    let (digest_b, stats_b, traces_b) = run_pow_gossip_with_faults(7, 1);
    assert_eq!(
        digest_a, digest_b,
        "same seed + same fault schedule must reproduce every canonical chain"
    );
    assert_eq!(stats_a, stats_b, "statistics must replay under faults");
    assert_trace_digests_match(&traces_a, &traces_b, 8);
}

#[test]
fn pbft_with_fault_schedule_replays_bit_identically() {
    let (digest_a, stats_a, traces_a) = run_pbft_with_faults(37);
    let (digest_b, stats_b, traces_b) = run_pbft_with_faults(37);
    assert_eq!(
        digest_a, digest_b,
        "same seed + same fault schedule must reproduce every canonical chain"
    );
    assert_eq!(stats_a, stats_b, "statistics must replay under faults");
    assert_trace_digests_match(&traces_a, &traces_b, 7);
}

/// The sharded engine's central contract: partitioning peers across worker
/// threads must not change one observable bit. The same seeded PoW-gossip
/// run — full tracing armed — is executed serially and at 2 and 8 shards;
/// chains, statistics, and every per-source trace digest must be identical.
#[test]
fn pow_gossip_is_shard_count_invariant() {
    let (digest_1, stats_1, traces_1) = run_pow_gossip(7, 1);
    for shards in [2, 8] {
        let (digest_s, stats_s, traces_s) = run_pow_gossip(7, shards);
        assert_eq!(
            digest_1, digest_s,
            "{shards} shards must reproduce the serial canonical chains"
        );
        assert_eq!(
            stats_1, stats_s,
            "{shards} shards must reproduce the serial statistics"
        );
        assert_trace_digests_match(&traces_1, &traces_s, 8);
    }
}

/// The same PoW-gossip run with live metrics installed: identical workload
/// and deadline, plus a populated [`dcs_metrics::Registry`]. Metrics
/// collection must be invisible to the deterministic execution.
fn run_pow_gossip_metered(
    seed: u64,
    shards: usize,
) -> (
    Hash256,
    [u64; 10],
    BTreeMap<String, u64>,
    dcs_metrics::Registry,
) {
    let mut runner = pow_gossip_runner(seed);
    runner.set_shards(shards);
    let registry = dcs_metrics::Registry::new();
    dcs_ledger::install_metrics(&mut runner, &registry);
    let submitted =
        Workload::transfers(2.0, SimDuration::from_secs(150), 30).inject(runner.net_mut(), 99);
    runner.run_until(at(200));
    let result = collect(runner.nodes(), &submitted, SimDuration::from_secs(200));
    assert_eq!(result.internal_errors, 0);
    let traces = collect_traces(&runner);
    (
        network_digest(runner.nodes()),
        fingerprint(&result),
        traces.digests().clone(),
        registry,
    )
}

/// The observability contract (DESIGN.md §16): instrument updates are
/// out-of-band relaxed atomics, so a run with the full metrics registry
/// installed must be bit-identical to the same seeded run without it — at
/// every engine shard count — while the registry itself ends up live.
#[test]
fn metrics_collection_never_perturbs_the_run() {
    let (digest_plain, stats_plain, traces_plain) = run_pow_gossip(7, 1);
    for shards in [1, 2, 8] {
        let (digest_m, stats_m, traces_m, registry) = run_pow_gossip_metered(7, shards);
        assert_eq!(
            digest_plain, digest_m,
            "metrics on ({shards} shards) must reproduce the unmetered canonical chains"
        );
        assert_eq!(
            stats_plain, stats_m,
            "metrics on ({shards} shards) must reproduce the unmetered statistics"
        );
        assert_trace_digests_match(&traces_plain, &traces_m, 8);

        // And the registry must have actually observed the run.
        let shape = registry.stats();
        assert_eq!(shape.kind_conflicts, 0);
        assert!(
            shape.families >= 8 && shape.series >= 8 * 8,
            "8 instrumented peers must register real series: {shape:?}"
        );
        let text = registry.render();
        let height_live = text.lines().any(|l| {
            l.starts_with("dcs_chain_height{")
                && l.split(' ').next_back().and_then(|v| v.parse::<i64>().ok()) > Some(10)
        });
        assert!(height_live, "chain height gauges must track the run");
        let admitted_live = text.lines().any(|l| {
            l.starts_with("dcs_mempool_admitted_total{")
                && l.split(' ').next_back().and_then(|v| v.parse::<u64>().ok()) > Some(0)
        });
        assert!(
            admitted_live,
            "mempool admission counters must track the run"
        );
    }
}

/// Shard-count invariance under the full fault repertoire: crash/restart,
/// link flaps, partitions, duplication, and corruption all interact with
/// the conservative windows (the fault driver clips them at each scripted
/// instant), and still nothing observable may depend on the worker count.
#[test]
fn pow_gossip_with_faults_is_shard_count_invariant() {
    let (digest_1, stats_1, traces_1) = run_pow_gossip_with_faults(7, 1);
    for shards in [2, 8] {
        let (digest_s, stats_s, traces_s) = run_pow_gossip_with_faults(7, shards);
        assert_eq!(
            digest_1, digest_s,
            "{shards} shards must reproduce the serial chains under faults"
        );
        assert_eq!(stats_1, stats_s);
        assert_trace_digests_match(&traces_1, &traces_s, 8);
    }
}

/// The batch-first commit pipeline's central contract: routing a block
/// through the batched state path (overlay + one sorted merge, multi-lane
/// hashing, cache-warmed witness verification) must be bit-identical to the
/// serial per-write path, at every verification worker count. Runs a
/// deterministic sequence of signed blocks through `AccountMachine` with
/// `serial_apply` true/false at 1, 2, and 8 pipeline threads and demands
/// one digest over every intermediate state root and receipt set.
#[test]
fn commit_pipeline_is_batch_and_worker_invariant() {
    use dcs_chain::StateMachine;
    use dcs_contracts::AccountMachine;
    use dcs_crypto::{KeyPair, VerifyPipeline};
    use dcs_primitives::{AccountTx, Block, BlockHeader, GasSchedule, Seal, Transaction, TxAuth};
    use std::sync::Arc;

    const SENDERS: usize = 8;
    const BLOCKS: u64 = 4;
    const TXS_PER_BLOCK: usize = 32;

    let mut keys: Vec<KeyPair> = (0..SENDERS)
        .map(|i| {
            let mut seed = [0u8; 32];
            seed[0] = i as u8;
            seed[1] = 0xD5;
            KeyPair::generate(seed, 5) // 2^5 = 32 signatures ≥ 16 per sender
        })
        .collect();
    let alloc: Vec<(dcs_crypto::Address, u64)> =
        keys.iter().map(|k| (k.address(), 1_000_000)).collect();

    // One deterministic signed block sequence, reused for every
    // configuration.
    let mut nonces = [0u64; SENDERS];
    let mut parent = Hash256::ZERO;
    let mut blocks = Vec::new();
    for height in 1..=BLOCKS {
        let mut body = vec![Transaction::Coinbase {
            to: dcs_crypto::Address::from_index(999),
            value: 50,
            height,
        }];
        for i in 0..TXS_PER_BLOCK {
            let s = i % SENDERS;
            let mut tx = AccountTx::transfer(
                keys[s].address(),
                dcs_crypto::Address::from_index(10_000 + i as u64),
                1 + (height + i as u64) % 50,
                nonces[s],
            );
            tx.gas_limit = 0;
            tx.gas_price = 0;
            nonces[s] += 1;
            let sig = keys[s]
                .sign(&Transaction::Account(tx.clone()).signing_hash())
                .expect("key capacity covers the run");
            tx.auth = Some(TxAuth {
                pubkey: keys[s].public_key(),
                signature: sig,
            });
            body.push(Transaction::Account(tx));
        }
        let block = Block::new(
            BlockHeader::new(
                parent,
                height,
                height,
                dcs_crypto::Address::from_index(999),
                Seal::None,
            ),
            body,
        );
        parent = block.hash();
        blocks.push(block);
    }

    // Digest of the whole commit trajectory under one configuration: every
    // intermediate state root plus every receipt's id/status/fee.
    let run = |serial: bool, threads: usize| -> Hash256 {
        let pipeline = Arc::new(VerifyPipeline::new(threads, 4_096));
        let mut machine = AccountMachine::with_alloc(&alloc).with_pipeline(Arc::clone(&pipeline));
        machine.schedule = GasSchedule::free();
        machine.verify_signatures = true;
        machine.serial_apply = serial;
        let mut bytes = Vec::new();
        for block in &blocks {
            let (receipts, _) = machine.apply_block(block).expect("valid signed block");
            bytes.extend_from_slice(machine.state_root().as_bytes());
            for r in &receipts {
                bytes.extend_from_slice(r.tx_id.as_bytes());
                bytes.push(u8::from(r.status.is_success()));
                bytes.extend_from_slice(&r.fee_paid.to_le_bytes());
            }
        }
        sha256(&bytes)
    };

    let golden = run(true, 1);
    for serial in [true, false] {
        for threads in [1usize, 2, 8] {
            assert_eq!(
                golden,
                run(serial, threads),
                "serial_apply={serial} at {threads} verify threads must match \
                 the serial single-threaded commit digest bit for bit"
            );
        }
    }
}

/// Builds the transfer mix used by the scale-stack replay tests: a fixed
/// pseudorandom mix of intra- and cross-shard transfers over 24 accounts.
fn scale_mix(accounts: u64, count: u64) -> Vec<dcs_scale::Transfer> {
    let mut rng = dcs_sim::Rng::seed_from(0x000B_EAC0);
    (0..count)
        .map(|_| dcs_scale::Transfer {
            from: dcs_crypto::Address::from_index(rng.below(accounts)),
            to: dcs_crypto::Address::from_index(rng.below(accounts)),
            value: 1 + rng.below(100),
        })
        .collect()
}

fn scale_alloc(accounts: u64) -> Vec<(dcs_crypto::Address, u64)> {
    (0..accounts)
        .map(|i| (dcs_crypto::Address::from_index(i), 1_000_000))
        .collect()
}

/// The beacon-coordinated sharded stack (PR 10) under the sharded event
/// engine: the same seeded run — beacon chain, worker shards with
/// cross-shard lock/mint receipts, and the light client — must produce one
/// digest at 1, 2, and 8 engine workers. The digest covers every shard's
/// tip, height, state root, and counters, the beacon's chain and stats, and
/// the light client's sync progress.
#[test]
fn beacon_sharded_stack_is_engine_worker_invariant() {
    use dcs_scale::beacon::{BeaconNet, BeaconParams};

    let params = BeaconParams {
        shards: 3,
        ..BeaconParams::default()
    };
    let alloc = scale_alloc(24);
    let mix = scale_mix(24, 48);
    let run = |workers: usize| {
        let mut net = BeaconNet::new(&params, 11, &alloc);
        net.set_engine_workers(workers);
        for (i, t) in mix.iter().enumerate() {
            net.submit_at(SimTime::from_micros(3_000 * (i as u64 + 1)), *t);
        }
        net.run();
        (net.digest(), net.stats())
    };
    let (digest_1, stats_1) = run(1);
    assert!(stats_1.shard_blocks > 0, "the run must seal real blocks");
    assert!(stats_1.minted > 0, "the mix must cross shards");
    for workers in [2, 8] {
        let (digest_w, stats_w) = run(workers);
        assert_eq!(
            digest_1, digest_w,
            "{workers} engine workers must reproduce the serial scale stack"
        );
        assert_eq!(stats_w.events, stats_1.events);
    }
}

/// The payment-channel workload (PR 10): the same seeded schedule — opens,
/// off-chain payments, cheating unilateral closes, watchtower challenges,
/// and settlements through a real ordering network — must replay to
/// bit-identical dispute outcomes and application state hashes, at every
/// engine worker count.
#[test]
fn channel_workload_replays_bit_identically() {
    use dcs_ledger::{run_channel_workload, ChannelWorkloadParams};

    let base = ChannelWorkloadParams::default();
    let golden = run_channel_workload(&base, 99);
    assert!(golden.cheats_attempted > 0, "the schedule must cheat");
    assert_eq!(
        golden.cheats_punished, golden.cheats_attempted,
        "the watchtower must answer every stale close"
    );
    for workers in [None, Some(2), Some(8)] {
        let params = ChannelWorkloadParams {
            engine_workers: workers,
            ..base.clone()
        };
        let replay = run_channel_workload(&params, 99);
        assert_eq!(
            golden.state_hash, replay.state_hash,
            "workers={workers:?}: application state must replay bit-identically"
        );
        assert_eq!(golden.app_stats, replay.app_stats);
        assert_eq!(golden.height, replay.height);
        assert_eq!(golden.cheats_punished, replay.cheats_punished);
    }
}

/// The E23 gate: a light client tracking shard 0 over the live network must
/// stay under 10% of the bytes a full node replays (headers + SPV proofs
/// versus full block bodies), while having verified real inclusion proofs.
#[test]
fn light_client_downloads_under_a_tenth_of_full_replay() {
    use dcs_crypto::codec::Encode;
    use dcs_scale::beacon::{BeaconNet, BeaconParams};

    let params = BeaconParams {
        shards: 2,
        // Retain every body so the full-replay baseline is measurable.
        keep_depth: 100_000,
        ..BeaconParams::default()
    };
    let accounts = 24;
    let alloc = scale_alloc(accounts);
    let mut net = BeaconNet::new(&params, 5, &alloc);
    // A dense intra-shard mix keeps the bodies fat relative to headers.
    let mut rng = dcs_sim::Rng::seed_from(0xE23);
    for i in 0..600u64 {
        let t = dcs_scale::Transfer {
            from: dcs_crypto::Address::from_index(rng.below(accounts)),
            to: dcs_crypto::Address::from_index(rng.below(accounts)),
            value: 1 + rng.below(50),
        };
        net.submit_at(SimTime::from_micros(2_000 + i * 800), t);
    }
    net.run();

    let shard = net.shard(0).chain();
    let mut full_bytes = 0u64;
    for h in 1..=shard.height() {
        let hash = shard.canonical_at(h).expect("canonical chain is dense");
        let stored = shard.tree().get(&hash).expect("retained");
        let body = stored
            .body()
            .expect("keep_depth retains every body for the baseline");
        full_bytes += body.encoded().len() as u64;
    }
    assert!(shard.height() > 5, "the run must build a real chain");

    let light = net.light();
    let client = light.client().expect("the light client must bootstrap");
    assert!(
        client.tip_height() > 0,
        "the light client must sync real headers"
    );
    assert!(
        light.proofs_verified > 0,
        "the light client must verify real SPV inclusion proofs"
    );
    assert!(
        client.bytes_downloaded * 10 < full_bytes,
        "light sync must cost under 10% of full replay: {} vs {}",
        client.bytes_downloaded,
        full_bytes
    );
}

#[test]
fn reorg_trace_spans_match_chain_stats() {
    // A contentious PoW run — block interval close to gossip latency — forks
    // and reorgs mid-run. The trace must carry one `Reorg` span per branch
    // switch, attributed to the right peer, with depths that reproduce the
    // chain's own counters.
    let mut params = builders::PowParams {
        nodes: 8,
        hash_powers: vec![1_000.0],
        ..Default::default()
    };
    params.chain.consensus = ConsensusKind::ProofOfWork {
        initial_difficulty: 8 * 1_000, // ~1 s blocks: contention on purpose
        retarget_window: 0,
        target_interval_us: 1_000_000,
    };
    let mut runner = builders::build_pow(&params, 7);
    install_tracing(&mut runner, &TraceConfig::full());
    let _ = Workload::transfers(2.0, SimDuration::from_secs(100), 30).inject(runner.net_mut(), 99);
    runner.run_until(at(150));

    let mut traces = collect_traces(&runner);
    let timelines = Timelines::build(traces.records(), 0);

    let mut total_reorgs = 0u64;
    for (i, node) in runner.nodes().iter().enumerate() {
        let stats = node.core().chain.stats();
        let spans: Vec<_> = timelines
            .reorgs
            .iter()
            .filter(|r| r.node == i as u32)
            .collect();
        assert_eq!(
            spans.len() as u64,
            stats.reorgs,
            "peer {i}: one Reorg span per branch switch"
        );
        assert_eq!(
            spans.iter().map(|r| r.reverted).max().unwrap_or(0),
            stats.max_reorg_depth,
            "peer {i}: deepest traced revert must match chain stats"
        );
        assert_eq!(
            spans.iter().map(|r| r.reverted).sum::<u64>(),
            stats.blocks_reverted,
            "peer {i}: total traced reverts must match chain stats"
        );
        total_reorgs += stats.reorgs;
    }
    assert!(
        total_reorgs > 0,
        "this seed must actually exercise a mid-run reorg"
    );
}
