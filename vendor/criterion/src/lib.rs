//! Offline stand-in for `criterion`.
//!
//! The registry is unreachable from this build environment, so this crate
//! provides the slice of the criterion API the workspace's benches use —
//! [`Criterion`], benchmark groups, [`Bencher::iter`] /
//! [`Bencher::iter_batched`] / [`Bencher::iter_with_setup`],
//! [`BenchmarkId`], [`Throughput`], and the `criterion_group!` /
//! `criterion_main!` macros — over a simple median-of-samples wall-clock
//! harness. No statistical analysis, plots, or HTML reports: each benchmark
//! prints one line with the median time per iteration (and derived
//! throughput when configured).
//!
//! Honest-measurement notes: every sample times a batch of iterations
//! around a monotonic clock, batch sizes are auto-calibrated toward a fixed
//! per-benchmark budget, and setup work in `iter_batched`/`iter_with_setup`
//! is excluded from the timed window exactly as in real criterion.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const SAMPLES: usize = 7;
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(40);

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, None, f);
        self
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Records the per-iteration workload so results also print as a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stub autosizes samples.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub uses a fixed budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.label()),
            self.throughput,
            |b| f(b),
        );
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id.label()),
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (a no-op in the stub; exists for API compatibility).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A parameter-only id (the group name carries the function).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::new(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

/// Per-iteration workload used to derive a rate from the measured time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Controls how `iter_batched` amortizes setup; the stub treats all
/// variants as per-iteration setup.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: large batches in real criterion.
    SmallInput,
    /// Large inputs: small batches in real criterion.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The measurement callback handed to each benchmark closure.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled by the `iter*` methods.
    ns_per_iter: f64,
    measured: bool,
}

impl Bencher {
    /// Times `routine`, reporting the median time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until one sample meets the time budget.
        let mut batch: u64 = 1;
        loop {
            let t = time_batch(batch, &mut routine);
            if t >= TARGET_SAMPLE_TIME || batch >= 1 << 24 {
                break;
            }
            batch = next_batch(batch, t);
        }
        let mut samples = [0f64; SAMPLES];
        for s in samples.iter_mut() {
            let t = time_batch(batch, &mut routine);
            *s = t.as_nanos() as f64 / batch as f64;
        }
        self.record(median(&mut samples));
    }

    /// Times `routine` over inputs built by `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate the per-sample iteration count on untimed probes.
        let probe = {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        };
        let iters = iters_for(probe);
        let mut samples = [0f64; SAMPLES];
        for s in samples.iter_mut() {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
            }
            *s = total.as_nanos() as f64 / iters as f64;
        }
        self.record(median(&mut samples));
    }

    /// Criterion's older name for [`Bencher::iter_batched`] with
    /// per-iteration setup.
    pub fn iter_with_setup<I, O, S, R>(&mut self, setup: S, routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.iter_batched(setup, routine, BatchSize::PerIteration);
    }

    fn record(&mut self, ns: f64) {
        self.ns_per_iter = ns;
        self.measured = true;
    }
}

fn time_batch<O, R: FnMut() -> O>(batch: u64, routine: &mut R) -> Duration {
    let start = Instant::now();
    for _ in 0..batch {
        black_box(routine());
    }
    start.elapsed()
}

fn next_batch(batch: u64, took: Duration) -> u64 {
    let took_ns = took.as_nanos().max(1) as u64;
    let target_ns = TARGET_SAMPLE_TIME.as_nanos() as u64;
    (batch.saturating_mul(target_ns / took_ns + 1)).clamp(batch + 1, 1 << 24)
}

fn iters_for(probe: Duration) -> u64 {
    let probe_ns = probe.as_nanos().max(1) as u64;
    (TARGET_SAMPLE_TIME.as_nanos() as u64 / probe_ns).clamp(1, 1 << 16)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    samples[samples.len() / 2]
}

fn run_benchmark<F: FnOnce(&mut Bencher)>(label: &str, throughput: Option<Throughput>, f: F) {
    let mut bencher = Bencher {
        ns_per_iter: 0.0,
        measured: false,
    };
    f(&mut bencher);
    if !bencher.measured {
        println!("{label:<48} (no measurement recorded)");
        return;
    }
    let ns = bencher.ns_per_iter;
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) => {
            let mb_s = bytes as f64 / ns * 1e9 / (1024.0 * 1024.0);
            format!("  {mb_s:10.1} MiB/s")
        }
        Some(Throughput::Elements(n)) => {
            let elem_s = n as f64 / ns * 1e9;
            format!("  {elem_s:10.0} elem/s")
        }
        None => String::new(),
    };
    println!("{label:<48} {:>14}/iter{rate}", format_ns(ns));
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Collects benchmark functions into one runner, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` to run the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            ns_per_iter: 0.0,
            measured: false,
        };
        b.iter(|| black_box(1u64 + 1));
        assert!(b.measured);
        assert!(b.ns_per_iter > 0.0);
    }

    #[test]
    fn median_of_odd_samples() {
        let mut s = [5.0, 1.0, 3.0];
        assert_eq!(median(&mut s), 3.0);
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("build", 16).label(), "build/16");
        assert_eq!(BenchmarkId::from_parameter(64).label(), "64");
    }
}
