//! Collection strategies (`proptest::collection::vec`).

use crate::{Strategy, TestRng};
use std::ops::Range;

/// Strategy producing `Vec`s of values drawn from an element strategy.
pub struct VecStrategy<S> {
    elem: S,
    min: usize,
    max_exclusive: usize,
}

/// A vector of `elem` values with length drawn from `len` (half-open).
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy {
        elem,
        min: len.start,
        max_exclusive: len.end,
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.max_exclusive - self.min) as u64;
        let len = self.min + rng.below(span) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::any;

    #[test]
    fn lengths_in_range() {
        let strat = vec(any::<u8>(), 2..5);
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }
}
