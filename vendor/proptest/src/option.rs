//! Option strategies (`proptest::option::of`).

use crate::{Strategy, TestRng};

/// Strategy producing `Option`s of an inner strategy's values.
pub struct OptionStrategy<S> {
    inner: S,
}

/// `Some` three times out of four, `None` otherwise (mirroring real
/// proptest's Some-biased default).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
