//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this crate reimplements
//! the slice of the proptest API the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! * [`Strategy`] with `prop_map`/`boxed`, strategies for integer and float
//!   ranges, tuples, `Just`, [`any`], `collection::vec`, `option::of`,
//!   string patterns (length-range interpretation), and [`prop_oneof!`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`.
//!
//! Inputs are drawn from a deterministic SplitMix64 stream seeded by the
//! test name (override with `PROPTEST_SEED`), so failures reproduce across
//! runs. There is **no shrinking**: a failing case reports the generated
//! inputs verbatim. That is a weaker debugging experience than real
//! proptest but an identical pass/fail contract, which is what the tier-1
//! gate needs offline.

#![forbid(unsafe_code)]

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod option;

/// Everything the workspace's tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Deterministic RNG
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64 stream used to generate test inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seeds from the test name (stable across runs), or from the
    /// `PROPTEST_SEED` environment variable when set.
    pub fn from_name(name: &str) -> Self {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.trim().parse::<u64>() {
                return TestRng::new(seed);
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw below `bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating test values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe view over [`Strategy`], used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the wrapped value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives (built by
/// [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given arms. Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.arms.len() as u64) as usize;
        self.arms[pick].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// any::<T>() and primitive strategies
// ---------------------------------------------------------------------------

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary {
    /// Draws an arbitrary value, biased toward boundary values.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

/// An arbitrary value of `T`, edge-case biased.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // One draw in eight lands on a boundary value.
                if rng.below(8) == 0 {
                    match rng.below(5) {
                        0 => 0,
                        1 => 1,
                        2 => 2,
                        3 => <$t>::MAX,
                        _ => <$t>::MAX - 1,
                    }
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                if rng.below(8) == 0 {
                    match rng.below(5) {
                        0 => 0,
                        1 => 1,
                        2 => -1,
                        3 => <$t>::MAX,
                        _ => <$t>::MIN,
                    }
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.unit_f64() * 1e12;
        if rng.below(2) == 0 {
            mag
        } else {
            -mag
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        printable_char(rng)
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in out.iter_mut() {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

macro_rules! range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
            }
        }
    )*};
}

range_strategy_int!(i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

fn printable_char(rng: &mut TestRng) -> char {
    // Mostly printable ASCII, with a sprinkling of multi-byte code points so
    // codec round-trips see real UTF-8 widths.
    const EXOTIC: &[char] = &['é', 'ß', 'λ', 'Ж', '中', '🙂', '∞', '—'];
    if rng.below(8) == 0 {
        EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
    } else {
        (0x20 + rng.below(0x5f) as u8) as char
    }
}

/// String-pattern strategies (`"\\PC{0,64}"` and friends). The stub does not
/// run a regex engine: it reads an optional trailing `{min,max}` repetition
/// as the length range and fills with printable characters, which matches
/// how the workspace's tests use patterns (printable strings of bounded
/// length).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_repeat_suffix(self).unwrap_or((0, 16));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len).map(|_| printable_char(rng)).collect()
    }
}

fn parse_repeat_suffix(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let close = pattern.rfind('}')?;
    if close != pattern.len() - 1 || open >= close {
        return None;
    }
    let body = &pattern[open + 1..close];
    let (lo, hi) = match body.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = body.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((lo, hi))
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

// ---------------------------------------------------------------------------
// Config + errors + macros
// ---------------------------------------------------------------------------

/// Number of cases each property runs (and, in real proptest, much more).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the offline tier-1 gate
        // fast while still exercising each property broadly.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The case was rejected by `prop_assume!` (not a failure).
    Reject(String),
}

impl TestCaseError {
    /// A property violation carrying a rendered message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// An assumption rejection.
    pub fn reject(msg: String) -> Self {
        TestCaseError::Reject(msg)
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __inputs = format!(concat!($("  ", stringify!($arg), " = {:?}\n",)*), $(&$arg),*);
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "property {} failed at case {}/{}: {}\ninputs:\n{}",
                            stringify!($name), __case + 1, __config.cases, __msg, __inputs,
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a property, failing the case (not panicking)
/// when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)*);
    }};
}

/// Asserts two expressions differ inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), __l,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)*);
    }};
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1_000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let w = (1u64..u64::MAX).generate(&mut rng);
            assert!(w >= 1);
        }
    }

    #[test]
    fn string_pattern_length_parsed() {
        assert_eq!(parse_repeat_suffix("\\PC{0,64}"), Some((0, 64)));
        assert_eq!(parse_repeat_suffix("\\PC{3}"), Some((3, 3)));
        assert_eq!(parse_repeat_suffix("plain"), None);
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let s = "\\PC{0,8}".generate(&mut rng);
            assert!(s.chars().count() <= 8);
        }
    }

    proptest! {
        #[test]
        fn macro_round_trip(v in collection::vec(any::<u8>(), 0..32), n in 1usize..9) {
            prop_assert!(v.len() < 32);
            prop_assert!((1..9).contains(&n));
            prop_assume!(n != 1_000); // always holds; exercises the macro
            prop_assert_eq!(n, n);
            prop_assert_ne!(n, n + 1);
        }
    }
}
