//! Offline stand-in for the `serde` facade.
//!
//! The build environment has no registry access, and this workspace never
//! actually serializes anything through serde — every wire encoding goes
//! through `dcs-crypto::codec`. The `#[derive(Serialize, Deserialize)]`
//! annotations across the workspace exist so downstream users *could* plug
//! in real serde; here they must merely compile. This crate provides the
//! two trait names with blanket implementations, and the `derive` feature
//! re-exports no-op derive macros, so every existing annotation and bound
//! type-checks without pulling anything from the network.
//!
//! Swapping back to real serde is a one-line change in the workspace
//! manifest; no source file references anything beyond the trait names.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all
/// types so `T: Serialize` bounds are always satisfiable.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`; blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
