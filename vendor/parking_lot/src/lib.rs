//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Exposes the subset of the `parking_lot` API this workspace uses —
//! [`Mutex`] and [`RwLock`] with poison-free, non-`Result` lock methods.
//! A poisoned std lock (a panic while held) is recovered rather than
//! propagated, matching parking_lot's semantics of never poisoning.

#![forbid(unsafe_code)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps `value` in a new rwlock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
