//! No-op `Serialize`/`Deserialize` derives for the offline serde stand-in.
//!
//! The sibling `serde` stub blanket-implements both traits for every type,
//! so these derives have nothing to generate — they only need to exist so
//! `#[derive(Serialize, Deserialize)]` and `#[serde(...)]` helper
//! attributes parse.

use proc_macro::TokenStream;

/// Emits nothing; the stub `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Emits nothing; the stub `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
