//! Chain analytics (§5.2 lists "analytics" among the middleware services):
//! extract activity, utilization, and fee statistics from a chain replica —
//! the read side of the data layer.

use dcs_chain::{Chain, StateMachine};
use dcs_crypto::Address;
use dcs_primitives::Transaction;
use std::collections::HashMap;

/// Aggregate statistics over the canonical chain.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChainReport {
    /// Canonical blocks (excluding genesis).
    pub blocks: u64,
    /// Committed non-coinbase transactions.
    pub transactions: u64,
    /// Total value moved by plain transfers.
    pub value_transferred: u128,
    /// Total fees offered (gas limit × price over account txs).
    pub fees_offered: u128,
    /// Mean transactions per block.
    pub mean_block_utilization: f64,
    /// Transactions sent per address.
    pub activity_by_sender: HashMap<Address, u64>,
    /// Blocks proposed per address.
    pub blocks_by_proposer: HashMap<Address, u64>,
}

/// Scans the canonical chain and produces a [`ChainReport`].
pub fn analyze<M: StateMachine>(chain: &Chain<M>) -> ChainReport {
    let mut report = ChainReport::default();
    for hash in chain.canonical().iter().skip(1) {
        let block = &chain.tree().get(hash).expect("canonical stored").block;
        report.blocks += 1;
        *report
            .blocks_by_proposer
            .entry(block.header.proposer)
            .or_insert(0) += 1;
        for tx in &block.txs {
            match tx {
                Transaction::Coinbase { .. } => {}
                Transaction::Account(a) => {
                    report.transactions += 1;
                    report.value_transferred += u128::from(a.value);
                    report.fees_offered += u128::from(a.gas_limit) * u128::from(a.gas_price);
                    *report.activity_by_sender.entry(a.from).or_insert(0) += 1;
                }
                Transaction::Utxo(u) => {
                    report.transactions += 1;
                    report.value_transferred += u128::from(u.output_value());
                }
            }
        }
    }
    if report.blocks > 0 {
        report.mean_block_utilization = report.transactions as f64 / report.blocks as f64;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_chain::NullMachine;
    use dcs_primitives::{AccountTx, Block, BlockHeader, ChainConfig, Seal};

    #[test]
    fn report_counts_all_dimensions() {
        let cfg = ChainConfig::hyperledger_like();
        let genesis = dcs_chain::genesis_block(&cfg);
        let mut chain = Chain::new(genesis.clone(), cfg, NullMachine);
        let alice = Address::from_index(1);
        let bob = Address::from_index(2);
        let proposer = Address::from_index(9);

        let mut parent = genesis.hash();
        for h in 1..=3u64 {
            let txs = vec![
                Transaction::Coinbase {
                    to: proposer,
                    value: 10,
                    height: h,
                },
                Transaction::Account(AccountTx::transfer(alice, bob, 100, h)),
                Transaction::Account(AccountTx::transfer(bob, alice, 50, h)),
            ];
            let block = Block::new(BlockHeader::new(parent, h, h, proposer, Seal::None), txs);
            parent = block.hash();
            chain.import(block).unwrap();
        }

        let report = analyze(&chain);
        assert_eq!(report.blocks, 3);
        assert_eq!(report.transactions, 6);
        assert_eq!(report.value_transferred, 3 * 150);
        assert_eq!(report.activity_by_sender[&alice], 3);
        assert_eq!(report.activity_by_sender[&bob], 3);
        assert_eq!(report.blocks_by_proposer[&proposer], 3);
        assert_eq!(report.mean_block_utilization, 2.0);
        assert!(report.fees_offered > 0);
    }

    #[test]
    fn empty_chain_reports_zeroes() {
        let cfg = ChainConfig::hyperledger_like();
        let genesis = dcs_chain::genesis_block(&cfg);
        let chain = Chain::new(genesis, cfg, NullMachine);
        let report = analyze(&chain);
        assert_eq!(report, ChainReport::default());
    }
}
