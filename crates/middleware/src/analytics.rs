//! Chain analytics (§5.2 lists "analytics" among the middleware services):
//! extract activity, utilization, and fee statistics from a chain replica —
//! the read side of the data layer. Two modes: a one-shot full scan
//! ([`analyze`]) and an incremental tracker ([`LiveAnalytics`]) fed by
//! chain events, which maintains the identical report in O(delta) per
//! block instead of O(chain) per query.

use dcs_chain::{BlockStore, Chain, ChainEvent, StateMachine};
use dcs_crypto::{Address, Hash256};
use dcs_primitives::{Block, Transaction};
use std::collections::HashMap;

/// Aggregate statistics over the canonical chain.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChainReport {
    /// Canonical blocks (excluding genesis).
    pub blocks: u64,
    /// Committed non-coinbase transactions.
    pub transactions: u64,
    /// Total value moved by plain transfers.
    pub value_transferred: u128,
    /// Total fees offered (gas limit × price over account txs).
    pub fees_offered: u128,
    /// Mean transactions per block.
    pub mean_block_utilization: f64,
    /// Transactions sent per address.
    pub activity_by_sender: HashMap<Address, u64>,
    /// Blocks proposed per address.
    pub blocks_by_proposer: HashMap<Address, u64>,
}

impl ChainReport {
    /// Folds one canonical block into the report.
    pub fn absorb_block(&mut self, block: &Block) {
        self.blocks += 1;
        *self
            .blocks_by_proposer
            .entry(block.header.proposer)
            .or_insert(0) += 1;
        for tx in &block.txs {
            match tx {
                Transaction::Coinbase { .. } => {}
                Transaction::Account(a) => {
                    self.transactions += 1;
                    self.value_transferred += u128::from(a.value);
                    self.fees_offered += u128::from(a.gas_limit) * u128::from(a.gas_price);
                    *self.activity_by_sender.entry(a.from).or_insert(0) += 1;
                }
                Transaction::Utxo(u) => {
                    self.transactions += 1;
                    self.value_transferred += u128::from(u.output_value());
                }
            }
        }
        self.refresh_utilization();
    }

    /// Removes a reverted block's contribution — the exact inverse of
    /// [`ChainReport::absorb_block`]. Zeroed map entries are dropped so a
    /// shed-then-absorbed report compares equal to a fresh scan.
    pub fn shed_block(&mut self, block: &Block) {
        self.blocks -= 1;
        if let Some(n) = self.blocks_by_proposer.get_mut(&block.header.proposer) {
            *n -= 1;
            if *n == 0 {
                self.blocks_by_proposer.remove(&block.header.proposer);
            }
        }
        for tx in &block.txs {
            match tx {
                Transaction::Coinbase { .. } => {}
                Transaction::Account(a) => {
                    self.transactions -= 1;
                    self.value_transferred -= u128::from(a.value);
                    self.fees_offered -= u128::from(a.gas_limit) * u128::from(a.gas_price);
                    if let Some(n) = self.activity_by_sender.get_mut(&a.from) {
                        *n -= 1;
                        if *n == 0 {
                            self.activity_by_sender.remove(&a.from);
                        }
                    }
                }
                Transaction::Utxo(u) => {
                    self.transactions -= 1;
                    self.value_transferred -= u128::from(u.output_value());
                }
            }
        }
        self.refresh_utilization();
    }

    fn refresh_utilization(&mut self) {
        self.mean_block_utilization = if self.blocks > 0 {
            self.transactions as f64 / self.blocks as f64
        } else {
            0.0
        };
    }

    /// Renders the report as a self-contained JSON object. Map entries are
    /// emitted in address order so two equal reports serialize to the same
    /// bytes; addresses are lowercase hex strings and the top senders and
    /// proposers are capped at the 16 busiest of each.
    pub fn to_json(&self) -> String {
        fn top16(map: &HashMap<Address, u64>) -> String {
            let mut entries: Vec<(&Address, &u64)> = map.iter().collect();
            // Busiest first; ties broken by address so output is stable.
            entries.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
            let fields: Vec<String> = entries
                .iter()
                .take(16)
                .map(|(addr, n)| format!("\"{addr}\":{n}"))
                .collect();
            format!("{{{}}}", fields.join(","))
        }
        format!(
            concat!(
                "{{\"blocks\":{},\"transactions\":{},\"value_transferred\":{},",
                "\"fees_offered\":{},\"mean_block_utilization\":{:.6},",
                "\"senders\":{},\"top_senders\":{},",
                "\"proposers\":{},\"top_proposers\":{}}}"
            ),
            self.blocks,
            self.transactions,
            self.value_transferred,
            self.fees_offered,
            self.mean_block_utilization,
            self.activity_by_sender.len(),
            top16(&self.activity_by_sender),
            self.blocks_by_proposer.len(),
            top16(&self.blocks_by_proposer),
        )
    }
}

/// Scans the canonical chain and produces a [`ChainReport`]. O(chain);
/// for continuous monitoring feed a [`LiveAnalytics`] instead.
pub fn analyze<M: StateMachine, S: BlockStore>(chain: &Chain<M, S>) -> ChainReport {
    let mut report = ChainReport::default();
    for hash in chain.canonical().iter().skip(1) {
        report.absorb_block(chain.tree().get(hash).expect("canonical stored").block());
    }
    report
}

/// Event-driven analytics: maintains a [`ChainReport`] that always equals
/// what [`analyze`] would recompute, by absorbing extended blocks and
/// shedding/absorbing the two branches of each reorg. Feed it every event
/// the chain emits, along with the pre-import tip.
#[derive(Debug, Clone, Default)]
pub struct LiveAnalytics {
    report: ChainReport,
}

impl LiveAnalytics {
    /// An empty tracker for a chain at genesis.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current report — O(1), no chain walk.
    pub fn report(&self) -> &ChainReport {
        &self.report
    }

    /// Folds one chain event into the report. `old_tip` is the canonical
    /// tip hash from *before* the import that produced `event` (the same
    /// value consensus nodes thread to their own reorg handling).
    pub fn on_event<M: StateMachine, S: BlockStore>(
        &mut self,
        chain: &Chain<M, S>,
        event: &ChainEvent,
        old_tip: Hash256,
    ) {
        match event {
            ChainEvent::Extended { block } => {
                self.report
                    .absorb_block(chain.tree().get(block).expect("tip stored").block());
            }
            ChainEvent::Reorg {
                reverted,
                applied,
                new_tip,
            } => {
                let mut cur = old_tip;
                for _ in 0..*reverted {
                    let sb = chain.tree().get(&cur).expect("old branch stored");
                    self.report.shed_block(sb.block());
                    cur = sb.header().parent;
                }
                let mut cur = *new_tip;
                for _ in 0..*applied {
                    let sb = chain.tree().get(&cur).expect("new branch stored");
                    self.report.absorb_block(sb.block());
                    cur = sb.header().parent;
                }
            }
            ChainEvent::SideChain { .. } | ChainEvent::Orphaned => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_chain::NullMachine;
    use dcs_primitives::{AccountTx, Block, BlockHeader, ChainConfig, Seal};

    #[test]
    fn report_counts_all_dimensions() {
        let cfg = ChainConfig::hyperledger_like();
        let genesis = dcs_chain::genesis_block(&cfg);
        let mut chain = Chain::new(genesis.clone(), cfg, NullMachine);
        let alice = Address::from_index(1);
        let bob = Address::from_index(2);
        let proposer = Address::from_index(9);

        let mut parent = genesis.hash();
        for h in 1..=3u64 {
            let txs = vec![
                Transaction::Coinbase {
                    to: proposer,
                    value: 10,
                    height: h,
                },
                Transaction::Account(AccountTx::transfer(alice, bob, 100, h)),
                Transaction::Account(AccountTx::transfer(bob, alice, 50, h)),
            ];
            let block = Block::new(BlockHeader::new(parent, h, h, proposer, Seal::None), txs);
            parent = block.hash();
            chain.import(block).unwrap();
        }

        let report = analyze(&chain);
        assert_eq!(report.blocks, 3);
        assert_eq!(report.transactions, 6);
        assert_eq!(report.value_transferred, 3 * 150);
        assert_eq!(report.activity_by_sender[&alice], 3);
        assert_eq!(report.activity_by_sender[&bob], 3);
        assert_eq!(report.blocks_by_proposer[&proposer], 3);
        assert_eq!(report.mean_block_utilization, 2.0);
        assert!(report.fees_offered > 0);
    }

    #[test]
    fn empty_chain_reports_zeroes() {
        let cfg = ChainConfig::hyperledger_like();
        let genesis = dcs_chain::genesis_block(&cfg);
        let chain = Chain::new(genesis, cfg, NullMachine);
        let report = analyze(&chain);
        assert_eq!(report, ChainReport::default());
    }

    #[test]
    fn live_analytics_tracks_full_scan_through_forks_and_reorgs() {
        let cfg = ChainConfig::bitcoin_like();
        let genesis = dcs_chain::genesis_block(&cfg);
        let mut chain = Chain::new(genesis.clone(), cfg, NullMachine);
        let mut live = LiveAnalytics::new();

        let tx = |from: u64, v: u64, nonce: u64| {
            Transaction::Account(AccountTx::transfer(
                Address::from_index(from),
                Address::from_index(from + 1),
                v,
                nonce,
            ))
        };
        let block = |parent: &Block, salt: u64, txs: Vec<Transaction>| {
            Block::new(
                BlockHeader::new(
                    parent.hash(),
                    parent.header.height + 1,
                    salt,
                    Address::from_index(salt % 4),
                    Seal::None,
                ),
                txs,
            )
        };

        // A fork: a-branch of 2 blocks, then a b-branch of 3 that wins.
        let a1 = block(&genesis, 1, vec![tx(1, 100, 0), tx(2, 30, 0)]);
        let a2 = block(&a1, 2, vec![tx(1, 7, 1)]);
        let b1 = block(&genesis, 10, vec![tx(3, 500, 0)]);
        let b2 = block(&b1, 11, vec![]);
        let b3 = block(&b2, 12, vec![tx(1, 100, 0)]);
        for b in [&a1, &a2, &b1, &b2, &b3] {
            let old_tip = chain.tip_hash();
            let ev = chain.import(b.clone()).unwrap();
            live.on_event(&chain, &ev, old_tip);
            assert_eq!(live.report(), &analyze(&chain), "live ≡ scan at every step");
        }
        // The a-branch was fully shed: its exclusive senders are gone.
        assert_eq!(live.report().blocks, 3);
        assert!(!live
            .report()
            .activity_by_sender
            .contains_key(&Address::from_index(2)));
    }
}
