//! An on-chain payment-channel application (§5.4, \[30\]) behind the
//! ABCI-style [`Application`](crate::Application) interface: channel opens,
//! closes, disputes, and settlements ride *real* transactions through the
//! mempool/commit path of any consensus network, while balance updates stay
//! off-chain with the parties (who exchange dual-signed
//! [`ChannelState`]s and submit them only at close).
//!
//! The app is the "contract": it escrows funds at open, runs the dispute
//! window in block heights (read off each block's coinbase), and pays out
//! the winning state at settlement. A watchtower is just a client that
//! submits [`ChannelOp::Challenge`] when it sees a stale unilateral close
//! committed — see `dcs_ledger`'s channel workload.

use crate::Application;
use dcs_crypto::codec::{decode_all, Decode, DecodeError, Encode, Reader};
use dcs_crypto::{sha256, Address, Hash256, PublicKey, Signature};
use dcs_primitives::{AccountTx, Amount, Transaction, TxPayload};
use dcs_scale::channels::{ChannelState, PaymentChannel, Phase};
use dcs_state::AccountDb;
use std::collections::BTreeMap;

/// Operations the channel application accepts, carried as
/// [`TxPayload::Data`] on transactions addressed to
/// [`ChannelApp::app_address`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelOp {
    /// Open a channel: escrow `fund_a` + `fund_b` from the two parties.
    Open {
        /// Caller-chosen channel id (must be unused).
        id: u64,
        /// The `a` party.
        a: Address,
        /// The `b` party.
        b: Address,
        /// `a`'s state-verification key.
        key_a: PublicKey,
        /// `b`'s state-verification key.
        key_b: PublicKey,
        /// `a`'s escrowed funding.
        fund_a: Amount,
        /// `b`'s escrowed funding.
        fund_b: Amount,
    },
    /// Both parties settle the latest state cooperatively.
    CoopClose {
        /// The channel to settle.
        id: u64,
    },
    /// One party publishes a dual-signed state, starting the dispute window.
    UniClose {
        /// The channel to close.
        id: u64,
        /// The published state.
        state: ChannelState,
        /// `a`'s signature over the state digest.
        sig_a: Signature,
        /// `b`'s signature over the state digest.
        sig_b: Signature,
    },
    /// A watchtower (or the counterparty) answers a unilateral close with a
    /// strictly newer dual-signed state.
    Challenge {
        /// The disputed channel.
        id: u64,
        /// The newer state.
        state: ChannelState,
        /// `a`'s signature.
        sig_a: Signature,
        /// `b`'s signature.
        sig_b: Signature,
    },
    /// Settle a disputed close once its window has passed.
    Finalize {
        /// The channel to settle.
        id: u64,
    },
}

const OP_OPEN: u8 = 1;
const OP_COOP_CLOSE: u8 = 2;
const OP_UNI_CLOSE: u8 = 3;
const OP_CHALLENGE: u8 = 4;
const OP_FINALIZE: u8 = 5;

fn encode_state(state: &ChannelState, out: &mut Vec<u8>) {
    state.channel_id.encode(out);
    state.seq.encode(out);
    state.balance_a.encode(out);
    state.balance_b.encode(out);
}

fn decode_state(r: &mut Reader<'_>) -> Result<ChannelState, DecodeError> {
    Ok(ChannelState {
        channel_id: u64::decode(r)?,
        seq: u64::decode(r)?,
        balance_a: u64::decode(r)?,
        balance_b: u64::decode(r)?,
    })
}

impl Encode for ChannelOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ChannelOp::Open {
                id,
                a,
                b,
                key_a,
                key_b,
                fund_a,
                fund_b,
            } => {
                out.push(OP_OPEN);
                id.encode(out);
                a.encode(out);
                b.encode(out);
                key_a.encode(out);
                key_b.encode(out);
                fund_a.encode(out);
                fund_b.encode(out);
            }
            ChannelOp::CoopClose { id } => {
                out.push(OP_COOP_CLOSE);
                id.encode(out);
            }
            ChannelOp::UniClose {
                id,
                state,
                sig_a,
                sig_b,
            } => {
                out.push(OP_UNI_CLOSE);
                id.encode(out);
                encode_state(state, out);
                sig_a.encode(out);
                sig_b.encode(out);
            }
            ChannelOp::Challenge {
                id,
                state,
                sig_a,
                sig_b,
            } => {
                out.push(OP_CHALLENGE);
                id.encode(out);
                encode_state(state, out);
                sig_a.encode(out);
                sig_b.encode(out);
            }
            ChannelOp::Finalize { id } => {
                out.push(OP_FINALIZE);
                id.encode(out);
            }
        }
    }
}

impl Decode for ChannelOp {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let tag = r.take_array::<1>()?[0];
        match tag {
            OP_OPEN => Ok(ChannelOp::Open {
                id: u64::decode(r)?,
                a: Address::decode(r)?,
                b: Address::decode(r)?,
                key_a: PublicKey::decode(r)?,
                key_b: PublicKey::decode(r)?,
                fund_a: u64::decode(r)?,
                fund_b: u64::decode(r)?,
            }),
            OP_COOP_CLOSE => Ok(ChannelOp::CoopClose {
                id: u64::decode(r)?,
            }),
            OP_UNI_CLOSE => Ok(ChannelOp::UniClose {
                id: u64::decode(r)?,
                state: decode_state(r)?,
                sig_a: Signature::decode(r)?,
                sig_b: Signature::decode(r)?,
            }),
            OP_CHALLENGE => Ok(ChannelOp::Challenge {
                id: u64::decode(r)?,
                state: decode_state(r)?,
                sig_a: Signature::decode(r)?,
                sig_b: Signature::decode(r)?,
            }),
            OP_FINALIZE => Ok(ChannelOp::Finalize {
                id: u64::decode(r)?,
            }),
            other => Err(DecodeError::BadTag(other)),
        }
    }
}

impl ChannelOp {
    /// Wraps this op into a transaction addressed to the channel app.
    /// `nonce` is the submitting client's account nonce (the app itself
    /// does not check nonces; the mempool/dedup layer does).
    pub fn into_tx(self, from: Address, nonce: u64) -> Transaction {
        let mut tx = AccountTx::transfer(from, ChannelApp::app_address(), 0, nonce);
        tx.gas_limit = 0;
        tx.gas_price = 0;
        tx.payload = TxPayload::Data(self.encoded());
        Transaction::Account(tx)
    }
}

/// Per-op counters (the channel-workload measurands).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelAppStats {
    /// Channels opened.
    pub opens: u64,
    /// Cooperative closes settled.
    pub coop_closes: u64,
    /// Unilateral closes published.
    pub uni_closes: u64,
    /// Challenges accepted (a newer state displaced a published one).
    pub challenges: u64,
    /// Disputed closes settled after their window.
    pub finalized: u64,
    /// Operations rejected (bad signature, wrong phase, underfunded, …).
    pub rejected: u64,
}

/// The replicated channel application: escrow ledger + hosted channels.
#[derive(Debug)]
pub struct ChannelApp {
    genesis_alloc: Vec<(Address, Amount)>,
    ledger: AccountDb,
    // BTreeMap: channel iteration feeds `state_hash`, which must not
    // depend on hash order (the determinism sweep).
    channels: BTreeMap<u64, PaymentChannel>,
    /// Current chain height, read off each block's leading coinbase.
    height: u64,
    dispute_window: u64,
    /// Op counters.
    pub stats: ChannelAppStats,
}

impl ChannelApp {
    /// An app with pre-funded party accounts and the given dispute window
    /// (in blocks).
    pub fn new(dispute_window: u64, alloc: &[(Address, Amount)]) -> Self {
        let mut ledger = AccountDb::new();
        for (addr, amount) in alloc {
            ledger.credit(addr, *amount);
        }
        ChannelApp {
            genesis_alloc: alloc.to_vec(),
            ledger,
            channels: BTreeMap::new(),
            height: 0,
            dispute_window,
            stats: ChannelAppStats::default(),
        }
    }

    /// The well-known address channel operations are sent to.
    pub fn app_address() -> Address {
        Address::from_hash(&sha256(b"middleware-channel-app"))
    }

    /// On-chain (escrow-ledger) balance of a party.
    pub fn balance(&self, addr: &Address) -> Amount {
        self.ledger.balance(addr)
    }

    /// A hosted channel, if it exists.
    pub fn channel(&self, id: u64) -> Option<&PaymentChannel> {
        self.channels.get(&id)
    }

    /// Number of channels ever opened.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Channels currently open or disputed.
    pub fn live_channels(&self) -> usize {
        self.channels
            .values()
            .filter(|c| c.phase != Phase::Closed)
            .count()
    }

    /// The chain height the app has observed (from block coinbases).
    pub fn observed_height(&self) -> u64 {
        self.height
    }

    fn apply_op(&mut self, op: ChannelOp) -> Result<(), String> {
        match op {
            ChannelOp::Open {
                id,
                a,
                b,
                key_a,
                key_b,
                fund_a,
                fund_b,
            } => {
                if self.channels.contains_key(&id) {
                    return Err(format!("channel {id} already exists"));
                }
                self.ledger
                    .debit(&a, fund_a)
                    .map_err(|e| e.to_string())
                    .and_then(|()| {
                        self.ledger.debit(&b, fund_b).map_err(|e| {
                            // Roll back a's escrow; opens are atomic.
                            self.ledger.credit(&a, fund_a);
                            e.to_string()
                        })
                    })?;
                self.channels.insert(
                    id,
                    PaymentChannel::open(id, a, b, key_a, key_b, fund_a, fund_b),
                );
                self.stats.opens += 1;
                Ok(())
            }
            ChannelOp::CoopClose { id } => {
                let ch = self
                    .channels
                    .get_mut(&id)
                    .ok_or_else(|| format!("unknown channel {id}"))?;
                let (pa, pb) = ch.settle_cooperative().map_err(|e| e.to_string())?;
                let (a, b) = (ch.a, ch.b);
                self.ledger.credit(&a, pa);
                self.ledger.credit(&b, pb);
                self.stats.coop_closes += 1;
                Ok(())
            }
            ChannelOp::UniClose {
                id,
                state,
                sig_a,
                sig_b,
            } => {
                let deadline = self.height + self.dispute_window;
                let ch = self
                    .channels
                    .get_mut(&id)
                    .ok_or_else(|| format!("unknown channel {id}"))?;
                ch.publish_close(state, &sig_a, &sig_b, deadline)
                    .map_err(|e| e.to_string())?;
                self.stats.uni_closes += 1;
                Ok(())
            }
            ChannelOp::Challenge {
                id,
                state,
                sig_a,
                sig_b,
            } => {
                let height = self.height;
                let ch = self
                    .channels
                    .get_mut(&id)
                    .ok_or_else(|| format!("unknown channel {id}"))?;
                ch.challenge_close(state, &sig_a, &sig_b, height)
                    .map_err(|e| e.to_string())?;
                self.stats.challenges += 1;
                Ok(())
            }
            ChannelOp::Finalize { id } => {
                let height = self.height;
                let ch = self
                    .channels
                    .get_mut(&id)
                    .ok_or_else(|| format!("unknown channel {id}"))?;
                let (pa, pb) = ch.finalize(height).map_err(|e| e.to_string())?;
                let (a, b) = (ch.a, ch.b);
                self.ledger.credit(&a, pa);
                self.ledger.credit(&b, pb);
                self.stats.finalized += 1;
                Ok(())
            }
        }
    }
}

impl Application for ChannelApp {
    fn deliver_tx(&mut self, tx: &Transaction) -> Result<(), String> {
        match tx {
            // Every consensus-built block leads with a coinbase stamped
            // with its height — the app's clock for dispute windows.
            Transaction::Coinbase { height, .. } => {
                self.height = self.height.max(*height);
                Ok(())
            }
            Transaction::Account(acct) if acct.to == Some(Self::app_address()) => {
                let TxPayload::Data(bytes) = &acct.payload else {
                    return Err("channel app takes Data payloads only".into());
                };
                let op = decode_all::<ChannelOp>(bytes).map_err(|e| e.to_string())?;
                self.apply_op(op).inspect_err(|_| self.stats.rejected += 1)
            }
            // Traffic for other apps/accounts is none of our business.
            _ => Ok(()),
        }
    }

    fn state_hash(&self) -> Hash256 {
        let mut buf = Vec::new();
        self.ledger.root().encode(&mut buf);
        self.height.encode(&mut buf);
        for (id, ch) in &self.channels {
            id.encode(&mut buf);
            encode_state(&ch.state, &mut buf);
            match &ch.phase {
                Phase::Open => buf.push(0),
                Phase::Disputed { state, deadline } => {
                    buf.push(1);
                    encode_state(state, &mut buf);
                    deadline.encode(&mut buf);
                }
                Phase::Closed => buf.push(2),
            }
        }
        for c in [
            self.stats.opens,
            self.stats.coop_closes,
            self.stats.uni_closes,
            self.stats.challenges,
            self.stats.finalized,
            self.stats.rejected,
        ] {
            c.encode(&mut buf);
        }
        sha256(&buf)
    }

    fn reset(&mut self) {
        *self = ChannelApp::new(self.dispute_window, &self.genesis_alloc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_crypto::KeyPair;

    struct Party {
        kp: KeyPair,
        addr: Address,
    }

    fn party(seed: u8) -> Party {
        let kp = KeyPair::generate([seed; 32], 8);
        let addr = kp.address();
        Party { kp, addr }
    }

    fn signed(pa: &mut Party, pb: &mut Party, state: &ChannelState) -> (Signature, Signature) {
        let digest = state.digest();
        (
            pa.kp.sign(&digest).expect("keys remain"),
            pb.kp.sign(&digest).expect("keys remain"),
        )
    }

    fn funded_app(parties: &[&Party]) -> ChannelApp {
        let alloc: Vec<(Address, Amount)> = parties.iter().map(|p| (p.addr, 100_000)).collect();
        ChannelApp::new(10, &alloc)
    }

    fn deliver(app: &mut ChannelApp, op: ChannelOp) -> Result<(), String> {
        app.deliver_tx(&op.into_tx(Address::from_index(999), 0))
    }

    fn tick(app: &mut ChannelApp, height: u64) {
        app.deliver_tx(&Transaction::Coinbase {
            to: Address::ZERO,
            value: 0,
            height,
        })
        .expect("coinbase always applies");
    }

    #[test]
    fn op_codec_round_trips() {
        let mut a = party(1);
        let mut b = party(2);
        let state = ChannelState {
            channel_id: 7,
            seq: 3,
            balance_a: 600,
            balance_b: 400,
        };
        let (sa, sb) = signed(&mut a, &mut b, &state);
        let ops = [
            ChannelOp::Open {
                id: 7,
                a: a.addr,
                b: b.addr,
                key_a: a.kp.public_key(),
                key_b: b.kp.public_key(),
                fund_a: 600,
                fund_b: 400,
            },
            ChannelOp::CoopClose { id: 7 },
            ChannelOp::UniClose {
                id: 7,
                state: state.clone(),
                sig_a: sa.clone(),
                sig_b: sb.clone(),
            },
            ChannelOp::Challenge {
                id: 7,
                state,
                sig_a: sa,
                sig_b: sb,
            },
            ChannelOp::Finalize { id: 7 },
        ];
        for op in ops {
            let decoded = decode_all::<ChannelOp>(&op.encoded()).expect("round trip");
            assert_eq!(decoded, op);
        }
    }

    #[test]
    fn open_and_cooperative_close_settle_escrow() {
        let a = party(1);
        let b = party(2);
        let mut app = funded_app(&[&a, &b]);
        deliver(
            &mut app,
            ChannelOp::Open {
                id: 0,
                a: a.addr,
                b: b.addr,
                key_a: a.kp.public_key(),
                key_b: b.kp.public_key(),
                fund_a: 10_000,
                fund_b: 5_000,
            },
        )
        .expect("open");
        assert_eq!(app.balance(&a.addr), 90_000);
        assert_eq!(app.live_channels(), 1);
        deliver(&mut app, ChannelOp::CoopClose { id: 0 }).expect("close");
        assert_eq!(app.balance(&a.addr), 100_000);
        assert_eq!(app.balance(&b.addr), 100_000);
        assert_eq!(app.live_channels(), 0);
    }

    #[test]
    fn underfunded_open_rejected_atomically() {
        let a = party(1);
        let b = party(2);
        let mut app = funded_app(&[&a, &b]);
        let err = deliver(
            &mut app,
            ChannelOp::Open {
                id: 0,
                a: a.addr,
                b: b.addr,
                fund_a: 10_000,
                fund_b: 200_000, // more than b has
                key_a: a.kp.public_key(),
                key_b: b.kp.public_key(),
            },
        );
        assert!(err.is_err());
        assert_eq!(app.balance(&a.addr), 100_000, "a's escrow rolled back");
        assert_eq!(app.stats.rejected, 1);
    }

    #[test]
    fn stale_unilateral_close_loses_to_watchtower_challenge() {
        let mut a = party(1);
        let mut b = party(2);
        let mut app = funded_app(&[&a, &b]);
        deliver(
            &mut app,
            ChannelOp::Open {
                id: 0,
                a: a.addr,
                b: b.addr,
                key_a: a.kp.public_key(),
                key_b: b.kp.public_key(),
                fund_a: 10_000,
                fund_b: 0,
            },
        )
        .expect("open");
        // Off-chain: a pays b 4000 (seq 1), then tries to cheat by
        // publishing the richer-for-a genesis state (seq 0).
        let stale = ChannelState {
            channel_id: 0,
            seq: 0,
            balance_a: 10_000,
            balance_b: 0,
        };
        let latest = ChannelState {
            channel_id: 0,
            seq: 1,
            balance_a: 6_000,
            balance_b: 4_000,
        };
        let (stale_sa, stale_sb) = signed(&mut a, &mut b, &stale);
        let (new_sa, new_sb) = signed(&mut a, &mut b, &latest);
        tick(&mut app, 1);
        deliver(
            &mut app,
            ChannelOp::UniClose {
                id: 0,
                state: stale,
                sig_a: stale_sa,
                sig_b: stale_sb,
            },
        )
        .expect("unilateral close");
        deliver(
            &mut app,
            ChannelOp::Challenge {
                id: 0,
                state: latest,
                sig_a: new_sa,
                sig_b: new_sb,
            },
        )
        .expect("challenge in window");
        // Window (10 blocks from height 1) still open at 11, passed at 12.
        tick(&mut app, 11);
        assert!(deliver(&mut app, ChannelOp::Finalize { id: 0 }).is_err());
        tick(&mut app, 12);
        deliver(&mut app, ChannelOp::Finalize { id: 0 }).expect("finalize");
        assert_eq!(app.balance(&b.addr), 104_000, "the newer state won");
        assert_eq!(app.balance(&a.addr), 96_000);
    }

    #[test]
    fn state_hash_tracks_channel_lifecycle() {
        let a = party(1);
        let b = party(2);
        let mut app = funded_app(&[&a, &b]);
        let h0 = app.state_hash();
        deliver(
            &mut app,
            ChannelOp::Open {
                id: 0,
                a: a.addr,
                b: b.addr,
                key_a: a.kp.public_key(),
                key_b: b.kp.public_key(),
                fund_a: 1_000,
                fund_b: 1_000,
            },
        )
        .expect("open");
        let h1 = app.state_hash();
        assert_ne!(h0, h1);
        deliver(&mut app, ChannelOp::CoopClose { id: 0 }).expect("close");
        assert_ne!(h1, app.state_hash());
    }

    #[test]
    fn reset_restores_genesis() {
        let a = party(1);
        let b = party(2);
        let mut app = funded_app(&[&a, &b]);
        let genesis_hash = app.state_hash();
        deliver(
            &mut app,
            ChannelOp::Open {
                id: 0,
                a: a.addr,
                b: b.addr,
                key_a: a.kp.public_key(),
                key_b: b.kp.public_key(),
                fund_a: 1_000,
                fund_b: 0,
            },
        )
        .expect("open");
        app.reset();
        assert_eq!(app.state_hash(), genesis_hash);
        assert_eq!(app.balance(&a.addr), 100_000);
    }
}
