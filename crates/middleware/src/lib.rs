//! Blockchain middleware (§5.2 of the paper): "reusable blockchain
//! middleware will lead to more robust blockchain applications". This crate
//! provides the services the paper enumerates:
//!
//! * [`app`] — an ABCI-style application interface (\[29\]): applications
//!   implement `Application` and plug under the chain as a `StateMachine`
//!   without knowing anything about blocks or consensus.
//! * [`events`] — messaging and event notification: topic/contract
//!   subscriptions over execution receipts.
//! * [`identity`] — identity management: a certificate authority issuing
//!   membership certificates for permissioned networks, with revocation.
//! * [`oracle`] — data integration with the physical world: sensor feeds
//!   with noise, drift, and tamper models, aggregated robustly before
//!   anchoring on-chain (the generation-3.0 IoT path, §3.3).
//! * [`analytics`] — chain analytics: activity, utilization, and fee
//!   statistics extracted from a chain replica.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytics;
pub mod app;
pub mod channel_app;
pub mod events;
pub mod identity;
pub mod oracle;
pub mod workflow;

pub use analytics::{analyze, ChainReport, LiveAnalytics};
pub use app::{AppAdapter, Application};
pub use channel_app::{ChannelApp, ChannelAppStats, ChannelOp};
pub use events::{EventBus, EventFilter, Subscription};
pub use identity::{CertificateAuthority, MembershipCert, Registry};
pub use oracle::{Oracle, Sensor, SensorConfig};
pub use workflow::{Transition, Workflow};
