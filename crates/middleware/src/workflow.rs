//! The modeling layer (§4.2 of the paper): "modeling approaches are
//! required to express workflows ... these models allow for existing and
//! new applications to be expressed so as to permit blockchain
//! integration."
//!
//! A [`Workflow`] is a BPMN-flavoured finite-state process — states,
//! transitions, and per-transition authorized roles (the paper's Fig. 3
//! modeling pane: Production → Shipping → Validation → Agreement …).
//! [`Workflow::compile`] lowers it to contract bytecode for the platform
//! VM, so the *model is the contract*: the chain enforces that only the
//! authorized party can fire each transition, from the right source state,
//! emitting an event per step.
//!
//! Contract ABI (selector word at offset 0):
//! * selector 0 — `state()`: returns the current state index (free query).
//! * selector 1+t — fire transition `t`; reverts unless the caller is the
//!   transition's authorized address and the workflow sits in its source
//!   state.

use dcs_contracts::asm::{assemble, AsmError};
use dcs_contracts::stdlib::input_with;
use dcs_crypto::Address;

/// A transition of the process model.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Human-readable label (e.g. "ship", "approve").
    pub name: String,
    /// Source state index.
    pub from: u32,
    /// Destination state index.
    pub to: u32,
    /// The only address allowed to fire this transition.
    pub actor: Address,
}

/// A finite-state workflow model.
#[derive(Debug, Clone)]
pub struct Workflow {
    /// State names; index 0 is the initial state.
    pub states: Vec<String>,
    /// The transitions.
    pub transitions: Vec<Transition>,
}

/// Errors from workflow validation/compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkflowError {
    /// A transition references a state index out of range.
    BadState {
        /// The transition's name.
        transition: String,
        /// The offending state index.
        state: u32,
    },
    /// The model has no states.
    Empty,
    /// Internal: generated assembly failed to assemble.
    Codegen(AsmError),
}

impl core::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WorkflowError::BadState { transition, state } => {
                write!(
                    f,
                    "transition {transition:?} references unknown state {state}"
                )
            }
            WorkflowError::Empty => write!(f, "workflow has no states"),
            WorkflowError::Codegen(e) => write!(f, "code generation failed: {e}"),
        }
    }
}

impl std::error::Error for WorkflowError {}

impl Workflow {
    /// Validates the model: every transition's endpoints exist.
    ///
    /// # Errors
    ///
    /// [`WorkflowError::Empty`] or [`WorkflowError::BadState`].
    pub fn validate(&self) -> Result<(), WorkflowError> {
        if self.states.is_empty() {
            return Err(WorkflowError::Empty);
        }
        let n = self.states.len() as u32;
        for t in &self.transitions {
            for state in [t.from, t.to] {
                if state >= n {
                    return Err(WorkflowError::BadState {
                        transition: t.name.clone(),
                        state,
                    });
                }
            }
        }
        Ok(())
    }

    /// Compiles the model to VM bytecode (see the module docs for the ABI).
    ///
    /// # Errors
    ///
    /// Validation errors; codegen errors cannot occur for valid models.
    pub fn compile(&self) -> Result<Vec<u8>, WorkflowError> {
        self.validate()?;
        let mut src = String::new();
        // Dispatcher: selector 1+t → :t<t>.
        for (t, _) in self.transitions.iter().enumerate() {
            src.push_str(&format!(
                "push @t{t}\npush 0\ncalldataload\npush {}\neq\njumpi\n",
                t + 1
            ));
        }
        // Default: state() — return storage slot 0.
        src.push_str("push 0\nsload\npush 0\nswap 0\nmstore\npush 0\npush 32\nreturn\n");
        for (t, tr) in self.transitions.iter().enumerate() {
            src.push_str(&format!(":t{t}\njumpdest\n"));
            // require caller == actor
            src.push_str(&format!(
                "push 0x{}\ncaller\neq\niszero\npush @fail\nswap 0\njumpi\n",
                hex20(&tr.actor)
            ));
            // require state == from
            src.push_str(&format!(
                "push 0\nsload\npush {}\neq\niszero\npush @fail\nswap 0\njumpi\n",
                tr.from
            ));
            // state = to; emit an event carrying the transition index.
            src.push_str(&format!("push 0\npush {}\nsstore\n", tr.to));
            src.push_str(&format!("push 0\npush 0\npush {}\nlog1\nstop\n", t + 1));
        }
        src.push_str(":fail\njumpdest\npush 0\npush 0\nrevert\n");
        assemble(&src).map_err(WorkflowError::Codegen)
    }

    /// Call input that fires transition `t` (by index).
    pub fn fire_input(&self, t: usize) -> Vec<u8> {
        input_with(t as u8 + 1, &[])
    }

    /// Call input for the free `state()` query.
    pub fn state_input(&self) -> Vec<u8> {
        input_with(0, &[])
    }
}

/// The `push 0x…` operand for a full 20-byte address: the assembler's wide
/// hex form emits a right-aligned 32-byte word, matching the layout the
/// `caller` opcode pushes.
fn hex20(addr: &Address) -> String {
    addr.as_bytes().iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_contracts::exec::{self, BlockCtx};
    use dcs_contracts::Word;
    use dcs_primitives::{AccountTx, GasSchedule};
    use dcs_state::AccountDb;

    fn shipment_workflow(producer: Address, shipper: Address, retailer: Address) -> Workflow {
        Workflow {
            states: vec![
                "Production".into(),
                "Shipping".into(),
                "Validation".into(),
                "Agreement".into(),
            ],
            transitions: vec![
                Transition {
                    name: "ship".into(),
                    from: 0,
                    to: 1,
                    actor: producer,
                },
                Transition {
                    name: "deliver".into(),
                    from: 1,
                    to: 2,
                    actor: shipper,
                },
                Transition {
                    name: "approve".into(),
                    from: 2,
                    to: 3,
                    actor: retailer,
                },
            ],
        }
    }

    struct Deployed {
        db: AccountDb,
        contract: Address,
        schedule: GasSchedule,
        nonces: std::collections::HashMap<Address, u64>,
    }

    impl Deployed {
        fn new(wf: &Workflow, actors: &[Address]) -> Self {
            let mut db = AccountDb::new();
            for a in actors {
                db.credit(a, 1_000_000_000);
            }
            let code = wf.compile().expect("compiles");
            // The compiled model passes the platform's own §5.3 verifier.
            let report = dcs_contracts::verify::analyze(&code);
            assert!(
                report.is_clean(),
                "compiled workflow defective: {:?}",
                report.defects
            );
            let deploy = AccountTx::deploy(actors[0], code, 0, 10_000_000);
            let contract = deploy.contract_address();
            let schedule = GasSchedule::default();
            let r = exec::execute_tx(
                &mut db,
                &deploy,
                dcs_crypto::Hash256::ZERO,
                &Self::ctx(),
                &schedule,
            );
            assert!(r.status.is_success());
            let mut nonces = std::collections::HashMap::new();
            nonces.insert(actors[0], 1u64);
            Deployed {
                db,
                contract,
                schedule,
                nonces,
            }
        }

        fn ctx() -> BlockCtx {
            BlockCtx {
                proposer: Address::from_index(999),
                timestamp_us: 0,
                height: 1,
            }
        }

        fn fire(&mut self, wf: &Workflow, who: Address, t: usize) -> bool {
            let nonce = self.nonces.entry(who).or_insert(0);
            let tx = AccountTx::call(who, self.contract, wf.fire_input(t), 0, *nonce, 1_000_000);
            *nonce += 1;
            exec::execute_tx(
                &mut self.db,
                &tx,
                dcs_crypto::Hash256::ZERO,
                &Self::ctx(),
                &self.schedule,
            )
            .status
            .is_success()
        }

        fn state(&mut self, wf: &Workflow) -> u64 {
            let out = exec::query(
                &mut self.db,
                &self.contract,
                &Address::ZERO,
                &wf.state_input(),
            )
            .expect("state query");
            Word(out.try_into().expect("one word")).as_u64()
        }
    }

    fn actors() -> (Address, Address, Address) {
        (
            Address::from_index(1),
            Address::from_index(2),
            Address::from_index(3),
        )
    }

    #[test]
    fn happy_path_walks_the_model() {
        let (p, s, r) = actors();
        let wf = shipment_workflow(p, s, r);
        let mut d = Deployed::new(&wf, &[p, s, r]);
        assert_eq!(d.state(&wf), 0);
        assert!(d.fire(&wf, p, 0), "producer ships");
        assert_eq!(d.state(&wf), 1);
        assert!(d.fire(&wf, s, 1), "shipper delivers");
        assert_eq!(d.state(&wf), 2);
        assert!(d.fire(&wf, r, 2), "retailer approves");
        assert_eq!(d.state(&wf), 3);
    }

    #[test]
    fn wrong_actor_rejected() {
        let (p, s, r) = actors();
        let wf = shipment_workflow(p, s, r);
        let mut d = Deployed::new(&wf, &[p, s, r]);
        assert!(!d.fire(&wf, s, 0), "only the producer may ship");
        assert_eq!(d.state(&wf), 0, "state unchanged");
    }

    #[test]
    fn out_of_order_transition_rejected() {
        let (p, s, r) = actors();
        let wf = shipment_workflow(p, s, r);
        let mut d = Deployed::new(&wf, &[p, s, r]);
        assert!(!d.fire(&wf, s, 1), "cannot deliver before shipping");
        assert!(!d.fire(&wf, r, 2), "cannot approve from Production");
        assert!(d.fire(&wf, p, 0));
        assert!(!d.fire(&wf, p, 0), "cannot ship twice");
    }

    #[test]
    fn validation_catches_bad_models() {
        let wf = Workflow {
            states: vec![],
            transitions: vec![],
        };
        assert_eq!(wf.validate(), Err(WorkflowError::Empty));
        let wf = Workflow {
            states: vec!["a".into()],
            transitions: vec![Transition {
                name: "t".into(),
                from: 0,
                to: 5,
                actor: Address::ZERO,
            }],
        };
        assert!(matches!(
            wf.validate(),
            Err(WorkflowError::BadState { state: 5, .. })
        ));
    }

    #[test]
    fn transitions_emit_events() {
        let (p, s, r) = actors();
        let wf = shipment_workflow(p, s, r);
        let mut d = Deployed::new(&wf, &[p, s, r]);
        let nonce = d.nonces.entry(p).or_insert(0);
        let tx = AccountTx::call(p, d.contract, wf.fire_input(0), 0, *nonce, 1_000_000);
        *nonce += 1;
        let receipt = exec::execute_tx(
            &mut d.db,
            &tx,
            dcs_crypto::Hash256::ZERO,
            &Deployed::ctx(),
            &d.schedule,
        );
        assert!(receipt.status.is_success());
        assert_eq!(receipt.logs.len(), 1);
        assert_eq!(receipt.logs[0].topics, vec![Word::from_u64(1).as_hash()]);
    }
}
