//! Messaging and event notification (§5.2): a pub/sub bus over execution
//! receipts. Applications subscribe by contract address and/or topic; the
//! bus consumes the receipts the chain produces and fans matching
//! [`dcs_primitives::LogEntry`]s out to subscriber queues.

use dcs_crypto::{Address, Hash256};
use dcs_primitives::{LogEntry, Receipt};
use dcs_trace::{Id as TraceId, TraceEvent, Tracer};
use std::collections::HashMap;

/// What a subscriber wants to hear about.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventFilter {
    /// Only logs from this contract (any if `None`).
    pub contract: Option<Address>,
    /// Only logs carrying this topic (any if `None`).
    pub topic: Option<Hash256>,
}

impl EventFilter {
    /// Matches any event.
    pub fn any() -> Self {
        EventFilter::default()
    }

    /// Matches events from one contract.
    pub fn contract(addr: Address) -> Self {
        EventFilter {
            contract: Some(addr),
            topic: None,
        }
    }

    /// Matches events carrying a topic.
    pub fn topic(topic: Hash256) -> Self {
        EventFilter {
            contract: None,
            topic: Some(topic),
        }
    }

    fn matches(&self, log: &LogEntry) -> bool {
        if let Some(c) = &self.contract {
            if log.contract != *c {
                return false;
            }
        }
        if let Some(t) = &self.topic {
            if !log.topics.contains(t) {
                return false;
            }
        }
        true
    }
}

/// A delivered event: the log plus its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notification {
    /// Block that committed the emitting transaction.
    pub block: Hash256,
    /// The emitting transaction.
    pub tx_id: Hash256,
    /// The event payload.
    pub log: LogEntry,
}

/// Handle identifying a subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Subscription(u64);

/// The event bus.
///
/// # Examples
///
/// ```
/// use dcs_middleware::{EventBus, EventFilter};
///
/// let mut bus = EventBus::new();
/// let sub = bus.subscribe(EventFilter::any());
/// assert!(bus.drain(sub).is_empty());
/// ```
#[derive(Debug, Default)]
pub struct EventBus {
    next_id: u64,
    subs: HashMap<Subscription, (EventFilter, Vec<Notification>)>,
    delivered: u64,
    tracer: Tracer,
}

impl EventBus {
    /// An empty bus.
    pub fn new() -> Self {
        EventBus::default()
    }

    /// Installs a tracer; [`EventBus::publish_block_at`] records one
    /// [`TraceEvent::AppEvent`] per fanned-out notification. Disabled by
    /// default.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The bus tracer (disabled unless [`EventBus::set_tracer`] ran).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Registers a subscription; returns its handle.
    pub fn subscribe(&mut self, filter: EventFilter) -> Subscription {
        let id = Subscription(self.next_id);
        self.next_id += 1;
        self.subs.insert(id, (filter, Vec::new()));
        id
    }

    /// Removes a subscription, returning any undelivered notifications.
    pub fn unsubscribe(&mut self, sub: Subscription) -> Vec<Notification> {
        self.subs.remove(&sub).map(|(_, q)| q).unwrap_or_default()
    }

    /// Total notifications fanned out so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Feeds one block's receipts into the bus (the output of
    /// `Chain::drain_receipts`).
    pub fn publish_block(&mut self, block: Hash256, receipts: &[Receipt]) {
        self.publish_block_at(0, block, receipts);
    }

    /// [`EventBus::publish_block`] with a sim-time timestamp for the trace
    /// events (unused with tracing off).
    pub fn publish_block_at(&mut self, at_us: u64, block: Hash256, receipts: &[Receipt]) {
        let EventBus {
            subs,
            delivered,
            tracer,
            ..
        } = self;
        for receipt in receipts {
            if !receipt.status.is_success() {
                continue; // failed txs' logs were rolled back
            }
            for log in &receipt.logs {
                for (filter, queue) in subs.values_mut() {
                    if filter.matches(log) {
                        queue.push(Notification {
                            block,
                            tx_id: receipt.tx_id,
                            log: log.clone(),
                        });
                        *delivered += 1;
                        tracer.emit(
                            at_us,
                            TraceEvent::AppEvent {
                                tx: TraceId(receipt.tx_id.into_bytes()),
                            },
                        );
                    }
                }
            }
        }
    }

    /// Takes all pending notifications for a subscription.
    pub fn drain(&mut self, sub: Subscription) -> Vec<Notification> {
        self.subs
            .get_mut(&sub)
            .map(|(_, q)| std::mem::take(q))
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_crypto::sha256;
    use dcs_primitives::TxStatus;

    fn receipt_with_log(contract: Address, topic: Hash256, data: &[u8]) -> Receipt {
        Receipt {
            tx_id: sha256(data),
            status: TxStatus::Success,
            gas_used: 0,
            fee_paid: 0,
            logs: vec![LogEntry {
                contract,
                topics: vec![topic],
                data: data.to_vec(),
            }],
        }
    }

    #[test]
    fn topic_and_contract_filters() {
        let mut bus = EventBus::new();
        let c1 = Address::from_index(1);
        let c2 = Address::from_index(2);
        let t_transfer = sha256(b"Transfer");
        let t_mint = sha256(b"Mint");

        let all = bus.subscribe(EventFilter::any());
        let only_c1 = bus.subscribe(EventFilter::contract(c1));
        let only_transfer = bus.subscribe(EventFilter::topic(t_transfer));
        let both = bus.subscribe(EventFilter {
            contract: Some(c1),
            topic: Some(t_transfer),
        });

        let block = sha256(b"block");
        bus.publish_block(block, &[receipt_with_log(c1, t_transfer, b"a")]);
        bus.publish_block(block, &[receipt_with_log(c2, t_transfer, b"b")]);
        bus.publish_block(block, &[receipt_with_log(c1, t_mint, b"c")]);

        assert_eq!(bus.drain(all).len(), 3);
        assert_eq!(bus.drain(only_c1).len(), 2);
        assert_eq!(bus.drain(only_transfer).len(), 2);
        let matched = bus.drain(both);
        assert_eq!(matched.len(), 1);
        assert_eq!(matched[0].log.data, b"a");
    }

    #[test]
    fn publish_at_traces_one_app_event_per_notification() {
        use dcs_trace::TraceConfig;
        let mut bus = EventBus::new();
        bus.set_tracer(Tracer::new(0, &TraceConfig::full()));
        let _a = bus.subscribe(EventFilter::any());
        let _b = bus.subscribe(EventFilter::any());
        let r = receipt_with_log(Address::from_index(1), sha256(b"t"), b"x");
        bus.publish_block_at(42, sha256(b"b"), std::slice::from_ref(&r));
        let recs: Vec<_> = bus.tracer().records().collect();
        assert_eq!(recs.len(), 2, "one event per subscriber delivery");
        assert!(recs.iter().all(|rec| rec.at_us == 42
            && rec.event
                == TraceEvent::AppEvent {
                    tx: TraceId(r.tx_id.into_bytes())
                }));
    }

    #[test]
    fn failed_receipts_do_not_notify() {
        let mut bus = EventBus::new();
        let sub = bus.subscribe(EventFilter::any());
        let mut r = receipt_with_log(Address::from_index(1), sha256(b"t"), b"x");
        r.status = TxStatus::Failed("reverted".into());
        bus.publish_block(sha256(b"b"), &[r]);
        assert!(bus.drain(sub).is_empty());
        assert_eq!(bus.delivered(), 0);
    }

    #[test]
    fn drain_empties_queue_and_unsubscribe_stops_delivery() {
        let mut bus = EventBus::new();
        let sub = bus.subscribe(EventFilter::any());
        bus.publish_block(
            sha256(b"b"),
            &[receipt_with_log(Address::ZERO, sha256(b"t"), b"1")],
        );
        assert_eq!(bus.drain(sub).len(), 1);
        assert!(bus.drain(sub).is_empty());
        bus.unsubscribe(sub);
        bus.publish_block(
            sha256(b"b"),
            &[receipt_with_log(Address::ZERO, sha256(b"t"), b"2")],
        );
        assert!(bus.drain(sub).is_empty());
    }
}
