//! Identity management (§5.2): the membership service of a permissioned
//! ledger. A [`CertificateAuthority`] signs member public keys into
//! [`MembershipCert`]s; peers verify certificates against the CA's public
//! key and consult the [`Registry`] for revocations. This is what makes a
//! "private ledger \[that\] restricts access to a set of machines" (§2.1)
//! enforceable.

use dcs_crypto::codec::Encode;
use dcs_crypto::{sha256, Address, CryptoError, KeyPair, PublicKey, Signature};
use std::collections::HashSet;

/// Roles a member can hold in the consortium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// May submit transactions only.
    Client,
    /// Maintains the ledger and validates blocks.
    Peer,
    /// May order/propose blocks.
    Orderer,
}

impl Role {
    fn tag(self) -> u8 {
        match self {
            Role::Client => 0,
            Role::Peer => 1,
            Role::Orderer => 2,
        }
    }
}

/// A certificate: the CA's signature over (member key, role, serial).
#[derive(Debug, Clone)]
pub struct MembershipCert {
    /// The member's public key.
    pub member: PublicKey,
    /// Granted role.
    pub role: Role,
    /// Unique serial (used for revocation).
    pub serial: u64,
    /// CA signature over the certificate body.
    pub signature: Signature,
}

impl MembershipCert {
    fn body_hash(member: &PublicKey, role: Role, serial: u64) -> dcs_crypto::Hash256 {
        let mut bytes = member.encoded();
        bytes.push(role.tag());
        bytes.extend_from_slice(&serial.to_le_bytes());
        sha256(&bytes)
    }

    /// The member's ledger address.
    pub fn address(&self) -> Address {
        self.member.address()
    }
}

/// The consortium's certificate authority.
#[derive(Debug)]
pub struct CertificateAuthority {
    keypair: KeyPair,
    next_serial: u64,
}

impl CertificateAuthority {
    /// Creates a CA from a seed. `height` bounds how many certificates it
    /// can ever issue (`2^height`).
    pub fn new(seed: [u8; 32], height: u8) -> Self {
        CertificateAuthority {
            keypair: KeyPair::generate(seed, height),
            next_serial: 0,
        }
    }

    /// The key peers verify certificates against.
    pub fn public_key(&self) -> PublicKey {
        self.keypair.public_key()
    }

    /// Issues a certificate for `member` with `role`.
    ///
    /// # Errors
    ///
    /// [`CryptoError::KeyExhausted`] once the CA's one-time keys run out.
    pub fn issue(&mut self, member: PublicKey, role: Role) -> Result<MembershipCert, CryptoError> {
        let serial = self.next_serial;
        let digest = MembershipCert::body_hash(&member, role, serial);
        let signature = self.keypair.sign(&digest)?;
        self.next_serial += 1;
        Ok(MembershipCert {
            member,
            role,
            serial,
            signature,
        })
    }
}

/// The membership registry a peer consults: CA key + revocation list.
#[derive(Debug, Clone)]
pub struct Registry {
    ca: PublicKey,
    revoked: HashSet<u64>,
}

impl Registry {
    /// A registry trusting the given CA.
    pub fn new(ca: PublicKey) -> Self {
        Registry {
            ca,
            revoked: HashSet::new(),
        }
    }

    /// Revokes a certificate by serial.
    pub fn revoke(&mut self, serial: u64) {
        self.revoked.insert(serial);
    }

    /// Checks a certificate: CA signature valid, not revoked, role
    /// sufficient.
    pub fn verify(&self, cert: &MembershipCert, required: Role) -> bool {
        if self.revoked.contains(&cert.serial) {
            return false;
        }
        // Role lattice: Orderer ⊃ Peer ⊃ Client.
        if cert.role.tag() < required.tag() {
            return false;
        }
        let digest = MembershipCert::body_hash(&cert.member, cert.role, cert.serial);
        self.ca.verify(&digest, &cert.signature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn member_key(i: u8) -> PublicKey {
        KeyPair::generate([i; 32], 1).public_key()
    }

    #[test]
    fn issued_certificates_verify() {
        let mut ca = CertificateAuthority::new([1u8; 32], 3);
        let registry = Registry::new(ca.public_key());
        let cert = ca.issue(member_key(5), Role::Peer).unwrap();
        assert!(registry.verify(&cert, Role::Peer));
        assert!(
            registry.verify(&cert, Role::Client),
            "peer role implies client"
        );
        assert!(!registry.verify(&cert, Role::Orderer), "peer may not order");
    }

    #[test]
    fn forged_certificates_rejected() {
        let ca = CertificateAuthority::new([1u8; 32], 3);
        let mut rogue_ca = CertificateAuthority::new([66u8; 32], 3);
        let registry = Registry::new(ca.public_key());
        let forged = rogue_ca.issue(member_key(5), Role::Orderer).unwrap();
        assert!(!registry.verify(&forged, Role::Client));
    }

    #[test]
    fn tampered_role_rejected() {
        let mut ca = CertificateAuthority::new([1u8; 32], 3);
        let registry = Registry::new(ca.public_key());
        let mut cert = ca.issue(member_key(5), Role::Client).unwrap();
        cert.role = Role::Orderer; // escalate without re-signing
        assert!(!registry.verify(&cert, Role::Orderer));
    }

    #[test]
    fn revocation() {
        let mut ca = CertificateAuthority::new([1u8; 32], 3);
        let mut registry = Registry::new(ca.public_key());
        let cert = ca.issue(member_key(5), Role::Peer).unwrap();
        assert!(registry.verify(&cert, Role::Peer));
        registry.revoke(cert.serial);
        assert!(!registry.verify(&cert, Role::Peer));
    }

    #[test]
    fn ca_exhausts_gracefully() {
        let mut ca = CertificateAuthority::new([1u8; 32], 1); // 2 certs max
        ca.issue(member_key(1), Role::Client).unwrap();
        ca.issue(member_key(2), Role::Client).unwrap();
        assert!(matches!(
            ca.issue(member_key(3), Role::Client),
            Err(CryptoError::KeyExhausted { .. })
        ));
    }
}
