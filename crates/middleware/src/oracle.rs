//! Data integration with the physical world (§5.2): "real-life sensors can
//! be tampered with or produce inaccurate readings, which must be taken into
//! account when stored on the blockchain". A [`Sensor`] observes a ground
//! truth process with configurable noise, drift, and tampering; an
//! [`Oracle`] aggregates a quorum of sensors with a median (robust to up to
//! half faulty) and emits the value as an on-chain data transaction.

use dcs_crypto::Address;
use dcs_primitives::{AccountTx, Transaction, TxPayload};
use dcs_sim::Rng;

/// Fault/noise model of one sensor.
#[derive(Debug, Clone, Copy)]
pub struct SensorConfig {
    /// Standard deviation of zero-mean Gaussian measurement noise.
    pub noise_std: f64,
    /// Per-reading additive drift (mis-calibration).
    pub drift_per_reading: f64,
    /// If set, the sensor is compromised and always reports this value.
    pub tampered_value: Option<f64>,
}

impl Default for SensorConfig {
    fn default() -> Self {
        SensorConfig {
            noise_std: 0.5,
            drift_per_reading: 0.0,
            tampered_value: None,
        }
    }
}

/// A simulated physical sensor.
#[derive(Debug, Clone)]
pub struct Sensor {
    config: SensorConfig,
    accumulated_drift: f64,
}

impl Sensor {
    /// Creates a sensor with the given fault model.
    pub fn new(config: SensorConfig) -> Self {
        Sensor {
            config,
            accumulated_drift: 0.0,
        }
    }

    /// Observes the ground-truth `actual` value.
    pub fn read(&mut self, actual: f64, rng: &mut Rng) -> f64 {
        if let Some(v) = self.config.tampered_value {
            return v;
        }
        self.accumulated_drift += self.config.drift_per_reading;
        actual + self.accumulated_drift + rng.normal() * self.config.noise_std
    }
}

/// Aggregates sensor readings and anchors them on-chain.
#[derive(Debug)]
pub struct Oracle {
    sensors: Vec<Sensor>,
    account: Address,
    nonce: u64,
}

impl Oracle {
    /// An oracle over the given sensor fleet, submitting from `account`.
    pub fn new(sensors: Vec<Sensor>, account: Address) -> Self {
        Oracle {
            sensors,
            account,
            nonce: 0,
        }
    }

    /// One measurement round: every sensor reads, the median wins.
    /// The median tolerates strictly fewer than half tampered/broken
    /// sensors — the robustness the paper asks data integration to provide.
    pub fn measure(&mut self, actual: f64, rng: &mut Rng) -> f64 {
        let mut readings: Vec<f64> = self
            .sensors
            .iter_mut()
            .map(|s| s.read(actual, rng))
            .collect();
        readings.sort_by(|a, b| a.partial_cmp(b).expect("no NaN readings"));
        let n = readings.len();
        if n % 2 == 1 {
            readings[n / 2]
        } else {
            (readings[n / 2 - 1] + readings[n / 2]) / 2.0
        }
    }

    /// Wraps an aggregated value as a data-anchoring transaction
    /// (generation-3.0 telemetry committed to the ledger).
    pub fn anchor_tx(&mut self, value: f64, timestamp_us: u64) -> Transaction {
        let mut payload = Vec::with_capacity(16);
        payload.extend_from_slice(&value.to_le_bytes());
        payload.extend_from_slice(&timestamp_us.to_le_bytes());
        let mut tx = AccountTx::transfer(self.account, Address::ZERO, 0, self.nonce);
        self.nonce += 1;
        tx.payload = TxPayload::Data(payload);
        Transaction::Account(tx)
    }

    /// Parses a value anchored by [`Oracle::anchor_tx`].
    pub fn parse_anchor(tx: &Transaction) -> Option<(f64, u64)> {
        let Transaction::Account(a) = tx else {
            return None;
        };
        let TxPayload::Data(d) = &a.payload else {
            return None;
        };
        if d.len() != 16 {
            return None;
        }
        let value = f64::from_le_bytes(d[..8].try_into().ok()?);
        let ts = u64::from_le_bytes(d[8..].try_into().ok()?);
        Some((value, ts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_sensors_track_truth() {
        let sensors = (0..5)
            .map(|_| Sensor::new(SensorConfig::default()))
            .collect();
        let mut oracle = Oracle::new(sensors, Address::from_index(1));
        let mut rng = Rng::seed_from(1);
        let mut err_sum = 0.0;
        for i in 0..200 {
            let actual = 20.0 + (i as f64 * 0.1).sin();
            err_sum += (oracle.measure(actual, &mut rng) - actual).abs();
        }
        assert!(err_sum / 200.0 < 0.5, "mean error {}", err_sum / 200.0);
    }

    #[test]
    fn median_defeats_minority_tampering() {
        // 2 of 5 sensors report an adversarial 1000.0; the median ignores it.
        let mut sensors: Vec<Sensor> = (0..3)
            .map(|_| Sensor::new(SensorConfig::default()))
            .collect();
        for _ in 0..2 {
            sensors.push(Sensor::new(SensorConfig {
                tampered_value: Some(1000.0),
                ..SensorConfig::default()
            }));
        }
        let mut oracle = Oracle::new(sensors, Address::from_index(1));
        let mut rng = Rng::seed_from(2);
        let value = oracle.measure(20.0, &mut rng);
        assert!(
            (value - 20.0).abs() < 3.0,
            "tamper-resistant median, got {value}"
        );
    }

    #[test]
    fn majority_tampering_wins_as_expected() {
        // 3 of 5 tampered: the median is captured — the threat model's edge.
        let mut sensors: Vec<Sensor> = (0..2)
            .map(|_| Sensor::new(SensorConfig::default()))
            .collect();
        for _ in 0..3 {
            sensors.push(Sensor::new(SensorConfig {
                tampered_value: Some(1000.0),
                ..SensorConfig::default()
            }));
        }
        let mut oracle = Oracle::new(sensors, Address::from_index(1));
        let value = oracle.measure(20.0, &mut Rng::seed_from(3));
        assert!(value > 900.0);
    }

    #[test]
    fn drift_accumulates() {
        let mut s = Sensor::new(SensorConfig {
            noise_std: 0.0,
            drift_per_reading: 0.1,
            tampered_value: None,
        });
        let mut rng = Rng::seed_from(4);
        let mut last = 0.0;
        for _ in 0..10 {
            last = s.read(5.0, &mut rng);
        }
        assert!(
            (last - 6.0).abs() < 1e-9,
            "10 readings × 0.1 drift, got {last}"
        );
    }

    #[test]
    fn anchor_round_trip() {
        let mut oracle = Oracle::new(vec![], Address::from_index(1));
        let tx = oracle.anchor_tx(23.5, 1_000_000);
        let (v, t) = Oracle::parse_anchor(&tx).unwrap();
        assert_eq!(v, 23.5);
        assert_eq!(t, 1_000_000);
        // Nonces advance per anchor.
        let tx2 = oracle.anchor_tx(24.0, 2_000_000);
        assert_ne!(tx.id(), tx2.id());
    }
}
