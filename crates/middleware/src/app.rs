//! The ABCI-style application interface (paper §5.2, citing Tendermint's
//! ABCI \[29\]): applications "use the underlying blockchain system to
//! tolerate failures by replicating the state across multiple machines"
//! without implementing any blockchain machinery themselves.
//!
//! Implement [`Application`]; wrap it in [`AppAdapter`] and hand it to
//! `dcs_chain::Chain` as its `StateMachine`. The adapter deals with blocks,
//! receipts, and reorg rollback (by replay from genesis state — simple and
//! always correct for deterministic applications).

use dcs_chain::StateMachine;
use dcs_crypto::{sha256, Hash256};
use dcs_primitives::{Block, Receipt, Transaction};

/// A replicated application, oblivious to blockchain mechanics.
pub trait Application: core::fmt::Debug {
    /// Applies one transaction. Returning `Err` marks the transaction
    /// failed (it still consumes its slot in the block).
    ///
    /// # Errors
    ///
    /// A human-readable rejection reason.
    fn deliver_tx(&mut self, tx: &Transaction) -> Result<(), String>;

    /// A deterministic commitment to the current application state.
    fn state_hash(&self) -> Hash256;

    /// Resets to the genesis state (used for reorg replay).
    fn reset(&mut self);
}

/// Adapts an [`Application`] into a chain [`StateMachine`].
///
/// Reorg strategy: the adapter records every applied block; reverting
/// replays the application from genesis over the remaining prefix. This
/// trades CPU on (rare) reorgs for zero per-application undo machinery —
/// the right default for the small consortium ledgers this interface
/// targets.
#[derive(Debug)]
pub struct AppAdapter<A: Application> {
    app: A,
    applied: Vec<Block>,
}

impl<A: Application> AppAdapter<A> {
    /// Wraps an application positioned at its genesis state.
    pub fn new(app: A) -> Self {
        AppAdapter {
            app,
            applied: Vec::new(),
        }
    }

    /// The wrapped application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Blocks applied since genesis.
    pub fn height(&self) -> usize {
        self.applied.len()
    }
}

impl<A: Application> StateMachine for AppAdapter<A> {
    type Undo = ();

    fn apply_block(&mut self, block: &Block) -> Result<(Vec<Receipt>, ()), String> {
        let mut receipts = Vec::with_capacity(block.txs.len());
        for tx in &block.txs {
            let id = tx.id();
            match self.app.deliver_tx(tx) {
                Ok(()) => receipts.push(Receipt::success(id)),
                Err(reason) => receipts.push(Receipt::failed(id, reason)),
            }
        }
        self.applied.push(block.clone());
        Ok((receipts, ()))
    }

    fn revert_block(&mut self, _undo: ()) {
        // Replay-from-genesis rollback.
        self.applied.pop();
        self.app.reset();
        let blocks = std::mem::take(&mut self.applied);
        for block in &blocks {
            for tx in &block.txs {
                let _ = self.app.deliver_tx(tx);
            }
        }
        self.applied = blocks;
    }

    fn state_root(&self) -> Hash256 {
        self.app.state_hash()
    }
}

/// A tiny demonstration application: a replicated append-only register of
/// data payloads (checks the plumbing and serves as a doc example).
#[derive(Debug, Default, Clone)]
pub struct KvRegister {
    entries: Vec<Vec<u8>>,
}

impl KvRegister {
    /// Entries recorded so far.
    pub fn entries(&self) -> &[Vec<u8>] {
        &self.entries
    }
}

impl Application for KvRegister {
    fn deliver_tx(&mut self, tx: &Transaction) -> Result<(), String> {
        match tx {
            Transaction::Account(a) => match &a.payload {
                dcs_primitives::TxPayload::Data(d) => {
                    self.entries.push(d.clone());
                    Ok(())
                }
                _ => Err("register accepts only data payloads".into()),
            },
            Transaction::Coinbase { .. } => Ok(()),
            Transaction::Utxo(_) => Err("no UTXO support".into()),
        }
    }

    fn state_hash(&self) -> Hash256 {
        let mut bytes = Vec::new();
        for e in &self.entries {
            bytes.extend_from_slice(sha256(e).as_ref());
        }
        sha256(&bytes)
    }

    fn reset(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_chain::Chain;
    use dcs_crypto::Address;
    use dcs_primitives::{AccountTx, BlockHeader, ChainConfig, Seal, TxPayload};

    fn data_tx(bytes: &[u8], nonce: u64) -> Transaction {
        let mut tx = AccountTx::transfer(Address::from_index(1), Address::ZERO, 0, nonce);
        tx.payload = TxPayload::Data(bytes.to_vec());
        Transaction::Account(tx)
    }

    fn block(parent: Hash256, height: u64, txs: Vec<Transaction>) -> Block {
        Block::new(
            BlockHeader::new(parent, height, height, Address::ZERO, Seal::None),
            txs,
        )
    }

    #[test]
    fn application_sees_committed_transactions() {
        let cfg = ChainConfig::hyperledger_like();
        let genesis = dcs_chain::genesis_block(&cfg);
        let mut chain = Chain::new(genesis.clone(), cfg, AppAdapter::new(KvRegister::default()));
        let b1 = block(genesis.hash(), 1, vec![data_tx(b"hello", 0)]);
        chain.import(b1).unwrap();
        assert_eq!(chain.machine().app().entries(), &[b"hello".to_vec()]);
    }

    #[test]
    fn reorg_replays_application_state() {
        let cfg = ChainConfig::hyperledger_like();
        let genesis = dcs_chain::genesis_block(&cfg);
        let mut chain = Chain::new(genesis.clone(), cfg, AppAdapter::new(KvRegister::default()));

        let a1 = block(genesis.hash(), 1, vec![data_tx(b"branch-a", 0)]);
        chain.import(a1).unwrap();
        assert_eq!(chain.machine().app().entries(), &[b"branch-a".to_vec()]);

        let b1 = block(genesis.hash(), 1, vec![data_tx(b"branch-b", 1)]);
        let b2 = block(b1.hash(), 2, vec![data_tx(b"more-b", 2)]);
        chain.import(b1).unwrap();
        chain.import(b2).unwrap();

        // After the reorg the application state reflects only branch B.
        assert_eq!(
            chain.machine().app().entries(),
            &[b"branch-b".to_vec(), b"more-b".to_vec()]
        );
    }

    #[test]
    fn failed_txs_get_failed_receipts_without_stopping_the_block() {
        let mut adapter = AppAdapter::new(KvRegister::default());
        let b = block(
            Hash256::ZERO,
            1,
            vec![
                data_tx(b"ok", 0),
                Transaction::Account(AccountTx::transfer(
                    Address::from_index(1),
                    Address::from_index(2),
                    5,
                    1,
                )),
            ],
        );
        let (receipts, ()) = adapter.apply_block(&b).unwrap();
        assert!(receipts[0].status.is_success());
        assert!(!receipts[1].status.is_success());
        assert_eq!(adapter.app().entries().len(), 1);
    }

    #[test]
    fn state_hash_tracks_content() {
        let mut a = KvRegister::default();
        let h0 = a.state_hash();
        a.deliver_tx(&data_tx(b"x", 0)).unwrap();
        assert_ne!(a.state_hash(), h0);
        a.reset();
        assert_eq!(a.state_hash(), h0);
    }
}
