//! The live operations surface: one-call metrics installation for a whole
//! network ([`install_metrics`]), run-wide gauge mirroring
//! ([`RunnerGauges`]), and a dependency-free HTTP server ([`serve`])
//! exposing the registry and rolling run snapshots.
//!
//! # Endpoints
//!
//! | Path         | Body                                                  |
//! |--------------|-------------------------------------------------------|
//! | `/metrics`   | Prometheus text exposition (format 0.0.4)             |
//! | `/status`    | JSON: chain head, mempool depth, peer liveness, and   |
//! |              | the scale sidecar (shards, channels, light client)    |
//! | `/tx/<id>`   | JSON: submit → admit → included → committed timeline  |
//! | `/analytics` | JSON: the [`dcs_middleware::ChainReport`]             |
//! | `/recent`    | JSON: the bounded flight-recorder ring                |
//!
//! # Determinism contract
//!
//! Everything here is **out of band**: instrument updates on the hot path
//! are relaxed atomic bumps beside decisions already taken, and the server
//! thread only *reads* snapshots published between simulation ticks. The
//! simulated run is bit-identical with metrics and serving on or off
//! (asserted in `tests/determinism.rs`); see DESIGN.md §16.

use crate::traits::LedgerNode;
use crate::{builders, collect_traces, install_tracing, workload::Workload};
use dcs_crypto::VerifyPipeline;
use dcs_metrics::{Counter, Gauge, Histogram, Registry, Ring};
use dcs_net::{NodeId, Runner};
use dcs_primitives::ConsensusKind;
use dcs_scale::channels::ChannelNetwork;
use dcs_scale::light::LightClient;
use dcs_sim::{SimDuration, SimTime};
use dcs_trace::{Timelines, TraceConfig};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Registers every peer's live metrics (chain, mempool, and any
/// protocol-specific series) on `registry` — the metrics analogue of
/// [`install_tracing`](crate::install_tracing). Purely a registration
/// pass: no threads, no I/O, and the run stays bit-identical.
pub fn install_metrics<P: LedgerNode>(runner: &mut Runner<P>, registry: &Registry) {
    for i in 0..runner.nodes().len() {
        runner.node_mut(NodeId(i)).register_metrics(registry);
    }
}

/// Commit-latency histogram bounds (µs): 100 ms … 50 s.
const COMMIT_LATENCY_BOUNDS_US: &[u64] = &[
    100_000, 250_000, 500_000, 1_000_000, 2_500_000, 5_000_000, 10_000_000, 25_000_000, 50_000_000,
];

/// Events-per-tick histogram bounds.
const TICK_EVENT_BOUNDS: &[u64] = &[1, 10, 100, 1_000, 10_000, 100_000];

/// Handles for the run-wide series that are *mirrored* from existing
/// statistics rather than bumped inline: fabric counters, event-queue
/// depth, per-shard engine dispatch counts, verify-pipeline cache
/// counters, and the simulated clock. Call [`RunnerGauges::sample`]
/// between simulation ticks; monotone mirrors use saturating set-to-total
/// updates so a sample never regresses a counter.
pub struct RunnerGauges {
    sim_now_us: Gauge,
    queue_depth: Gauge,
    queue_high_water: Gauge,
    sent: Counter,
    delivered: Counter,
    dropped: Counter,
    bytes_sent: Counter,
    shard_events: Vec<Counter>,
    verify_batches: Counter,
    verify_items: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_evictions: Counter,
    cache_entries: Gauge,
    /// Commit latency (µs) over transactions newly observed committed.
    pub commit_latency_us: Histogram,
    /// Events dispatched per simulation tick.
    pub tick_events: Histogram,
}

impl RunnerGauges {
    /// Registers the run-wide families. `shards` fixes how many per-shard
    /// engine counters exist (the engine's worker count for this run).
    pub fn register(registry: &Registry, shards: usize) -> Self {
        let shard_events = (0..shards.max(1))
            .map(|s| {
                registry.counter(
                    "dcs_engine_events_total",
                    "events dispatched per engine shard worker",
                    &[("shard", &s.to_string())],
                )
            })
            .collect();
        RunnerGauges {
            sim_now_us: registry.gauge("dcs_sim_now_us", "simulated clock (microseconds)", &[]),
            queue_depth: registry.gauge(
                "dcs_net_queue_depth",
                "events pending in the fabric queue",
                &[],
            ),
            queue_high_water: registry.gauge(
                "dcs_net_queue_high_water",
                "peak pending events since start",
                &[],
            ),
            sent: registry.counter("dcs_net_sent_total", "messages sent on the fabric", &[]),
            delivered: registry.counter("dcs_net_delivered_total", "messages delivered", &[]),
            dropped: registry.counter("dcs_net_dropped_total", "messages dropped in flight", &[]),
            bytes_sent: registry.counter("dcs_net_bytes_sent_total", "payload bytes sent", &[]),
            verify_batches: registry.counter(
                "dcs_verify_batches_total",
                "batches submitted to the verify pipeline",
                &[],
            ),
            verify_items: registry.counter(
                "dcs_verify_items_total",
                "signatures submitted across all batches",
                &[],
            ),
            cache_hits: registry.counter(
                "dcs_verify_cache_hits_total",
                "signature checks answered from the cache",
                &[],
            ),
            cache_misses: registry.counter(
                "dcs_verify_cache_misses_total",
                "signature checks that ran a real verification",
                &[],
            ),
            cache_evictions: registry.counter(
                "dcs_verify_cache_evictions_total",
                "cached verdicts dropped to stay within capacity",
                &[],
            ),
            cache_entries: registry.gauge(
                "dcs_verify_cache_entries",
                "verdicts currently cached",
                &[],
            ),
            commit_latency_us: registry.histogram(
                "dcs_commit_latency_us",
                "submit-to-commit latency per transaction (microseconds)",
                &[],
                COMMIT_LATENCY_BOUNDS_US,
            ),
            tick_events: registry.histogram(
                "dcs_serve_tick_events",
                "events dispatched per serve tick",
                &[],
                TICK_EVENT_BOUNDS,
            ),
            shard_events,
        }
    }

    /// Mirrors the runner's current statistics into the registry. Reads
    /// only — never mutates the runner — so it can run at any cadence.
    pub fn sample<P: LedgerNode>(&self, runner: &Runner<P>) {
        let stats = runner.stats();
        self.sent.set_total(stats.sent);
        self.delivered.set_total(stats.delivered);
        self.dropped.set_total(stats.dropped + stats.link_dropped);
        self.bytes_sent.set_total(stats.bytes_sent);
        self.sim_now_us.set(runner.now().as_micros() as i64);
        self.queue_depth.set(runner.net().queue_depth() as i64);
        self.queue_high_water
            .set(runner.net().queue_high_water() as i64);
        for (slot, count) in runner.shard_event_counts().iter().enumerate() {
            if let Some(c) = self.shard_events.get(slot) {
                c.set_total(*count);
            }
        }
        if let Some(pipeline) = runner.node(NodeId(0)).core().mempool.admission() {
            let p = pipeline.stats();
            self.verify_batches.set_total(p.batches);
            self.verify_items.set_total(p.batch_items);
            if let Some(c) = p.cache {
                self.cache_hits.set_total(c.hits);
                self.cache_misses.set_total(c.misses);
                self.cache_evictions.set_total(c.evictions);
                self.cache_entries.set(c.entries as i64);
            }
        }
    }
}

/// The scale-out companions of a serve run (PR 10), published on
/// `/status` and `/metrics`: a real [`LightClient`] syncing node 0's
/// header chain out of band (headers only, PoW-checked, never a body), and
/// a payment-channel hub routing dual-signed off-chain payments paced by
/// the simulated clock. Both are pure readers/side-state — the simulated
/// run stays bit-identical with the sidecar on or off.
pub struct ScaleSidecar {
    light: LightClient,
    channels: ChannelNetwork,
    hub: dcs_crypto::Address,
    spokes: Vec<dcs_crypto::Address>,
    channels_open: u64,
    mirrored_height: u64,
    next_pay_at: SimTime,
    payments_budget: u64,
    engine_shards: Gauge,
    g_channels_open: Gauge,
    c_channel_payments: Counter,
    g_light_tip: Gauge,
    g_light_lag: Gauge,
    c_light_bytes: Counter,
}

/// The `/status` `scale` document published each snapshot.
#[derive(Debug, Clone, Copy)]
pub struct ScaleStatus {
    /// Engine worker shards driving the simulated network.
    pub engine_shards: usize,
    /// Payment channels currently open at the hub.
    pub channels_open: u64,
    /// Off-chain payments routed so far.
    pub channel_payments: u64,
    /// The light client's synced header height.
    pub light_tip: u64,
    /// Full-node height minus the light client's tip.
    pub light_lag: u64,
    /// Bytes the light client has downloaded (headers + checkpoints).
    pub light_bytes: u64,
}

impl ScaleSidecar {
    /// Builds the sidecar against node 0's genesis header and registers its
    /// metric families.
    pub fn new<P: LedgerNode>(runner: &Runner<P>, registry: &Registry) -> Self {
        let chain = &runner.node(NodeId(0)).core().chain;
        let genesis = chain
            .canonical_at(0)
            .and_then(|h| chain.tree().get(&h))
            .expect("every chain stores its genesis")
            .header()
            .clone();
        // Leave `check_pow` off: the simulated miner models block discovery
        // with exponential arrival times and seals with an RNG nonce, so
        // live headers do not satisfy the literal hash-target relation
        // (only `mine_header`-ground ones do). With it on, every batch
        // fails `BadPow` and the client wedges at the genesis tip.
        let light = LightClient::new(genesis);

        // A hub-and-spoke channel web with real WOTS keys. Key height 10 =
        // 1024 signatures per party; the payment budget stays inside it.
        let mut channels = ChannelNetwork::new(10);
        let hub = channels.add_party([0xAA; 32], 10, 100_000_000);
        let spokes: Vec<dcs_crypto::Address> = (0..3)
            .map(|i| channels.add_party([0xB0 + i; 32], 10, 10_000_000))
            .collect();
        let mut channels_open = 0;
        for &s in &spokes {
            channels
                .open_channel(hub, s, 2_000_000, 200_000)
                .expect("parties funded above");
            channels_open += 1;
        }
        ScaleSidecar {
            light,
            channels,
            hub,
            spokes,
            channels_open,
            mirrored_height: 0,
            next_pay_at: SimTime::ZERO,
            payments_budget: 400,
            engine_shards: registry.gauge(
                "dcs_scale_engine_shards",
                "event-engine worker shards driving the run",
                &[],
            ),
            g_channels_open: registry.gauge(
                "dcs_scale_channels_open",
                "payment channels currently open at the serve hub",
                &[],
            ),
            c_channel_payments: registry.counter(
                "dcs_scale_channel_payments_total",
                "off-chain payments routed through the channel hub",
                &[],
            ),
            g_light_tip: registry.gauge(
                "dcs_scale_light_tip",
                "header height the light client has verified up to",
                &[],
            ),
            g_light_lag: registry.gauge(
                "dcs_scale_light_lag",
                "full-node height minus the light client tip",
                &[],
            ),
            c_light_bytes: registry.counter(
                "dcs_scale_light_bytes_total",
                "bytes the light client downloaded (headers + checkpoints)",
                &[],
            ),
        }
    }

    /// Syncs the light client to node 0's finalized headers, routes any due
    /// channel payments, mirrors the gauges, and returns the `/status`
    /// snapshot. Reads the runner only.
    pub fn sample<P: LedgerNode>(&mut self, runner: &Runner<P>) -> ScaleStatus {
        let chain = &runner.node(NodeId(0)).core().chain;
        let height = chain.height();
        // Headers only ever up to the finalized height: below the
        // confirmation depth a PoW chain may still reorg, and the light
        // client's strict linkage check would wedge on an orphaned header.
        let finalized = height.saturating_sub(chain.config().confirmation_depth);
        let mut headers = Vec::new();
        for h in self.light.tip_height() + 1..=finalized {
            let Some(stored) = chain
                .canonical_at(h)
                .and_then(|hash| chain.tree().get(&hash))
            else {
                break;
            };
            headers.push(stored.header().clone());
        }
        if !headers.is_empty() {
            // A failure means node 0 reorged under us mid-walk; drop the
            // batch and retry at the next snapshot.
            let _ = self.light.sync(&headers);
        }

        // Channel traffic: one routed payment per simulated 5 s, keys
        // permitting. The settlement ledger height mirrors the chain.
        if height > self.mirrored_height {
            self.channels.advance_height(height - self.mirrored_height);
            self.mirrored_height = height;
        }
        let now = runner.now();
        while now >= self.next_pay_at && self.payments_budget > 0 {
            self.next_pay_at += SimDuration::from_secs(5);
            let i = (self.channels.payments as usize) % self.spokes.len();
            let (from, to) = if self.channels.payments.is_multiple_of(2) {
                (self.hub, self.spokes[i])
            } else {
                (self.spokes[i], self.hub)
            };
            if self.channels.pay(from, to, 1_000).is_ok() {
                self.payments_budget -= 1;
            }
        }

        let status = ScaleStatus {
            engine_shards: runner.shards(),
            channels_open: self.channels_open,
            channel_payments: self.channels.payments,
            light_tip: self.light.tip_height(),
            light_lag: height.saturating_sub(self.light.tip_height()),
            light_bytes: self.light.bytes_downloaded,
        };
        self.engine_shards.set(status.engine_shards as i64);
        self.g_channels_open.set(status.channels_open as i64);
        self.c_channel_payments.set_total(status.channel_payments);
        self.g_light_tip.set(status.light_tip as i64);
        self.g_light_lag.set(status.light_lag as i64);
        self.c_light_bytes.set_total(status.light_bytes);
        status
    }
}

/// Shared state behind the HTTP endpoints: the registry plus the latest
/// published snapshots. The simulation loop writes snapshots between
/// ticks; the server thread only reads.
pub struct OpsState {
    /// The metric families behind `/metrics`.
    pub registry: Registry,
    /// The flight recorder behind `/recent`: one JSON object per tick.
    pub recent: Ring,
    status: Mutex<String>,
    analytics: Mutex<String>,
    txs: Mutex<BTreeMap<String, String>>,
    requests: Mutex<BTreeMap<&'static str, Counter>>,
}

/// At most this many transaction timelines are indexed for `/tx/<id>`
/// (oldest beyond the cap are dropped from the index, not from the run).
pub const TX_INDEX_CAP: usize = 4096;

impl OpsState {
    /// Creates the shared state around `registry` with a flight recorder
    /// of `ring_capacity` entries.
    pub fn new(registry: Registry, ring_capacity: usize) -> Arc<Self> {
        let requests = ["metrics", "status", "analytics", "recent", "tx", "other"]
            .iter()
            .map(|route| {
                (
                    *route,
                    registry.counter(
                        "dcs_serve_requests_total",
                        "HTTP requests served, by route",
                        &[("route", route)],
                    ),
                )
            })
            .collect();
        Arc::new(OpsState {
            registry,
            recent: Ring::new(ring_capacity),
            status: Mutex::new("{}".to_string()),
            analytics: Mutex::new("{}".to_string()),
            txs: Mutex::new(BTreeMap::new()),
            requests: Mutex::new(requests),
        })
    }

    /// Publishes the `/status` document.
    pub fn set_status(&self, json: String) {
        *lock(&self.status) = json;
    }

    /// Publishes the `/analytics` document.
    pub fn set_analytics(&self, json: String) {
        *lock(&self.analytics) = json;
    }

    /// Replaces the `/tx/<id>` index wholesale (capped at
    /// [`TX_INDEX_CAP`] entries).
    pub fn set_txs(&self, mut txs: BTreeMap<String, String>) {
        while txs.len() > TX_INDEX_CAP {
            let first = txs.keys().next().cloned();
            match first {
                Some(k) => txs.remove(&k),
                None => break,
            };
        }
        *lock(&self.txs) = txs;
    }

    fn bump(&self, route: &str) {
        let map = lock(&self.requests);
        if let Some(c) = map.get(route) {
            c.inc();
        }
    }

    /// Routes one request path to `(status, content-type, body)`.
    pub fn respond(&self, path: &str) -> (u16, &'static str, String) {
        const JSON: &str = "application/json";
        match path {
            "/metrics" => {
                self.bump("metrics");
                (200, "text/plain; version=0.0.4", self.registry.render())
            }
            "/status" => {
                self.bump("status");
                (200, JSON, lock(&self.status).clone())
            }
            "/analytics" => {
                self.bump("analytics");
                (200, JSON, lock(&self.analytics).clone())
            }
            "/recent" => {
                self.bump("recent");
                let stats = self.recent.stats();
                let entries = self.recent.snapshot();
                (
                    200,
                    JSON,
                    format!(
                        "{{\"dropped\":{},\"entries\":[{}]}}",
                        stats.dropped,
                        entries.join(",")
                    ),
                )
            }
            _ if path.starts_with("/tx/") => {
                self.bump("tx");
                let id = &path["/tx/".len()..];
                match lock(&self.txs).get(id) {
                    Some(json) => (200, JSON, json.clone()),
                    None => (404, JSON, "{\"error\":\"unknown transaction\"}".to_string()),
                }
            }
            _ => {
                self.bump("other");
                (404, JSON, "{\"error\":\"not found\"}".to_string())
            }
        }
    }
}

/// Locks a mutex, recovering the data from a poisoned lock (a panic on
/// another thread leaves the snapshot strings structurally intact).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A running operations server. Dropping the handle leaves the thread
/// serving; call [`OpsServer::shutdown`] for a clean stop (tests do).
pub struct OpsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl OpsServer {
    /// The bound address (useful with a `:0` ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call with one local connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Binds `addr` (e.g. `"127.0.0.1:9090"`, port 0 for ephemeral) and
/// serves `state` on a background thread until shut down. Connections are
/// handled serially — this is an operations sidecar, not a web server.
///
/// # Errors
///
/// Returns any error from binding the listener.
pub fn serve(addr: &str, state: Arc<OpsState>) -> std::io::Result<OpsServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if stop_flag.load(Ordering::SeqCst) {
                break;
            }
            if let Ok(stream) = conn {
                let _ = handle_connection(stream, &state);
            }
        }
    });
    Ok(OpsServer {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

/// Reads one request, writes one response, closes the connection.
fn handle_connection(stream: TcpStream, state: &OpsState) -> std::io::Result<()> {
    stream.set_read_timeout(Some(std::time::Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the headers so well-behaved clients see the full exchange.
    for _ in 0..64 {
        let mut header = String::new();
        if reader.read_line(&mut header).is_err() || header.trim().is_empty() {
            break;
        }
    }
    let path = match parse_request_path(&request_line) {
        Some(p) => p,
        None => return Ok(()),
    };
    let (status, content_type, body) = state.respond(&path);
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        _ => "Error",
    };
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Extracts the path from a `GET <path> HTTP/1.x` request line.
fn parse_request_path(line: &str) -> Option<String> {
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return None;
    }
    // Ignore any query string.
    Some(path.split('?').next().unwrap_or(path).to_string())
}

// ---------------------------------------------------------------------------
// The live run loop behind `dcs-ledger serve`.
// ---------------------------------------------------------------------------

/// Parameters for a live `dcs-ledger serve` run.
#[derive(Debug, Clone)]
pub struct ServeParams {
    /// Listen address (`host:port`; port 0 binds an ephemeral port).
    pub addr: String,
    /// Run seed — the whole simulated network replays from it.
    pub seed: u64,
    /// Peer count.
    pub nodes: usize,
    /// Client transactions per simulated second.
    pub tps: f64,
    /// Engine shard workers (0 = the runner's default).
    pub shards: usize,
    /// Simulated seconds of workload; the run idles once consumed.
    pub sim_secs: u64,
    /// Wall milliseconds per tick (pacing of the live loop).
    pub tick_ms: u64,
    /// Simulated-time multiplier: each tick advances `tick_ms × warp`
    /// simulated milliseconds.
    pub warp: u64,
    /// Stop after this many ticks (0 = run until killed).
    pub max_ticks: u64,
}

impl Default for ServeParams {
    fn default() -> Self {
        ServeParams {
            addr: "127.0.0.1:9090".to_string(),
            seed: 42,
            nodes: 8,
            tps: 5.0,
            shards: 0,
            sim_secs: 600,
            tick_ms: 100,
            warp: 10,
            max_ticks: 0,
        }
    }
}

/// Builds the serve network: the standard PoW-gossip profile (~5 s
/// blocks) with full tracing, a shared admission pipeline on every peer,
/// and per-peer metrics on `registry`.
fn build_serve_runner(
    params: &ServeParams,
    registry: &Registry,
) -> Runner<dcs_consensus::pow::PowNode<dcs_chain::NullMachine>> {
    let mut pow = builders::PowParams {
        nodes: params.nodes,
        hash_powers: vec![1_000.0],
        ..Default::default()
    };
    pow.chain.consensus = ConsensusKind::ProofOfWork {
        initial_difficulty: params.nodes as u64 * 1_000 * 5, // ~5 s blocks
        retarget_window: 16,
        target_interval_us: 5_000_000,
    };
    let mut runner = builders::build_pow(&pow, params.seed);
    if params.shards > 0 {
        runner.set_shards(params.shards);
    }
    install_tracing(&mut runner, &TraceConfig::full());
    install_metrics(&mut runner, registry);
    let pipeline = Arc::new(VerifyPipeline::new(2, 4096));
    for i in 0..params.nodes {
        runner
            .node_mut(NodeId(i))
            .core_mut()
            .mempool
            .set_admission(Arc::clone(&pipeline));
    }
    runner
}

/// Runs a live simulated network and serves its operations surface.
/// Blocks the calling thread; with `max_ticks == 0` it runs until the
/// process is killed. Returns the bound address via `on_ready` before the
/// first tick.
///
/// # Errors
///
/// Returns any error from binding the listen address.
pub fn run_live(params: &ServeParams, on_ready: impl FnOnce(SocketAddr)) -> std::io::Result<()> {
    let registry = Registry::new();
    let mut runner = build_serve_runner(params, &registry);
    let gauges = RunnerGauges::register(&registry, runner.shards());
    let submitted = Workload::transfers(params.tps, SimDuration::from_secs(params.sim_secs), 100)
        .inject(runner.net_mut(), params.seed ^ 0x5eed);
    let state = OpsState::new(registry, 256);
    let mut sidecar = ScaleSidecar::new(&runner, &state.registry);
    let server = serve(&params.addr, Arc::clone(&state))?;
    on_ready(server.addr());

    let deadline =
        SimTime::ZERO + SimDuration::from_secs(params.sim_secs) + SimDuration::from_secs(120);
    let mut committed_seen: BTreeSet<dcs_trace::Id> = BTreeSet::new();
    let mut tick: u64 = 0;
    loop {
        let step = SimDuration::from_millis(params.tick_ms.saturating_mul(params.warp).max(1));
        let target = (runner.now() + step).min(deadline);
        let dispatched = if runner.now() < deadline {
            runner.run_until(target)
        } else {
            0
        };
        gauges.sample(&runner);
        gauges.tick_events.observe(dispatched);
        let scale = sidecar.sample(&runner);
        // Rebuilding timelines is the expensive part of a tick; once the
        // run has drained (no events dispatched) the snapshots are static,
        // so refresh them only occasionally to keep idle serving cheap.
        if dispatched > 0 || tick.is_multiple_of(16) {
            publish_snapshots(
                &runner,
                &state,
                &gauges,
                &mut committed_seen,
                submitted.len(),
                &scale,
            );
        }
        tick += 1;
        if params.max_ticks > 0 && tick >= params.max_ticks {
            server.shutdown();
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(params.tick_ms));
    }
}

/// Rebuilds the trace timelines and publishes the `/status`, `/tx`,
/// `/analytics`, and `/recent` snapshots.
fn publish_snapshots<P: LedgerNode>(
    runner: &Runner<P>,
    state: &OpsState,
    gauges: &RunnerGauges,
    committed_seen: &mut BTreeSet<dcs_trace::Id>,
    submitted: usize,
    scale: &ScaleStatus,
) {
    let mut traces = collect_traces(runner);
    let timelines = Timelines::build(traces.records(), 0);

    // Newly committed transactions feed the latency histogram exactly once.
    for (id, span) in &timelines.txs {
        if let (Some(sub), Some(com)) = (span.submitted_us, span.committed_us) {
            if committed_seen.insert(*id) {
                gauges.commit_latency_us.observe(com.saturating_sub(sub));
            }
        }
    }

    let mut txs = BTreeMap::new();
    for (id, span) in &timelines.txs {
        txs.insert(hex32(&id.0), tx_timeline_json(id, span));
    }
    let sample_tx = timelines.txs.keys().next_back().map(|id| hex32(&id.0));
    state.set_txs(txs);

    let core = runner.node(NodeId(0)).core();
    let height = core.chain.height();
    let depth = core.chain.config().confirmation_depth;
    let finalized = height.saturating_sub(depth);
    let peers: Vec<String> = (0..runner.nodes().len())
        .map(|i| {
            format!(
                "{{\"id\":{i},\"alive\":{},\"height\":{}}}",
                runner.net().is_alive(NodeId(i)),
                runner.node(NodeId(i)).core().chain.height()
            )
        })
        .collect();
    state.set_status(format!(
        concat!(
            "{{\"now_us\":{},\"head\":{{\"height\":{},\"tip\":\"{}\"}},",
            "\"finalized_height\":{},\"mempool_depth\":{},",
            "\"txs_submitted\":{},\"txs_tracked\":{},\"reorgs_observed\":{},",
            "\"sample_tx\":{},\"peers\":[{}],",
            "\"scale\":{{\"engine_shards\":{},\"channels_open\":{},",
            "\"channel_payments\":{},\"light_tip\":{},\"light_lag\":{},",
            "\"light_bytes\":{}}}}}"
        ),
        runner.now().as_micros(),
        height,
        core.chain.tip_hash(),
        finalized,
        core.mempool.len(),
        submitted,
        timelines.txs.len(),
        timelines.reorgs.len(),
        match &sample_tx {
            Some(id) => format!("\"{id}\""),
            None => "null".to_string(),
        },
        peers.join(","),
        scale.engine_shards,
        scale.channels_open,
        scale.channel_payments,
        scale.light_tip,
        scale.light_lag,
        scale.light_bytes,
    ));

    state.set_analytics(dcs_middleware::analyze(&core.chain).to_json());

    state.recent.push(format!(
        "{{\"t_us\":{},\"height\":{},\"mempool\":{},\"pending\":{},\"committed\":{}}}",
        runner.now().as_micros(),
        height,
        core.mempool.len(),
        runner.net().queue_depth(),
        committed_seen.len(),
    ));
}

/// Full lowercase hex of a 32-byte id.
fn hex32(bytes: &[u8; 32]) -> String {
    let mut s = String::with_capacity(64);
    for b in bytes {
        use std::fmt::Write as _;
        let _ = write!(s, "{b:02x}");
    }
    s
}

/// One transaction's lifecycle as JSON (missing stages render `null`).
fn tx_timeline_json(id: &dcs_trace::Id, span: &dcs_trace::TxSpan) -> String {
    fn opt(v: Option<u64>) -> String {
        v.map_or_else(|| "null".to_string(), |n| n.to_string())
    }
    format!(
        concat!(
            "{{\"tx\":\"{}\",\"submitted_us\":{},\"admitted_us\":{},",
            "\"included_us\":{},\"committed_us\":{},\"block\":{},",
            "\"first_seen_peers\":{}}}"
        ),
        hex32(&id.0),
        opt(span.submitted_us),
        opt(span.admitted_us),
        opt(span.included_us),
        opt(span.committed_us),
        span.block
            .map_or_else(|| "null".to_string(), |b| format!("\"{}\"", hex32(&b.0))),
        span.first_seen.len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read as _;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").expect("full response");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_status_and_404() {
        let registry = Registry::new();
        registry.counter("dcs_demo_total", "demo", &[]).add(7);
        let state = OpsState::new(registry, 8);
        state.set_status("{\"ok\":true}".to_string());
        state.recent.push("{\"t_us\":1}".to_string());
        let server = serve("127.0.0.1:0", Arc::clone(&state)).expect("bind");
        let addr = server.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("dcs_demo_total 7"), "{body}");
        assert!(body.contains("dcs_serve_requests_total{route=\"metrics\"}"));

        let (_, body) = get(addr, "/status");
        assert_eq!(body, "{\"ok\":true}");

        let (_, body) = get(addr, "/recent");
        assert_eq!(body, "{\"dropped\":0,\"entries\":[{\"t_us\":1}]}");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        let (head, _) = get(addr, "/tx/feed");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        server.shutdown();
    }

    #[test]
    fn tx_index_serves_and_caps() {
        let state = OpsState::new(Registry::new(), 8);
        let mut txs = BTreeMap::new();
        txs.insert("aa".to_string(), "{\"tx\":\"aa\"}".to_string());
        state.set_txs(txs);
        let server = serve("127.0.0.1:0", Arc::clone(&state)).expect("bind");
        let (head, body) = get(server.addr(), "/tx/aa");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "{\"tx\":\"aa\"}");
        server.shutdown();

        let mut big = BTreeMap::new();
        for i in 0..(TX_INDEX_CAP + 10) {
            big.insert(format!("{i:064x}"), "{}".to_string());
        }
        state.set_txs(big);
        assert_eq!(lock(&state.txs).len(), TX_INDEX_CAP);
    }

    #[test]
    fn scale_sidecar_light_client_tracks_the_live_chain() {
        let params = ServeParams {
            nodes: 3,
            ..Default::default()
        };
        let registry = Registry::new();
        let mut runner = build_serve_runner(&params, &registry);
        let mut sidecar = ScaleSidecar::new(&runner, &registry);
        runner.run_until(SimTime::ZERO + SimDuration::from_secs(300));
        let status = sidecar.sample(&runner);
        let height = runner.node(NodeId(0)).core().chain.height();
        let depth = runner
            .node(NodeId(0))
            .core()
            .chain
            .config()
            .confirmation_depth;
        assert!(height > depth, "run too short to finalize: {height}");
        // The regression this guards: a PoW-target check against the
        // time-simulated miner wedges the client at the genesis tip.
        assert!(status.light_tip > 0, "light client wedged: {status:?}");
        assert_eq!(status.light_tip, height - depth);
        assert_eq!(status.light_lag, height - status.light_tip);
        assert!(status.light_bytes > 0);
    }

    #[test]
    fn live_run_populates_every_endpoint() {
        let params = ServeParams {
            addr: "127.0.0.1:0".to_string(),
            nodes: 4,
            tps: 10.0,
            sim_secs: 60,
            tick_ms: 1,
            warp: 20_000, // 20 simulated seconds per tick
            max_ticks: 200,
            ..Default::default()
        };
        let addr = Arc::new(Mutex::new(None));
        let addr_slot = Arc::clone(&addr);
        // run_live blocks; probe from a helper thread once ready, polling
        // until the first snapshot has been published.
        let probe = std::thread::spawn(move || loop {
            let got = *lock(&addr_slot);
            if let Some(addr) = got {
                let (_, status) = get(addr, "/status");
                if !status.contains("\"now_us\"") {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    continue;
                }
                let (_, metrics) = get(addr, "/metrics");
                let (_, analytics) = get(addr, "/analytics");
                let (_, recent) = get(addr, "/recent");
                return (status, metrics, analytics, recent);
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        run_live(&params, |a| *lock(&addr) = Some(a)).expect("serve");
        let (status, metrics, analytics, recent) = probe.join().expect("probe");
        assert!(status.contains("\"now_us\""), "{status}");
        assert!(status.contains("\"peers\""), "{status}");
        assert!(status.contains("\"scale\":{\"engine_shards\":"), "{status}");
        assert!(status.contains("\"channels_open\":3"), "{status}");
        assert!(status.contains("\"light_lag\":"), "{status}");
        assert!(metrics.contains("dcs_sim_now_us"), "{metrics}");
        assert!(metrics.contains("dcs_chain_height"), "{metrics}");
        assert!(metrics.contains("dcs_mempool_depth"), "{metrics}");
        assert!(metrics.contains("dcs_scale_channels_open"), "{metrics}");
        assert!(metrics.contains("dcs_scale_light_lag"), "{metrics}");
        assert!(analytics.starts_with('{'), "{analytics}");
        assert!(recent.contains("\"entries\""), "{recent}");
    }
}
