//! The [`LedgerNode`] abstraction: uniform access to the peer core of every
//! consensus protocol, so metrics and experiments are written once.

use dcs_chain::{NullMachine, StateMachine};
use dcs_consensus::{
    ng::NgNode, node::NodeCore, ordering::OrderingNode, pbft::PbftNode, poet::PoetNode,
    pos::PosNode, pow::PowNode, WireMsg,
};
use dcs_net::Protocol;

/// A consensus peer whose chain/mempool core can be inspected uniformly.
pub trait LedgerNode: Protocol<Msg = WireMsg> {
    /// The application state machine type.
    type Machine: StateMachine;

    /// Read access to the peer core.
    fn core(&self) -> &NodeCore<Self::Machine>;

    /// Mutable access to the peer core.
    fn core_mut(&mut self) -> &mut NodeCore<Self::Machine>;

    /// Simulated hash attempts (or analogous consensus work) expended.
    fn work_expended(&self) -> f64 {
        0.0
    }

    /// Registers this peer's live metrics on `registry` — chain and
    /// mempool series from the core, plus any protocol-specific series
    /// (PBFT view/phase counters override this).
    fn register_metrics(&mut self, registry: &dcs_metrics::Registry) {
        self.core_mut().set_metrics(registry);
    }
}

impl<M: StateMachine> LedgerNode for PowNode<M> {
    type Machine = M;
    fn core(&self) -> &NodeCore<M> {
        &self.core
    }
    fn core_mut(&mut self) -> &mut NodeCore<M> {
        &mut self.core
    }
    fn work_expended(&self) -> f64 {
        self.work_expended
    }
}

impl<M: StateMachine> LedgerNode for PosNode<M> {
    type Machine = M;
    fn core(&self) -> &NodeCore<M> {
        &self.core
    }
    fn core_mut(&mut self) -> &mut NodeCore<M> {
        &mut self.core
    }
    fn work_expended(&self) -> f64 {
        // One lottery hash per slot.
        self.lotteries_evaluated as f64
    }
}

impl<M: StateMachine> LedgerNode for PoetNode<M> {
    type Machine = M;
    fn core(&self) -> &NodeCore<M> {
        &self.core
    }
    fn core_mut(&mut self) -> &mut NodeCore<M> {
        &mut self.core
    }
    fn work_expended(&self) -> f64 {
        // One TEE wait request per proposal opportunity.
        self.waits_drawn as f64
    }
}

impl<M: StateMachine> LedgerNode for OrderingNode<M> {
    type Machine = M;
    fn core(&self) -> &NodeCore<M> {
        &self.core
    }
    fn core_mut(&mut self) -> &mut NodeCore<M> {
        &mut self.core
    }
}

impl<M: StateMachine> LedgerNode for PbftNode<M> {
    type Machine = M;
    fn core(&self) -> &NodeCore<M> {
        &self.core
    }
    fn core_mut(&mut self) -> &mut NodeCore<M> {
        &mut self.core
    }
    fn register_metrics(&mut self, registry: &dcs_metrics::Registry) {
        PbftNode::set_metrics(self, registry);
    }
}

impl<M: StateMachine> LedgerNode for NgNode<M> {
    type Machine = M;
    fn core(&self) -> &NodeCore<M> {
        &self.core
    }
    fn core_mut(&mut self) -> &mut NodeCore<M> {
        &mut self.core
    }
    fn work_expended(&self) -> f64 {
        self.work_expended
    }
}

/// Re-exported for convenience: the no-op state machine.
pub type Null = NullMachine;
