//! One-call constructors for whole simulated ledger networks, one per
//! consensus family. Each takes a parameter struct (sensible defaults via
//! `Default`) and a seed, and returns a ready-to-run
//! [`dcs_net::Runner`].

use dcs_chain::NullMachine;
use dcs_consensus::{
    ng::NgNode,
    ordering::OrderingNode,
    pbft::PbftNode,
    poet::PoetNode,
    pos::{PosNode, StakeTable},
    pow::PowNode,
};
use dcs_crypto::Address;
use dcs_net::{LatencyModel, NetConfig, NodeId, Runner, Topology};
use dcs_primitives::{ChainConfig, ConsensusKind};
use dcs_sim::SimDuration;

/// The address assigned to peer `i` in every built network.
pub fn node_address(i: usize) -> Address {
    Address::from_index(i as u64)
}

fn default_net(nodes: usize) -> NetConfig {
    NetConfig {
        nodes,
        topology: Topology::KRegular {
            k: 4.min(nodes.saturating_sub(1)).max(2),
        },
        latency: LatencyModel::wan(),
        drop_probability: 0.0,
        bandwidth_bytes_per_sec: None,
    }
}

/// Parameters for a proof-of-work network.
#[derive(Debug, Clone)]
pub struct PowParams {
    /// Peer count.
    pub nodes: usize,
    /// Per-node hash power (H/s); cycled if shorter than `nodes`.
    pub hash_powers: Vec<f64>,
    /// Chain configuration (must be `ProofOfWork`).
    pub chain: ChainConfig,
    /// Overlay configuration.
    pub net: NetConfig,
}

impl Default for PowParams {
    fn default() -> Self {
        let nodes = 16;
        PowParams {
            nodes,
            hash_powers: vec![1_000.0],
            chain: ChainConfig {
                consensus: ConsensusKind::ProofOfWork {
                    // 16 kH/s network × 60 s target.
                    initial_difficulty: 960_000,
                    retarget_window: 0,
                    target_interval_us: 60_000_000,
                },
                ..ChainConfig::bitcoin_like()
            },
            net: default_net(nodes),
        }
    }
}

/// Builds a proof-of-work network over the null state machine.
pub fn build_pow(params: &PowParams, seed: u64) -> Runner<PowNode<NullMachine>> {
    let genesis = dcs_chain::genesis_block(&params.chain);
    let mut net = params.net.clone();
    net.nodes = params.nodes;
    let chain = params.chain.clone();
    let powers = params.hash_powers.clone();
    Runner::new(net, seed, move |id: NodeId| {
        PowNode::new(
            id,
            node_address(id.0),
            genesis.clone(),
            chain.clone(),
            NullMachine,
            powers[id.0 % powers.len()],
        )
    })
}

/// Parameters for a proof-of-stake network.
#[derive(Debug, Clone)]
pub struct PosParams {
    /// Peer count.
    pub nodes: usize,
    /// Per-node stake; cycled if shorter than `nodes`.
    pub stakes: Vec<u64>,
    /// Chain configuration (must be `ProofOfStake`).
    pub chain: ChainConfig,
    /// Overlay configuration.
    pub net: NetConfig,
}

impl Default for PosParams {
    fn default() -> Self {
        let nodes = 16;
        PosParams {
            nodes,
            stakes: vec![100],
            chain: ChainConfig {
                consensus: ConsensusKind::ProofOfStake {
                    slot_us: 10_000_000,
                },
                ..ChainConfig::ethereum_like()
            },
            net: default_net(nodes),
        }
    }
}

/// Builds a proof-of-stake network over the null state machine.
pub fn build_pos(params: &PosParams, seed: u64) -> Runner<PosNode<NullMachine>> {
    let genesis = dcs_chain::genesis_block(&params.chain);
    let stakes: Vec<u64> = (0..params.nodes)
        .map(|i| params.stakes[i % params.stakes.len()])
        .collect();
    let table = StakeTable::new(
        (0..params.nodes).map(node_address).collect(),
        stakes,
        params.chain.chain_id,
    );
    let mut net = params.net.clone();
    net.nodes = params.nodes;
    let chain = params.chain.clone();
    Runner::new(net, seed, move |id: NodeId| {
        PosNode::new(
            id,
            genesis.clone(),
            chain.clone(),
            NullMachine,
            table.clone(),
            id.0,
        )
    })
}

/// Parameters for a proof-of-elapsed-time network.
#[derive(Debug, Clone)]
pub struct PoetParams {
    /// Peer count.
    pub nodes: usize,
    /// Chain configuration (must be `ProofOfElapsedTime`).
    pub chain: ChainConfig,
    /// Overlay configuration.
    pub net: NetConfig,
    /// Per-node cheat factors (1.0 honest); cycled.
    pub cheat_factors: Vec<f64>,
}

impl Default for PoetParams {
    fn default() -> Self {
        let nodes = 16;
        PoetParams {
            nodes,
            chain: ChainConfig {
                consensus: ConsensusKind::ProofOfElapsedTime {
                    // Per-node mean wait ≈ nodes × target interval.
                    mean_wait_us: 16 * 30_000_000,
                },
                ..ChainConfig::bitcoin_like()
            },
            net: default_net(nodes),
            cheat_factors: vec![1.0],
        }
    }
}

/// Builds a proof-of-elapsed-time network over the null state machine.
pub fn build_poet(params: &PoetParams, seed: u64) -> Runner<PoetNode<NullMachine>> {
    let genesis = dcs_chain::genesis_block(&params.chain);
    let mut net = params.net.clone();
    net.nodes = params.nodes;
    let chain = params.chain.clone();
    let cheats = params.cheat_factors.clone();
    Runner::new(net, seed, move |id: NodeId| {
        let mut node = PoetNode::new(
            id,
            node_address(id.0),
            genesis.clone(),
            chain.clone(),
            NullMachine,
        );
        node.cheat_factor = cheats[id.0 % cheats.len()];
        node
    })
}

/// Parameters for an ordering-service network.
#[derive(Debug, Clone)]
pub struct OrderingParams {
    /// Peer count.
    pub nodes: usize,
    /// Chain configuration (must be `Ordering`).
    pub chain: ChainConfig,
    /// Overlay configuration.
    pub net: NetConfig,
}

impl Default for OrderingParams {
    fn default() -> Self {
        let nodes = 8;
        OrderingParams {
            nodes,
            chain: ChainConfig::hyperledger_like(),
            net: NetConfig {
                latency: LatencyModel::lan(),
                topology: Topology::Complete,
                ..default_net(nodes)
            },
        }
    }
}

/// Builds an ordering-service network over the null state machine.
pub fn build_ordering(params: &OrderingParams, seed: u64) -> Runner<OrderingNode<NullMachine>> {
    let genesis = dcs_chain::genesis_block(&params.chain);
    let mut net = params.net.clone();
    net.nodes = params.nodes;
    let chain = params.chain.clone();
    let n = params.nodes;
    Runner::new(net, seed, move |id: NodeId| {
        OrderingNode::new(
            id,
            node_address(id.0),
            genesis.clone(),
            chain.clone(),
            NullMachine,
            n,
        )
    })
}

/// Parameters for a PBFT consortium.
#[derive(Debug, Clone)]
pub struct PbftParams {
    /// Replica count (≥ 4).
    pub nodes: usize,
    /// Chain configuration (must be `Pbft`).
    pub chain: ChainConfig,
    /// Overlay configuration (PBFT speaks point-to-point; keep `Complete`).
    pub net: NetConfig,
    /// Indices of replicas to crash at start (fail-stop).
    pub crashed: Vec<usize>,
}

impl Default for PbftParams {
    fn default() -> Self {
        let nodes = 7;
        PbftParams {
            nodes,
            chain: ChainConfig {
                consensus: ConsensusKind::Pbft {
                    batch_size: 500,
                    batch_timeout_us: 200_000,
                    view_timeout_us: 5_000_000,
                },
                ..ChainConfig::hyperledger_like()
            },
            net: NetConfig {
                latency: LatencyModel::lan(),
                topology: Topology::Complete,
                ..default_net(nodes)
            },
            crashed: Vec::new(),
        }
    }
}

/// Builds a PBFT consortium over the null state machine.
pub fn build_pbft(params: &PbftParams, seed: u64) -> Runner<PbftNode<NullMachine>> {
    let genesis = dcs_chain::genesis_block(&params.chain);
    let mut net = params.net.clone();
    net.nodes = params.nodes;
    let chain = params.chain.clone();
    let n = params.nodes;
    let crashed = params.crashed.clone();
    Runner::new(net, seed, move |id: NodeId| {
        let mut node = PbftNode::new(
            id,
            node_address(id.0),
            genesis.clone(),
            chain.clone(),
            NullMachine,
            n,
        );
        node.crashed = crashed.contains(&id.0);
        node
    })
}

/// Parameters for a Bitcoin-NG network.
#[derive(Debug, Clone)]
pub struct NgParams {
    /// Peer count.
    pub nodes: usize,
    /// Per-node hash power; cycled.
    pub hash_powers: Vec<f64>,
    /// Chain configuration (must be `BitcoinNg`).
    pub chain: ChainConfig,
    /// Overlay configuration.
    pub net: NetConfig,
}

impl Default for NgParams {
    fn default() -> Self {
        let nodes = 16;
        NgParams {
            nodes,
            hash_powers: vec![1_000.0],
            chain: ChainConfig {
                consensus: ConsensusKind::BitcoinNg {
                    key_difficulty: 960_000, // 16 kH/s × 60 s keyblocks
                    key_interval_us: 60_000_000,
                    micro_interval_us: 1_000_000,
                },
                fork_choice: dcs_primitives::ForkChoice::HeaviestWork,
                ..ChainConfig::bitcoin_like()
            },
            net: default_net(nodes),
        }
    }
}

/// Builds a Bitcoin-NG network over the null state machine.
pub fn build_ng(params: &NgParams, seed: u64) -> Runner<NgNode<NullMachine>> {
    let genesis = dcs_chain::genesis_block(&params.chain);
    let mut net = params.net.clone();
    net.nodes = params.nodes;
    let chain = params.chain.clone();
    let powers = params.hash_powers.clone();
    Runner::new(net, seed, move |id: NodeId| {
        NgNode::new(
            id,
            node_address(id.0),
            genesis.clone(),
            chain.clone(),
            NullMachine,
            powers[id.0 % powers.len()],
        )
    })
}

/// Convenience: the simulated run deadline for a workload of `duration`
/// plus a cooldown for in-flight blocks to settle.
pub fn deadline_for(duration: SimDuration) -> dcs_sim::SimTime {
    dcs_sim::SimTime::ZERO + duration + SimDuration::from_secs(120)
}
