//! The DCS measurement suite (§2.7): given a finished simulation, quantify
//!
//! * **Scalability** — committed throughput (tps), commit latency;
//! * **Consistency** — stale-block rate, reorg count/depth, replica
//!   agreement;
//! * **Decentralization** — Gini and Nakamoto coefficients over who
//!   actually produced the canonical chain.

use crate::traits::LedgerNode;
use dcs_crypto::{Hash256, VerifyPipeline};
use dcs_primitives::Transaction;
use dcs_sim::{gini, nakamoto_coefficient, SimDuration, SimTime, Summary};
use std::collections::HashMap;

pub use dcs_crypto::{PipelineStats, SigCacheStats};

/// A snapshot of the block-verification pipeline for the measurement suite:
/// worker parallelism, batch activity, and signature-cache effectiveness.
/// The interesting headline number is [`VerificationReport::signatures_skipped`] —
/// every cache hit is one WOTS+Merkle verification (hundreds of SHA-256
/// compressions) that admission already paid for and block connect did not
/// repeat.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VerificationReport {
    /// Raw pipeline counters (threads, batches, cache hit/miss).
    pub pipeline: PipelineStats,
    /// Gossiped blocks rejected at import, summed over peers — nonzero
    /// means someone fed the network structurally invalid blocks.
    pub rejected_blocks: u64,
    /// Broken internal invariants survived at runtime (see
    /// [`dcs_chain::ChainStats::internal_errors`]), summed over peers.
    /// A healthy run keeps this at zero; the determinism suite asserts it.
    pub internal_errors: u64,
    /// Sync requests re-sent after a timeout or negative reply, summed over
    /// peers — how hard nodes had to work to fill ancestry gaps. Zero on a
    /// loss-free network.
    pub sync_retries: u64,
}

impl VerificationReport {
    /// Snapshots `pipeline`'s counters.
    pub fn collect(pipeline: &VerifyPipeline) -> Self {
        VerificationReport {
            pipeline: pipeline.stats(),
            rejected_blocks: 0,
            internal_errors: 0,
            sync_retries: 0,
        }
    }

    /// Attaches the network-wide rejected-block count (from
    /// [`SimResult::rejected_blocks`] or a manual census).
    pub fn with_rejected_blocks(mut self, rejected: u64) -> Self {
        self.rejected_blocks = rejected;
        self
    }

    /// Attaches the network-wide internal-error count (from
    /// [`SimResult::internal_errors`] or a manual census).
    pub fn with_internal_errors(mut self, internal: u64) -> Self {
        self.internal_errors = internal;
        self
    }

    /// Attaches the network-wide sync-retry count (from
    /// [`SimResult::sync_retries`] or a manual census).
    pub fn with_sync_retries(mut self, retries: u64) -> Self {
        self.sync_retries = retries;
        self
    }

    /// Signature verifications answered from the cache (work skipped).
    pub fn signatures_skipped(&self) -> u64 {
        self.pipeline.cache.map_or(0, |c| c.hits)
    }

    /// Signature verifications actually executed.
    pub fn signatures_verified(&self) -> u64 {
        self.pipeline
            .cache
            .map_or(self.pipeline.batch_items, |c| c.misses)
    }

    /// Cache hit rate in `[0, 1]` (0 when no cache is configured). This is
    /// the `verify_cache_hit_rate` column of the BENCH v2 schema: the
    /// fraction of signature checks block connect answered from the
    /// admission-warmed cache instead of re-executing.
    pub fn cache_hit_rate(&self) -> f64 {
        self.pipeline.cache.map_or(0.0, |c| c.hit_rate())
    }

    /// Batches submitted through the pipeline (one per admission or
    /// prevalidation call).
    pub fn verify_batches(&self) -> u64 {
        self.pipeline.batches
    }

    /// Mean items per verification batch — how "batch-first" the verify
    /// stage actually ran. 1.0 means every signature arrived alone (pure
    /// tx-at-a-time admission); block prevalidation drives it toward the
    /// block's witness count.
    pub fn avg_batch_size(&self) -> f64 {
        if self.pipeline.batches == 0 {
            0.0
        } else {
            self.pipeline.batch_items as f64 / self.pipeline.batches as f64
        }
    }
}

impl core::fmt::Display for VerificationReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "verify[{}] skipped={} verified={} rejected_blocks={} internal_errors={} sync_retries={}",
            self.pipeline,
            self.signatures_skipped(),
            self.signatures_verified(),
            self.rejected_blocks,
            self.internal_errors,
            self.sync_retries,
        )
    }
}

/// Everything measured from one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Simulated horizon used for rate computation.
    pub horizon: SimDuration,
    /// Transactions on the reference node's canonical chain (no coinbases).
    pub committed_txs: u64,
    /// Committed transactions per simulated second.
    pub tps: f64,
    /// Submit→commit latency of committed transactions (seconds).
    pub latency: Summary,
    /// Canonical chain length (blocks, excluding genesis).
    pub canonical_blocks: u64,
    /// All blocks the reference node ever saw.
    pub total_blocks: u64,
    /// Blocks off the canonical chain (stale/uncle blocks).
    pub stale_blocks: u64,
    /// Stale fraction: stale / total non-genesis blocks.
    pub stale_rate: f64,
    /// Mean canonical inter-block time (seconds).
    pub mean_block_interval: f64,
    /// Branch switches observed by the reference node.
    pub reorgs: u64,
    /// Deepest revert observed.
    pub max_reorg_depth: u64,
    /// Gossiped blocks rejected at import, summed over all peers.
    pub rejected_blocks: u64,
    /// Broken internal invariants survived at runtime (chain-manager and
    /// node-core counters), summed over all peers. Zero on a healthy run.
    pub internal_errors: u64,
    /// Sync requests re-sent after a timeout or a `BlockNotFound`, summed
    /// over all peers.
    pub sync_retries: u64,
    /// Catch-up pages requested by recovering nodes, summed over all peers.
    pub catchup_rounds: u64,
    /// True when all replicas agree on the chain up to the confirmation
    /// depth.
    pub replicas_agree: bool,
    /// Canonical blocks produced per peer.
    pub proposer_counts: Vec<u64>,
    /// Gini coefficient over `proposer_counts` (0 = equal).
    pub proposer_gini: f64,
    /// Nakamoto coefficient over `proposer_counts` (higher = more
    /// decentralized).
    pub nakamoto: usize,
    /// Total consensus work expended (hash attempts or lottery draws).
    pub work_expended: f64,
    /// Work per committed canonical block.
    pub work_per_block: f64,
}

impl core::fmt::Display for SimResult {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "tps={:.2} lat_mean={:.2}s blocks={} stale={:.1}% reorgs={} agree={} gini={:.2} nakamoto={}",
            self.tps,
            self.latency.mean(),
            self.canonical_blocks,
            self.stale_rate * 100.0,
            self.reorgs,
            self.replicas_agree,
            self.proposer_gini,
            self.nakamoto,
        )
    }
}

/// Collects a [`SimResult`] from the finished nodes. `submitted` maps
/// transaction ids to submission instants (from `Workload::inject`);
/// `horizon` is the denominator for throughput.
///
/// # Panics
///
/// Panics if `nodes` is empty.
pub fn collect<P: LedgerNode>(
    nodes: &[P],
    submitted: &HashMap<Hash256, SimTime>,
    horizon: SimDuration,
) -> SimResult {
    assert!(!nodes.is_empty(), "need at least one node to measure");
    let reference = nodes[0].core();
    let chain = &reference.chain;

    // Throughput comes from the chain's incrementally maintained stats —
    // O(1) instead of a full canonical walk per sample.
    let committed_txs = chain.canon_stats().committed_txs;

    // Latency + proposer census over the canonical chain. Proposers and
    // timestamps come from headers (retained even by pruning stores);
    // latency needs bodies and skips blocks whose bodies were pruned.
    let mut latency = Summary::new();
    let mut proposer_counts = vec![0u64; nodes.len()];
    let mut timestamps = Vec::new();
    let address_to_index: HashMap<_, _> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.core().address, i))
        .collect();
    for hash in chain.canonical().iter().skip(1) {
        let sb = chain.tree().get(hash).expect("canonical stored");
        timestamps.push(sb.header().timestamp_us);
        if let Some(&i) = address_to_index.get(&sb.header().proposer) {
            proposer_counts[i] += 1;
        }
        let commit_time = SimTime::from_micros(sb.header().timestamp_us);
        let Some(block) = sb.body() else { continue };
        for tx in &block.txs {
            if matches!(tx, Transaction::Coinbase { .. }) {
                continue;
            }
            if let Some(&sub) = submitted.get(&tx.id()) {
                latency.record(commit_time.saturating_since(sub).as_secs_f64());
            }
        }
    }

    let canonical_blocks = chain.canonical().len() as u64 - 1;
    let total_blocks = chain.tree().len() as u64 - 1;
    let stale_blocks = total_blocks - canonical_blocks;
    let stale_rate = if total_blocks == 0 {
        0.0
    } else {
        stale_blocks as f64 / total_blocks as f64
    };
    let mean_block_interval = if timestamps.len() >= 2 {
        (timestamps[timestamps.len() - 1] - timestamps[0]) as f64
            / 1_000_000.0
            / (timestamps.len() - 1) as f64
    } else {
        0.0
    };

    // Agreement: every replica's canonical block at the reference's
    // confirmed height must match.
    let confirmation = chain.config().confirmation_depth;
    let min_height = nodes
        .iter()
        .map(|n| n.core().chain.height())
        .min()
        .expect("non-empty");
    let check_height = min_height.saturating_sub(confirmation);
    let reference_block = chain.canonical_at(check_height);
    let replicas_agree = nodes
        .iter()
        .all(|n| n.core().chain.canonical_at(check_height) == reference_block);

    let work_expended: f64 = nodes.iter().map(LedgerNode::work_expended).sum();
    let rejected_blocks: u64 = nodes.iter().map(|n| n.core().rejected_blocks).sum();
    let internal_errors: u64 = nodes
        .iter()
        .map(|n| n.core().internal_errors + n.core().chain.stats().internal_errors)
        .sum();
    let sync_retries: u64 = nodes.iter().map(|n| n.core().sync_retries).sum();
    let catchup_rounds: u64 = nodes.iter().map(|n| n.core().catchup_rounds).sum();
    let stats = chain.stats();
    SimResult {
        horizon,
        committed_txs,
        tps: committed_txs as f64 / horizon.as_secs_f64().max(1e-9),
        latency,
        canonical_blocks,
        total_blocks,
        stale_blocks,
        stale_rate,
        mean_block_interval,
        reorgs: stats.reorgs,
        max_reorg_depth: stats.max_reorg_depth,
        rejected_blocks,
        internal_errors,
        sync_retries,
        catchup_rounds,
        replicas_agree,
        proposer_gini: gini(&proposer_counts),
        nakamoto: nakamoto_coefficient(&proposer_counts),
        proposer_counts,
        work_expended,
        work_per_block: work_expended / canonical_blocks.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_crypto::{sha256, KeyPair};

    #[test]
    fn verification_report_reflects_cache_activity() {
        let pipeline = VerifyPipeline::new(2, 256);
        let mut kp = KeyPair::generate([1u8; 32], 2);
        let pk = kp.public_key();
        let msg = sha256(b"m");
        let sig = kp.sign(&msg).unwrap();
        let items = vec![(pk, msg, sig)];
        pipeline.verify_batch(&items); // miss
        pipeline.verify_batch(&items); // hit
        let report = VerificationReport::collect(&pipeline);
        assert_eq!(report.signatures_skipped(), 1);
        assert_eq!(report.signatures_verified(), 1);
        assert!((report.cache_hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(report.verify_batches(), 2);
        assert!((report.avg_batch_size() - 1.0).abs() < 1e-9);
        let text = report.to_string();
        assert!(text.contains("skipped=1"), "{text}");
    }
}
