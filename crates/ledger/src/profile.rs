//! Named DCS profiles (§2.7): ready-made network configurations occupying
//! the corners of the paper's Decentralization–Consistency–Scalability
//! triangle. "One size does not fit all" — these are the sizes.

use crate::builders::{OrderingParams, PowParams};
use dcs_net::{LatencyModel, NetConfig, Topology};
use dcs_primitives::{ChainConfig, ConsensusKind, ForkChoice};
use serde::{Deserialize, Serialize};

/// The DCS corner a profile targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Corner {
    /// Decentralized + Consistent (throughput sacrificed).
    DC,
    /// Consistent + Scalable (decentralization sacrificed).
    CS,
    /// Decentralized + Scalable (consistency sacrificed).
    DS,
}

/// A named, paper-grounded deployment profile.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Human-readable name.
    pub name: &'static str,
    /// Which two properties it keeps.
    pub corner: Corner,
    /// Chain configuration.
    pub chain: ChainConfig,
    /// Network configuration.
    pub net: NetConfig,
    /// Suggested peer count.
    pub nodes: usize,
}

impl Profile {
    /// Bitcoin-like DC profile, scaled to simulation time: PoW, 10-minute
    /// blocks, longest chain. Consistent and decentralized; ~7 tps ceiling.
    pub fn dc_bitcoin() -> Profile {
        Profile {
            name: "DC/bitcoin",
            corner: Corner::DC,
            chain: ChainConfig::bitcoin_like(),
            net: NetConfig {
                nodes: 16,
                topology: Topology::KRegular { k: 4 },
                latency: LatencyModel::wan(),
                drop_probability: 0.0,
                bandwidth_bytes_per_sec: None,
            },
            nodes: 16,
        }
    }

    /// Ethereum-like DC profile: 15-second PoW blocks with GHOST, which
    /// trades a higher stale rate for throughput (§2.7).
    pub fn dc_ethereum() -> Profile {
        Profile {
            name: "DC/ethereum",
            corner: Corner::DC,
            chain: ChainConfig::ethereum_like(),
            net: Profile::dc_bitcoin().net,
            nodes: 16,
        }
    }

    /// Hyperledger-like CS profile: a permissioned ordering service —
    /// >10K tps capable, but one orderer (decentralization sacrificed).
    pub fn cs_hyperledger() -> Profile {
        let params = OrderingParams::default();
        Profile {
            name: "CS/hyperledger",
            corner: Corner::CS,
            chain: params.chain,
            net: params.net,
            nodes: 8,
        }
    }

    /// A DS profile: PoW with sub-second blocks and no retargeting —
    /// decentralized and fast, but branches constantly (consistency
    /// sacrificed). The cautionary corner.
    pub fn ds_fast_pow() -> Profile {
        let mut chain = ChainConfig::bitcoin_like();
        chain.consensus = ConsensusKind::ProofOfWork {
            initial_difficulty: 8_000, // 16 kH/s network → ~0.5 s blocks
            retarget_window: 0,
            target_interval_us: 500_000,
        };
        chain.fork_choice = ForkChoice::LongestChain;
        chain.block_tx_limit = 2_000;
        Profile {
            name: "DS/fast-pow",
            corner: Corner::DS,
            chain,
            net: Profile::dc_bitcoin().net,
            nodes: 16,
        }
    }

    /// The PoW params for this profile (panics for non-PoW profiles).
    pub fn pow_params(&self) -> PowParams {
        assert!(
            matches!(self.chain.consensus, ConsensusKind::ProofOfWork { .. }),
            "{} is not a PoW profile",
            self.name
        );
        PowParams {
            nodes: self.nodes,
            hash_powers: vec![1_000.0],
            chain: self.chain.clone(),
            net: self.net.clone(),
        }
    }

    /// The ordering params for this profile (panics otherwise).
    pub fn ordering_params(&self) -> OrderingParams {
        assert!(
            matches!(self.chain.consensus, ConsensusKind::Ordering { .. }),
            "{} is not an ordering profile",
            self.name
        );
        OrderingParams {
            nodes: self.nodes,
            chain: self.chain.clone(),
            net: self.net.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_cover_the_triangle() {
        assert_eq!(Profile::dc_bitcoin().corner, Corner::DC);
        assert_eq!(Profile::dc_ethereum().corner, Corner::DC);
        assert_eq!(Profile::cs_hyperledger().corner, Corner::CS);
        assert_eq!(Profile::ds_fast_pow().corner, Corner::DS);
    }

    #[test]
    #[should_panic(expected = "is not a PoW profile")]
    fn mismatched_params_panics() {
        Profile::cs_hyperledger().pow_params();
    }
}
