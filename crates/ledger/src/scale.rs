//! Scale-out workloads wired into the full stack (PR 10).
//!
//! [`run_channel_workload`] drives the middleware payment-channel
//! application ([`dcs_middleware::ChannelApp`]) through a real ordering
//! consensus network: channel opens, unilateral/cooperative closes,
//! watchtower challenges, and settlements all travel the mempool → batch →
//! block → commit path, while payments stay off-chain with the driver (who
//! holds every party's keys, simulating all clients). The watchtower is
//! honest-by-construction here: it reads committed blocks off a peer,
//! spots stale unilateral closes, and answers them with the newest
//! dual-signed state inside the dispute window.
//!
//! Everything is scheduled deterministically from the seed, so two runs
//! with the same parameters produce bit-identical dispute outcomes and
//! application state hashes — the replay gate in `tests/determinism.rs`.

use crate::builders::node_address;
use dcs_chain::StateMachine;
use dcs_consensus::ordering::OrderingNode;
use dcs_consensus::{wire_size, WireMsg};
use dcs_crypto::codec::decode_all;
use dcs_crypto::{Address, Hash256, KeyPair, Signature};
use dcs_middleware::{AppAdapter, ChannelApp, ChannelAppStats, ChannelOp};
use dcs_net::{LatencyModel, NetConfig, NodeId, Runner, Topology};
use dcs_primitives::{Amount, ChainConfig, ConsensusKind, SealedTx, Transaction, TxPayload};
use dcs_scale::channels::ChannelState;
use dcs_sim::{Rng, SimTime};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Parameters of the channel workload.
#[derive(Debug, Clone)]
pub struct ChannelWorkloadParams {
    /// Consensus peers.
    pub nodes: usize,
    /// Channel parties (the driver holds all their keys).
    pub parties: usize,
    /// Channels to open.
    pub channels: u64,
    /// Off-chain payments exchanged per channel before closing.
    pub payments_per_channel: u64,
    /// Dispute window, in block heights.
    pub dispute_window: u64,
    /// Per-party on-chain funding.
    pub funding: Amount,
    /// Event-engine worker override (None = serial).
    pub engine_workers: Option<usize>,
}

impl Default for ChannelWorkloadParams {
    fn default() -> Self {
        ChannelWorkloadParams {
            nodes: 4,
            parties: 6,
            channels: 4,
            payments_per_channel: 8,
            dispute_window: 6,
            funding: 1_000_000,
            engine_workers: None,
        }
    }
}

/// Outcome of a channel-workload run.
#[derive(Debug, Clone)]
pub struct ChannelRunReport {
    /// The channel application's op counters (read off peer 0).
    pub app_stats: ChannelAppStats,
    /// The application state hash at the end of the run — the replay gate.
    pub state_hash: Hash256,
    /// Off-chain state updates the driver exchanged (never hit the chain).
    pub offchain_updates: u64,
    /// Channel operations committed on-chain.
    pub onchain_ops: u64,
    /// Stale unilateral closes attempted by cheating closers.
    pub cheats_attempted: u64,
    /// Cheats the watchtower successfully challenged (newer state won).
    pub cheats_punished: u64,
    /// Chain height on peer 0 at the end of the run.
    pub height: u64,
    /// Simulated events processed.
    pub events: u64,
}

/// One channel as the driver (off-chain world) sees it.
struct DriverChannel {
    id: u64,
    a: usize,
    b: usize,
    /// Latest dual-signed state.
    latest: (ChannelState, Signature, Signature),
    /// A deliberately retained stale state (the cheat material).
    stale: Option<(ChannelState, Signature, Signature)>,
    /// Whether the close schedule makes the closer cheat.
    cheats: bool,
}

struct Driver {
    parties: Vec<KeyPair>,
    nonces: BTreeMap<Address, u64>,
    channels: Vec<DriverChannel>,
    offchain_updates: u64,
}

impl Driver {
    fn sign_pair(&mut self, a: usize, b: usize, state: &ChannelState) -> (Signature, Signature) {
        let digest = state.digest();
        let sig_a = self.parties[a].sign(&digest).expect("key budget sized");
        let sig_b = self.parties[b].sign(&digest).expect("key budget sized");
        (sig_a, sig_b)
    }

    fn tx_for(&mut self, party: usize, op: ChannelOp) -> Transaction {
        let from = self.parties[party].address();
        let nonce = self.nonces.entry(from).or_insert(0);
        let tx = op.into_tx(from, *nonce);
        *nonce += 1;
        tx
    }
}

/// Injects one transaction at `at`, attributed to a deterministic peer.
fn inject(net: &mut dcs_net::Network<WireMsg>, at: SimTime, node: NodeId, tx: Transaction) {
    let sealed = SealedTx::new(Arc::new(tx));
    let msg = WireMsg::Tx(sealed);
    let size = wire_size(&msg);
    net.inject(at, node, msg, size);
}

/// Scans peer 0's canonical chain for committed channel ops.
fn committed_ops(node: &OrderingNode<AppAdapter<ChannelApp>>) -> Vec<(u64, ChannelOp)> {
    let chain = &node.core.chain;
    let app_addr = ChannelApp::app_address();
    let mut ops = Vec::new();
    for h in 1..=chain.height() {
        let Some(hash) = chain.canonical_at(h) else {
            continue;
        };
        let Some(stored) = chain.tree().get(&hash) else {
            continue;
        };
        for tx in &stored.block().txs {
            let Transaction::Account(acct) = tx else {
                continue;
            };
            if acct.to != Some(app_addr) {
                continue;
            }
            let TxPayload::Data(bytes) = &acct.payload else {
                continue;
            };
            if let Ok(op) = decode_all::<ChannelOp>(bytes) {
                ops.push((h, op));
            }
        }
    }
    ops
}

/// Runs the full channel lifecycle over an ordering network. Deterministic
/// in `(params, seed)`.
pub fn run_channel_workload(params: &ChannelWorkloadParams, seed: u64) -> ChannelRunReport {
    let chain_cfg = ChainConfig {
        consensus: ConsensusKind::Ordering {
            batch_size: 16,
            batch_timeout_us: 100_000,
            rotate_every: 0,
        },
        ..ChainConfig::hyperledger_like()
    };
    let mut rng = Rng::seed_from(seed ^ 0x5ca1_ab1e);

    // The driver owns every party's signing keys (it simulates all clients
    // and doubles as the watchtower).
    let parties: Vec<KeyPair> = (0..params.parties)
        .map(|i| {
            let mut key_seed = [0u8; 32];
            key_seed[..8].copy_from_slice(&seed.to_le_bytes());
            key_seed[8] = i as u8 + 1;
            // Height 7 = 128 one-time keys per party; a party co-signs at
            // most (channels × (1 + payments)) states, well under that.
            KeyPair::generate(key_seed, 7)
        })
        .collect();
    let alloc: Vec<(Address, Amount)> = parties
        .iter()
        .map(|kp| (kp.address(), params.funding))
        .collect();

    let genesis = dcs_chain::genesis_block(&chain_cfg);
    let net_cfg = NetConfig {
        nodes: params.nodes,
        topology: Topology::Complete,
        latency: LatencyModel::lan(),
        drop_probability: 0.0,
        bandwidth_bytes_per_sec: None,
    };
    let window = params.dispute_window;
    let mut runner: Runner<OrderingNode<AppAdapter<ChannelApp>>> = {
        let alloc = alloc.clone();
        let chain_cfg = chain_cfg.clone();
        let n = params.nodes;
        Runner::new(net_cfg, seed, move |id: NodeId| {
            OrderingNode::new(
                id,
                node_address(id.0),
                genesis.clone(),
                chain_cfg.clone(),
                AppAdapter::new(ChannelApp::new(window, &alloc)),
                n,
            )
        })
    };
    if let Some(w) = params.engine_workers {
        runner.set_shards(w);
    }

    let mut driver = Driver {
        parties,
        nonces: BTreeMap::new(),
        channels: Vec::new(),
        offchain_updates: 0,
    };
    let mut events = 0u64;
    let peer = |rng: &mut Rng| NodeId(rng.below(params.nodes as u64) as usize);

    // Phase 1 — open channels between random distinct party pairs.
    for id in 0..params.channels {
        let a = rng.below(params.parties as u64) as usize;
        let mut b = rng.below(params.parties as u64) as usize;
        if b == a {
            b = (a + 1) % params.parties;
        }
        let fund_a = 5_000 + rng.below(5_000);
        let fund_b = 1_000 + rng.below(5_000);
        let op = ChannelOp::Open {
            id,
            a: driver.parties[a].address(),
            b: driver.parties[b].address(),
            key_a: driver.parties[a].public_key(),
            key_b: driver.parties[b].public_key(),
            fund_a,
            fund_b,
        };
        let genesis_state = ChannelState {
            channel_id: id,
            seq: 0,
            balance_a: fund_a,
            balance_b: fund_b,
        };
        let (sa, sb) = driver.sign_pair(a, b, &genesis_state);
        driver.channels.push(DriverChannel {
            id,
            a,
            b,
            latest: (genesis_state, sa, sb),
            stale: None,
            cheats: id % 2 == 1, // every odd channel closes dishonestly
        });
        let tx = driver.tx_for(a, op);
        let at = SimTime::from_micros(10_000 + id * 3_000);
        let node = peer(&mut rng);
        inject(runner.net_mut(), at, node, tx);
    }
    events += runner.run_until(SimTime::from_micros(600_000));

    // Phase 2 — off-chain payments: dual-signed updates, no transactions.
    // Halfway through, cheating channels squirrel away the then-current
    // state to publish later.
    for ci in 0..driver.channels.len() {
        let half = params.payments_per_channel / 2;
        for p in 0..params.payments_per_channel {
            let (a, b, mut state) = {
                let ch = &driver.channels[ci];
                (ch.a, ch.b, ch.latest.0.clone())
            };
            state.seq += 1;
            // Alternate direction; skip a payment its side cannot afford.
            let amount = 1 + rng.below(500);
            if p % 2 == 0 {
                if state.balance_a < amount {
                    continue;
                }
                state.balance_a -= amount;
                state.balance_b += amount;
            } else {
                if state.balance_b < amount {
                    continue;
                }
                state.balance_b -= amount;
                state.balance_a += amount;
            }
            let (sa, sb) = driver.sign_pair(a, b, &state);
            let ch = &mut driver.channels[ci];
            ch.latest = (state, sa, sb);
            driver.offchain_updates += 1;
            if p + 1 == half {
                ch.stale = Some(ch.latest.clone());
            }
        }
    }

    // Phase 3 — closes: even channels cooperatively, odd ones publish the
    // stale mid-stream state (the cheat).
    let mut cheats_attempted = 0u64;
    for ci in 0..driver.channels.len() {
        let (id, a, cheats) = {
            let ch = &driver.channels[ci];
            (ch.id, ch.a, ch.cheats)
        };
        let stale = driver.channels[ci].stale.clone();
        let op = match (cheats, stale) {
            (true, Some((state, sig_a, sig_b))) => {
                cheats_attempted += 1;
                ChannelOp::UniClose {
                    id,
                    state,
                    sig_a,
                    sig_b,
                }
            }
            _ => ChannelOp::CoopClose { id },
        };
        let tx = driver.tx_for(a, op);
        let at = SimTime::from_micros(700_000 + id * 3_000);
        let node = peer(&mut rng);
        inject(runner.net_mut(), at, node, tx);
    }
    events += runner.run_until(SimTime::from_micros(1_400_000));

    // Phase 4 — the watchtower reads committed blocks off peer 0 and
    // challenges every published state older than what it co-signed.
    let mut cheats_punished = 0u64;
    let published = committed_ops(runner.node(NodeId(0)));
    let mut challenge_txs = Vec::new();
    for (_, op) in published {
        let ChannelOp::UniClose { id, state, .. } = op else {
            continue;
        };
        let ch = driver
            .channels
            .iter()
            .find(|c| c.id == id)
            .expect("driver opened every channel");
        if state.seq < ch.latest.0.seq {
            let (latest, sig_a, sig_b) = ch.latest.clone();
            let b = ch.b;
            cheats_punished += 1;
            challenge_txs.push((
                b,
                ChannelOp::Challenge {
                    id,
                    state: latest,
                    sig_a,
                    sig_b,
                },
            ));
        }
    }
    for (i, (b, op)) in challenge_txs.into_iter().enumerate() {
        let tx = driver.tx_for(b, op);
        let at = SimTime::from_micros(1_450_000 + i as u64 * 3_000);
        let node = peer(&mut rng);
        inject(runner.net_mut(), at, node, tx);
    }

    // Filler traffic advances the chain height through the dispute window
    // (an idle ordering chain cuts no blocks, so height would stall).
    let filler_from = Address::from_index(0xF111);
    for i in 0..(window + 3) {
        let nonce = driver.nonces.entry(filler_from).or_insert(0);
        let mut tx = dcs_primitives::AccountTx::transfer(filler_from, filler_from, 0, *nonce);
        *nonce += 1;
        tx.gas_limit = 0;
        tx.gas_price = 0;
        tx.payload = TxPayload::Data(vec![0xCC; 8]);
        let at = SimTime::from_micros(1_500_000 + i * 150_000);
        let node = peer(&mut rng);
        inject(runner.net_mut(), at, node, Transaction::Account(tx));
    }
    let settle_start = 1_500_000 + (window + 3) * 150_000 + 200_000;
    events += runner.run_until(SimTime::from_micros(settle_start));

    // Phase 5 — finalize every disputed channel past its window.
    for ci in 0..driver.channels.len() {
        let (id, cheats, b) = {
            let ch = &driver.channels[ci];
            (ch.id, ch.cheats, ch.b)
        };
        if !cheats {
            continue;
        }
        let tx = driver.tx_for(b, ChannelOp::Finalize { id });
        let at = SimTime::from_micros(settle_start + 50_000 + id * 3_000);
        let node = peer(&mut rng);
        inject(runner.net_mut(), at, node, tx);
    }
    events += runner.run_until(SimTime::from_micros(settle_start + 800_000));

    let node0 = runner.node(NodeId(0));
    let app = node0.core.chain.machine().app();
    ChannelRunReport {
        app_stats: app.stats,
        state_hash: node0.core.chain.machine().state_root(),
        offchain_updates: driver.offchain_updates,
        onchain_ops: committed_ops(node0).len() as u64,
        cheats_attempted,
        cheats_punished,
        height: node0.core.chain.height(),
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_lifecycle_commits_through_consensus() {
        let params = ChannelWorkloadParams::default();
        let report = run_channel_workload(&params, 42);
        assert_eq!(report.app_stats.opens, params.channels);
        assert!(report.app_stats.coop_closes > 0, "even channels settled");
        assert!(report.cheats_attempted > 0, "odd channels cheated");
        assert_eq!(
            report.cheats_punished, report.cheats_attempted,
            "the watchtower answered every stale close"
        );
        assert_eq!(
            report.app_stats.challenges, report.cheats_punished,
            "every challenge committed"
        );
        assert_eq!(
            report.app_stats.finalized, report.app_stats.uni_closes,
            "every dispute settled"
        );
        // The whole point: payments vastly outnumber on-chain ops.
        assert!(report.offchain_updates > report.onchain_ops);
    }

    #[test]
    fn same_seed_same_dispute_outcomes() {
        let params = ChannelWorkloadParams::default();
        let a = run_channel_workload(&params, 7);
        let b = run_channel_workload(&params, 7);
        assert_eq!(a.state_hash, b.state_hash, "replay diverged");
        assert_eq!(a.app_stats, b.app_stats);
        assert_eq!(a.height, b.height);
    }
}
