//! Client workload generation: the transaction streams submitted by "client
//! users not actively involved in the ledger" (§2.4). Transactions arrive as
//! a Poisson process at a configurable rate, at a uniformly random
//! point-of-contact peer, and their submission times are recorded so metrics
//! can compute commit latency.

use dcs_consensus::WireMsg;
use dcs_crypto::{Address, Hash256};
use dcs_net::{Network, NodeId};
use dcs_primitives::{AccountTx, SealedTx, Transaction, TxPayload};
use dcs_sim::{Rng, SimDuration, SimTime};
use dcs_trace::{Id as TraceId, TraceEvent};
use std::collections::HashMap;
use std::sync::Arc;

/// What kind of transactions the clients submit.
#[derive(Debug, Clone)]
pub enum WorkloadKind {
    /// Random value transfers among `accounts` synthetic accounts (no
    /// nonce/balance semantics — for `NullMachine` consensus experiments).
    Transfers {
        /// Distinct account count.
        accounts: u64,
    },
    /// Nonce-correct transfers from pre-funded senders (for
    /// `AccountMachine` ledgers): sender `i` sends its `k`-th transaction
    /// with nonce `k`.
    FundedTransfers {
        /// Sender addresses (must be funded at genesis).
        senders: Vec<Address>,
    },
    /// Data-anchoring transactions of the given payload size (the notary /
    /// IoT telemetry pattern of generation 3.0).
    DataAnchors {
        /// Payload size in bytes.
        payload: usize,
    },
}

/// A client workload: `tps` transactions per second for `duration`.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Mean submission rate (Poisson arrivals).
    pub tps: f64,
    /// How long clients keep submitting.
    pub duration: SimDuration,
    /// Transaction shape.
    pub kind: WorkloadKind,
}

impl Workload {
    /// Random transfers among `accounts` accounts at `tps` for `duration`.
    pub fn transfers(tps: f64, duration: SimDuration, accounts: u64) -> Self {
        Workload {
            tps,
            duration,
            kind: WorkloadKind::Transfers { accounts },
        }
    }

    /// Nonce-correct transfers from the given funded senders.
    pub fn funded_transfers(tps: f64, duration: SimDuration, senders: Vec<Address>) -> Self {
        Workload {
            tps,
            duration,
            kind: WorkloadKind::FundedTransfers { senders },
        }
    }

    /// Data anchors of `payload` bytes.
    pub fn data_anchors(tps: f64, duration: SimDuration, payload: usize) -> Self {
        Workload {
            tps,
            duration,
            kind: WorkloadKind::DataAnchors { payload },
        }
    }

    /// Expected number of transactions this workload submits.
    pub fn expected_count(&self) -> u64 {
        (self.tps * self.duration.as_secs_f64()).round() as u64
    }

    /// Generates the transaction stream and schedules each transaction for
    /// delivery at its submission instant to a random peer. Returns the
    /// submission-time ledger keyed by transaction id.
    pub fn inject(&self, net: &mut Network<WireMsg>, seed: u64) -> HashMap<Hash256, SimTime> {
        let mut rng = Rng::seed_from(seed ^ 0x9e37_79b9);
        let n = net.node_count();
        let mut submitted = HashMap::new();
        let mut t = 0.0f64;
        let end = self.duration.as_secs_f64();
        let mut nonces: HashMap<Address, u64> = HashMap::new();
        let mut seq = 0u64;
        loop {
            t += rng.exp(1.0 / self.tps.max(1e-9));
            if t >= end {
                break;
            }
            let tx = self.make_tx(&mut rng, &mut nonces, seq);
            seq += 1;
            let at = SimTime::from_micros((t * 1_000_000.0) as u64);
            let node = NodeId(rng.below(n as u64) as usize);
            // Seal the transaction with its id once at injection; every
            // gossip hop downstream reuses the carried id.
            let sealed = SealedTx::new(Arc::new(tx));
            let id = sealed.id();
            submitted.insert(id, at);
            // Submission is attributed to the point-of-contact peer at the
            // instant the client hands the transaction over.
            net.emit_app(
                at.as_micros(),
                node,
                TraceEvent::TxSubmitted {
                    tx: TraceId(id.into_bytes()),
                },
            );
            let msg = WireMsg::Tx(sealed);
            let size = dcs_consensus::wire_size(&msg);
            net.inject(at, node, msg, size);
        }
        submitted
    }

    fn make_tx(&self, rng: &mut Rng, nonces: &mut HashMap<Address, u64>, seq: u64) -> Transaction {
        match &self.kind {
            WorkloadKind::Transfers { accounts } => {
                let from = Address::from_index(rng.below(*accounts));
                let to = Address::from_index(rng.below(*accounts));
                // `seq` as the nonce makes every transaction unique even
                // between identical (from, to, value) pairs.
                Transaction::Account(AccountTx::transfer(from, to, 1 + rng.below(1_000), seq))
            }
            WorkloadKind::FundedTransfers { senders } => {
                let from = senders[rng.below(senders.len() as u64) as usize];
                let to = senders[rng.below(senders.len() as u64) as usize];
                let nonce = nonces.entry(from).or_insert(0);
                let tx = AccountTx::transfer(from, to, 1 + rng.below(100), *nonce);
                *nonce += 1;
                Transaction::Account(tx)
            }
            WorkloadKind::DataAnchors { payload } => {
                let from = Address::from_index(rng.below(1_000));
                let mut tx = AccountTx::transfer(from, Address::ZERO, 0, seq);
                let mut data = vec![0u8; *payload];
                for b in &mut data {
                    *b = rng.next_u64() as u8;
                }
                tx.payload = TxPayload::Data(data);
                Transaction::Account(tx)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_net::{LatencyModel, NetConfig, Topology};

    fn net() -> Network<WireMsg> {
        Network::new(
            NetConfig {
                nodes: 4,
                topology: Topology::Complete,
                latency: LatencyModel::Constant(SimDuration::from_millis(1)),
                drop_probability: 0.0,
                bandwidth_bytes_per_sec: None,
            },
            1,
        )
    }

    #[test]
    fn injects_roughly_expected_count() {
        let w = Workload::transfers(50.0, SimDuration::from_secs(20), 10);
        let mut net = net();
        let submitted = w.inject(&mut net, 42);
        let expected = w.expected_count() as f64;
        assert!(
            (submitted.len() as f64 - expected).abs() < expected * 0.25,
            "submitted {} vs expected {expected}",
            submitted.len()
        );
    }

    #[test]
    fn all_ids_unique_and_times_in_range() {
        let w = Workload::transfers(100.0, SimDuration::from_secs(5), 3);
        let mut net = net();
        let submitted = w.inject(&mut net, 7);
        for t in submitted.values() {
            assert!(*t < SimTime::ZERO + SimDuration::from_secs(5));
        }
        // HashMap keying already proves id uniqueness if count matches the
        // injection count.
        assert_eq!(net.stats().sent as usize, submitted.len());
    }

    #[test]
    fn funded_transfers_have_sequential_nonces() {
        let senders = vec![Address::from_index(1)];
        let w = Workload::funded_transfers(100.0, SimDuration::from_secs(2), senders);
        let mut rng = Rng::seed_from(1);
        let mut nonces = HashMap::new();
        let t0 = w.make_tx(&mut rng, &mut nonces, 0);
        let t1 = w.make_tx(&mut rng, &mut nonces, 1);
        match (t0, t1) {
            (Transaction::Account(a), Transaction::Account(b)) => {
                assert_eq!(a.nonce, 0);
                assert_eq!(b.nonce, 1);
            }
            _ => panic!("expected account txs"),
        }
    }

    #[test]
    fn data_anchor_payload_size() {
        let w = Workload::data_anchors(10.0, SimDuration::from_secs(1), 256);
        let mut rng = Rng::seed_from(2);
        let tx = w.make_tx(&mut rng, &mut HashMap::new(), 0);
        match tx {
            Transaction::Account(a) => match a.payload {
                TxPayload::Data(d) => assert_eq!(d.len(), 256),
                _ => panic!("expected data payload"),
            },
            _ => panic!("expected account tx"),
        }
    }
}
