//! The `dcs-ledger` platform: the paper's distributed ledger (Fig. 1) as a
//! configurable, simulatable system — "blockchain + P2P network + consensus"
//! with every consensus family of §2.4 pluggable, plus the workload
//! generation and metric collection behind the DCS experiments (§2.7).
//!
//! This is the crate downstream users interact with:
//!
//! * [`builders`] — construct a whole simulated network for any consensus
//!   family in one call.
//! * [`workload`] — client transaction generators (the "users not actively
//!   involved in the ledger" of §2.4).
//! * [`metrics`] — the DCS measurement suite: throughput and latency
//!   (scalability), fork/reorg rates and replica agreement (consistency),
//!   Gini and Nakamoto coefficients over proposer power (decentralization).
//! * [`profile`] — named DCS presets: `DC` (Bitcoin-like, Ethereum-like),
//!   `CS` (Hyperledger-like), `DS` (fast PoW that sacrifices consistency).
//! * [`serve`] — the live operations surface: install a metrics registry
//!   over a whole network and expose it (plus status, per-transaction
//!   timelines, analytics, and a flight recorder) over HTTP
//!   (`dcs-ledger serve`; DESIGN.md §16).
//!
//! # Examples
//!
//! Run a 12-peer Bitcoin-like proof-of-work network for two simulated hours
//! and measure it:
//!
//! ```
//! use dcs_ledger::{builders, metrics, workload::Workload};
//! use dcs_sim::SimDuration;
//!
//! let mut cfg = builders::PowParams::default();
//! cfg.nodes = 12;
//! cfg.chain.consensus = dcs_primitives::ConsensusKind::ProofOfWork {
//!     initial_difficulty: 1_000_000,
//!     retarget_window: 0,
//!     target_interval_us: 60_000_000,
//! };
//! let mut runner = builders::build_pow(&cfg, 42);
//! let submitted = Workload::transfers(5.0, SimDuration::from_secs(600), 100)
//!     .inject(runner.net_mut(), 7);
//! runner.run_until(dcs_sim::SimTime::ZERO + SimDuration::from_secs(700));
//! let result = metrics::collect(runner.nodes(), &submitted, SimDuration::from_secs(700));
//! assert!(result.total_blocks > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builders;
pub mod faults;
pub mod metrics;
pub mod profile;
pub mod scale;
pub mod serve;
pub mod trace;
pub mod traits;
pub mod workload;

pub use builders::{
    build_ng, build_ordering, build_pbft, build_poet, build_pos, build_pow, NgParams,
    OrderingParams, PbftParams, PoetParams, PosParams, PowParams,
};
pub use faults::install_faults;
pub use metrics::{collect, SimResult, VerificationReport};
pub use profile::Profile;
pub use scale::{run_channel_workload, ChannelRunReport, ChannelWorkloadParams};
pub use serve::{
    install_metrics, run_live, OpsServer, OpsState, RunnerGauges, ScaleSidecar, ScaleStatus,
    ServeParams,
};
pub use trace::{collect_traces, install_tracing};
pub use traits::LedgerNode;
pub use workload::Workload;
