//! `dcs-ledger` — the platform's command-line entry point.
//!
//! Currently one subcommand: `serve`, which runs a live simulated ledger
//! network and exposes its operations surface over HTTP (`/metrics`,
//! `/status`, `/tx/<id>`, `/analytics`, `/recent`; see DESIGN.md §16).

use dcs_ledger::ServeParams;
use std::process::ExitCode;

const USAGE: &str = "\
usage: dcs-ledger serve [options]

Runs a live simulated PoW ledger network and serves its operations
surface over HTTP until killed.

options:
  --addr HOST:PORT   listen address            (default 127.0.0.1:9090)
  --seed N           run seed                  (default 42)
  --nodes N          peer count                (default 8)
  --tps F            client transactions/sim-s (default 5)
  --shards N         engine shard workers      (default: runner default)
  --sim-secs N       simulated workload length (default 600)
  --tick-ms N        wall ms per live tick     (default 100)
  --warp N           sim-time multiplier       (default 10)
  --max-ticks N      stop after N ticks        (default 0 = run forever)

endpoints: /metrics /status /tx/<id> /analytics /recent";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            eprintln!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("dcs-ledger: unknown command `{other}`\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn serve(args: &[String]) -> ExitCode {
    let params = match parse_serve_args(args) {
        Ok(p) => p,
        Err(message) => {
            eprintln!("dcs-ledger serve: {message}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = dcs_ledger::run_live(&params, |addr| {
        eprintln!("dcs-ledger serve: listening on http://{addr} (endpoints: /metrics /status /tx/<id> /analytics /recent)");
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dcs-ledger serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_serve_args(args: &[String]) -> Result<ServeParams, String> {
    let mut params = ServeParams::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().ok_or_else(|| format!("`{flag}` needs a value"));
        match flag.as_str() {
            "--addr" => params.addr = value()?.clone(),
            "--seed" => params.seed = parse(flag, value()?)?,
            "--nodes" => params.nodes = parse(flag, value()?)?,
            "--tps" => params.tps = parse(flag, value()?)?,
            "--shards" => params.shards = parse(flag, value()?)?,
            "--sim-secs" => params.sim_secs = parse(flag, value()?)?,
            "--tick-ms" => params.tick_ms = parse(flag, value()?)?,
            "--warp" => params.warp = parse(flag, value()?)?,
            "--max-ticks" => params.max_ticks = parse(flag, value()?)?,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if params.nodes < 2 {
        return Err("--nodes must be at least 2".to_string());
    }
    if params.tick_ms == 0 {
        return Err("--tick-ms must be positive".to_string());
    }
    Ok(params)
}

fn parse<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("invalid value for `{flag}`: {raw}"))
}
