//! One-call tracing setup and collection for a whole simulated network.
//!
//! [`install_tracing`] arms every tracer in a [`Runner`] — the per-node
//! fabric and dispatch tracers, and each peer's consensus core and chain
//! replica — under one [`TraceConfig`]. After the run, [`collect_traces`]
//! gathers every buffer into a [`TraceSet`] whose per-peer digests and
//! merged record stream feed the determinism suite, the lifecycle-span
//! queries, and the exporters.

use crate::traits::LedgerNode;
use dcs_net::Runner;
use dcs_trace::{TraceConfig, TraceSet};

/// Installs tracers under `cfg` on the fabric, the event queue, and every
/// peer (consensus core + chain replica). Call before driving the run;
/// with [`TraceConfig::off`] this uninstalls everything.
pub fn install_tracing<P: LedgerNode>(runner: &mut Runner<P>, cfg: &TraceConfig) {
    runner.net_mut().set_tracing(cfg);
    for i in 0..runner.nodes().len() {
        runner
            .node_mut(dcs_net::NodeId(i))
            .core_mut()
            .set_tracing(cfg);
    }
}

/// Collects every tracer's buffer into one [`TraceSet`]. Sources are added
/// in a fixed order (per-node fabric tracers under `"net"`, per-node
/// dispatch tracers under `"sim"`, then peers by index; each peer's core
/// and chain tracers share its `node<i>` key), so the merged stream and
/// digest map are deterministic. Because the fabric and dispatch streams
/// are recorded per node, the folded digests are identical at any engine
/// shard count.
pub fn collect_traces<P: LedgerNode>(runner: &Runner<P>) -> TraceSet {
    let mut set = TraceSet::new();
    for t in runner.net().node_tracers() {
        set.add("net", t);
    }
    for t in runner.net().dispatch_tracers() {
        set.add("sim", t);
    }
    for (i, node) in runner.nodes().iter().enumerate() {
        let key = format!("node{i}");
        set.add(&key, &node.core().tracer);
        set.add(&key, node.core().chain.tracer());
    }
    set
}
