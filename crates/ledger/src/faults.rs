//! One-call fault-injection setup for a whole simulated network.
//!
//! [`install_faults`] validates a [`FaultSchedule`] against the runner's
//! network and hands back the [`FaultDriver`] that replays it — the
//! fault-injection twin of [`install_tracing`](crate::install_tracing):
//!
//! ```
//! use dcs_ledger::{builders, faults::install_faults};
//! use dcs_faults::FaultSchedule;
//! use dcs_net::NodeId;
//! use dcs_sim::{SimDuration, SimTime};
//!
//! let cfg = builders::PowParams::default();
//! let mut runner = builders::build_pow(&cfg, 42);
//! let schedule = FaultSchedule::new()
//!     .crash_at(SimTime::ZERO + SimDuration::from_secs(100), NodeId(0))
//!     .restart_at(SimTime::ZERO + SimDuration::from_secs(300), NodeId(0));
//! let mut driver = install_faults(&runner, schedule);
//! driver.run_until(&mut runner, SimTime::ZERO + SimDuration::from_secs(600));
//! ```

use dcs_consensus::Recoverable;
use dcs_faults::{FaultDriver, FaultSchedule};
use dcs_net::Runner;

/// Validates `schedule` against the runner's network size and builds the
/// driver that replays it. Drive the run through
/// [`FaultDriver::run_until`] instead of `Runner::run_until` so scripted
/// faults fire at their exact simulated instants.
///
/// # Panics
///
/// Panics if the schedule references a node outside the network (see
/// [`FaultSchedule::validate`]).
pub fn install_faults<P: Recoverable>(runner: &Runner<P>, schedule: FaultSchedule) -> FaultDriver {
    schedule.validate(runner.net().node_count());
    FaultDriver::new(schedule)
}
