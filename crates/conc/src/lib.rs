//! `dcs-conc` — a bounded interleaving model checker.
//!
//! The workspace vendors no model-checking framework, so the concurrency
//! audit lane (DESIGN.md §15) uses this dependency-free explorer instead:
//! a model is a set of per-thread **operation sequences** over shared state
//! `S`; the checker enumerates **every** interleaving that respects each
//! thread's program order, replays each schedule from a fresh state, and
//! evaluates an invariant after every step. Operations execute atomically
//! with respect to each other — exactly the granularity of the lock-
//! protected methods under audit (`SigCache::get`/`insert`, mempool
//! `admit`), where each call holds a shard lock end-to-end. Races *between*
//! calls (check-then-act splits, counter drift, lost updates across a
//! get→verify→insert handoff) surface as an invariant failure with the
//! exact failing schedule attached.
//!
//! The exploration is exhaustive and fully deterministic: schedules are
//! enumerated in lexicographic thread order, there is no randomness and no
//! time, and the schedule count is the multinomial coefficient of the
//! thread lengths — a [`Model::check`] call refuses to run past
//! [`Model::max_schedules`] so tests stay bounded by construction.

use std::fmt;

/// One atomic operation applied to the shared state.
pub type Op<S> = Box<dyn Fn(&mut S)>;

/// A counterexample: the schedule and step where the invariant broke.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Thread index executed at each step, in order.
    pub schedule: Vec<usize>,
    /// Step (0-based, into `schedule`) after which the invariant failed;
    /// `schedule.len()` means the final-state check failed.
    pub step: usize,
    /// The invariant's error message.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant violated after step {} of schedule {:?}: {}",
            self.step, self.schedule, self.message
        )
    }
}

/// Exploration statistics for a passing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Explored {
    /// Interleavings executed.
    pub schedules: u64,
    /// Total operations executed across all schedules.
    pub steps: u64,
}

/// A model: per-thread operation sequences plus exploration bounds.
pub struct Model<S> {
    threads: Vec<Vec<Op<S>>>,
    max_schedules: u64,
}

impl<S> Default for Model<S> {
    fn default() -> Self {
        Model::new()
    }
}

impl<S> Model<S> {
    /// An empty model with the default schedule bound (2 million).
    pub fn new() -> Self {
        Model {
            threads: Vec::new(),
            max_schedules: 2_000_000,
        }
    }

    /// Adds a thread as an ordered operation sequence.
    pub fn thread(mut self, ops: Vec<Op<S>>) -> Self {
        self.threads.push(ops);
        self
    }

    /// Overrides the refuse-to-run schedule bound.
    pub fn max_schedules(mut self, max: u64) -> Self {
        self.max_schedules = max;
        self
    }

    /// Number of distinct interleavings this model generates: the
    /// multinomial coefficient of the thread lengths. Saturates at
    /// `u128::MAX`.
    pub fn schedule_count(&self) -> u128 {
        // Multiply incrementally as C(total, n_i) products to delay
        // overflow: total!/(n_1!…n_k!) = Π C(partial_total_i, n_i).
        let mut total: u128 = 0;
        let mut count: u128 = 1;
        for t in &self.threads {
            for j in 1..=t.len() as u128 {
                total += 1;
                count = count.saturating_mul(total).saturating_div(j.max(1));
            }
        }
        count
    }

    /// Explores every interleaving. Each schedule replays from a fresh
    /// `init()` state; `invariant` runs after every operation and once more
    /// on the final state. Returns the first counterexample, or exploration
    /// stats when every schedule passes.
    ///
    /// Errors with a synthetic violation (empty schedule) when the model
    /// exceeds [`Model::max_schedules`] — shrink the model instead of
    /// raising the bound.
    pub fn check<I, F>(&self, init: I, invariant: F) -> Result<Explored, Violation>
    where
        I: Fn() -> S,
        F: Fn(&S) -> Result<(), String>,
    {
        let count = self.schedule_count();
        if count > self.max_schedules as u128 {
            return Err(Violation {
                schedule: Vec::new(),
                step: 0,
                message: format!(
                    "model generates {count} schedules (> bound {}); shrink the model",
                    self.max_schedules
                ),
            });
        }
        let total_ops: usize = self.threads.iter().map(Vec::len).sum();
        let mut schedule: Vec<usize> = Vec::with_capacity(total_ops);
        let mut stats = Explored {
            schedules: 0,
            steps: 0,
        };
        self.enumerate(&init, &invariant, total_ops, &mut schedule, &mut stats)?;
        Ok(stats)
    }

    /// Depth-first enumeration over next-thread choices; replays the full
    /// schedule at each leaf.
    fn enumerate<I, F>(
        &self,
        init: &I,
        invariant: &F,
        remaining: usize,
        schedule: &mut Vec<usize>,
        stats: &mut Explored,
    ) -> Result<(), Violation>
    where
        I: Fn() -> S,
        F: Fn(&S) -> Result<(), String>,
    {
        if remaining == 0 {
            return self.replay(init, invariant, schedule, stats);
        }
        // Per-thread progress implied by the prefix.
        for t in 0..self.threads.len() {
            let done = schedule.iter().filter(|&&x| x == t).count();
            if done < self.threads[t].len() {
                schedule.push(t);
                self.enumerate(init, invariant, remaining - 1, schedule, stats)?;
                schedule.pop();
            }
        }
        Ok(())
    }

    fn replay<I, F>(
        &self,
        init: &I,
        invariant: &F,
        schedule: &[usize],
        stats: &mut Explored,
    ) -> Result<(), Violation>
    where
        I: Fn() -> S,
        F: Fn(&S) -> Result<(), String>,
    {
        let mut state = init();
        let mut progress = vec![0usize; self.threads.len()];
        stats.schedules += 1;
        for (step, &t) in schedule.iter().enumerate() {
            (self.threads[t][progress[t]])(&mut state);
            progress[t] += 1;
            stats.steps += 1;
            if let Err(message) = invariant(&state) {
                return Err(Violation {
                    schedule: schedule.to_vec(),
                    step,
                    message,
                });
            }
        }
        if let Err(message) = invariant(&state) {
            return Err(Violation {
                schedule: schedule.to_vec(),
                step: schedule.len(),
                message,
            });
        }
        Ok(())
    }
}

/// Convenience: builds a thread from `n` repetitions of one closure.
pub fn ops_of<S: 'static>(n: usize, f: impl Fn(&mut S) + Clone + 'static) -> Vec<Op<S>> {
    (0..n)
        .map(|_| {
            let f = f.clone();
            Box::new(move |s: &mut S| f(s)) as Op<S>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_count_is_the_multinomial() {
        // 2+2 ops → C(4,2) = 6; 2+2+2 → 6!/(2!2!2!) = 90.
        let m: Model<()> = Model::new()
            .thread(ops_of(2, |_| {}))
            .thread(ops_of(2, |_| {}));
        assert_eq!(m.schedule_count(), 6);
        let m3: Model<()> = Model::new()
            .thread(ops_of(2, |_| {}))
            .thread(ops_of(2, |_| {}))
            .thread(ops_of(2, |_| {}));
        assert_eq!(m3.schedule_count(), 90);
    }

    #[test]
    fn explores_every_interleaving_exactly_once() {
        // Count schedules via the stats; 3+2 ops → C(5,2) = 10 schedules,
        // each replaying 5 steps.
        let m: Model<u32> = Model::new()
            .thread(ops_of(3, |s: &mut u32| *s += 1))
            .thread(ops_of(2, |s: &mut u32| *s += 10));
        let explored = m.check(|| 0, |_| Ok(())).unwrap();
        assert_eq!(explored.schedules, 10);
        assert_eq!(explored.steps, 50);
    }

    #[test]
    fn atomic_increments_always_sum() {
        let m: Model<u64> = Model::new()
            .thread(ops_of(4, |s: &mut u64| *s += 1))
            .thread(ops_of(4, |s: &mut u64| *s += 1));
        // Final-state invariant only fires at quiescence via a step gate.
        let explored = m
            .check(
                || 0,
                |s| {
                    if *s <= 8 {
                        Ok(())
                    } else {
                        Err(format!("sum overshot: {s}"))
                    }
                },
            )
            .unwrap();
        assert_eq!(explored.schedules, 70); // C(8,4)
    }

    #[test]
    fn seeded_check_then_act_race_is_caught() {
        // The classic lost update: each "thread" reads the counter into a
        // local, then writes back read+1 as a *separate* operation. Some
        // interleaving loses an update, so the final count must be < 2 in
        // at least one schedule — the explorer must find it.
        #[derive(Default)]
        struct St {
            counter: u64,
            reads: Vec<u64>,
            done: usize,
        }
        let read = |tid: usize| {
            Box::new(move |s: &mut St| {
                while s.reads.len() <= tid {
                    s.reads.push(0);
                }
                s.reads[tid] = s.counter;
            }) as Op<St>
        };
        let write = |tid: usize| {
            Box::new(move |s: &mut St| {
                s.counter = s.reads[tid] + 1;
                s.done += 1;
            }) as Op<St>
        };
        let m: Model<St> = Model::new()
            .thread(vec![read(0), write(0)])
            .thread(vec![read(1), write(1)]);
        let violation = m
            .check(St::default, |s| {
                if s.done == 2 && s.counter != 2 {
                    Err(format!(
                        "lost update: counter={} after both writes",
                        s.counter
                    ))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
        assert!(violation.message.contains("lost update"));
        assert_eq!(violation.schedule.len(), 4);
    }

    #[test]
    fn schedule_bound_refuses_oversized_models() {
        let m: Model<()> = Model::new()
            .thread(ops_of(10, |_| {}))
            .thread(ops_of(10, |_| {}))
            .max_schedules(100);
        let v = m.check(|| (), |_| Ok(())).unwrap_err();
        assert!(v.message.contains("shrink the model"));
    }

    #[test]
    fn violation_reports_the_exact_step() {
        let m: Model<i32> = Model::new().thread(ops_of(3, |s: &mut i32| *s += 1));
        let v = m
            .check(
                || 0,
                |s| {
                    if *s >= 2 {
                        Err("hit two".to_string())
                    } else {
                        Ok(())
                    }
                },
            )
            .unwrap_err();
        assert_eq!(v.step, 1);
        assert_eq!(v.schedule, vec![0, 0, 0]);
    }
}
