//! Consensus-side live metrics: mempool admission and PBFT protocol
//! progress, labeled per peer.
//!
//! Installed with [`NodeCore::set_metrics`](crate::NodeCore::set_metrics)
//! (and [`PbftNode::set_metrics`](crate::pbft::PbftNode::set_metrics) for
//! the protocol counters). Every hook is a relaxed atomic bump beside an
//! already-taken decision — admission verdicts, phase sends, and view
//! entries are computed identically whether metrics are installed or not
//! (DESIGN.md §16).

use crate::mempool::{InsertOutcome, MEMPOOL_SHARDS};
use dcs_metrics::{Counter, Gauge, Registry};
use dcs_trace::PbftPhase;

/// Per-peer mempool instruments, registered under a `node` label.
#[derive(Debug, Clone)]
pub struct MempoolMetrics {
    admitted: Counter,
    rejected_duplicate: Counter,
    rejected_full: Counter,
    rejected_bad_witness: Counter,
    depth: Gauge,
    shard_depth: Vec<Gauge>,
}

impl MempoolMetrics {
    /// Registers the mempool series for the peer labeled `node`.
    pub fn register(registry: &Registry, node: &str) -> Self {
        let l = [("node", node)];
        let shard_depth = (0..MEMPOOL_SHARDS)
            .map(|s| {
                registry.gauge(
                    "dcs_mempool_shard_depth",
                    "pending transactions per sender-key shard",
                    &[("node", node), ("shard", &s.to_string())],
                )
            })
            .collect();
        MempoolMetrics {
            admitted: registry.counter(
                "dcs_mempool_admitted_total",
                "transactions admitted to the pool",
                &l,
            ),
            rejected_duplicate: registry.counter(
                "dcs_mempool_rejected_total",
                "transactions refused at admission, by reason",
                &[("node", node), ("reason", "duplicate")],
            ),
            rejected_full: registry.counter(
                "dcs_mempool_rejected_total",
                "transactions refused at admission, by reason",
                &[("node", node), ("reason", "full")],
            ),
            rejected_bad_witness: registry.counter(
                "dcs_mempool_rejected_total",
                "transactions refused at admission, by reason",
                &[("node", node), ("reason", "bad_witness")],
            ),
            depth: registry.gauge("dcs_mempool_depth", "pending transactions pooled", &l),
            shard_depth,
        }
    }

    /// Counts one admission outcome.
    pub fn record_outcome(&self, outcome: InsertOutcome) {
        match outcome {
            InsertOutcome::Added => self.admitted.inc(),
            InsertOutcome::Duplicate => self.rejected_duplicate.inc(),
            InsertOutcome::Full => self.rejected_full.inc(),
            InsertOutcome::BadWitness => self.rejected_bad_witness.inc(),
        }
    }

    /// Publishes the global pool depth.
    pub fn set_depth(&self, len: usize) {
        self.depth.set(len as i64);
    }

    /// Publishes one shard's depth.
    pub fn set_shard_depth(&self, shard: usize, len: usize) {
        if let Some(g) = self.shard_depth.get(shard) {
            g.set(len as i64);
        }
    }

    /// Publishes every shard depth at once (bulk removal paths).
    pub fn set_all_shard_depths(&self, lens: &[usize; MEMPOOL_SHARDS]) {
        for (shard, len) in lens.iter().enumerate() {
            self.set_shard_depth(shard, *len);
        }
    }
}

/// Per-replica PBFT instruments, registered under a `node` label.
#[derive(Debug, Clone)]
pub struct PbftMetrics {
    view: Gauge,
    view_changes: Counter,
    preprepare: Counter,
    prepare: Counter,
    commit: Counter,
}

impl PbftMetrics {
    /// Registers the PBFT series for the replica labeled `node`.
    pub fn register(registry: &Registry, node: &str) -> Self {
        let l = [("node", node)];
        PbftMetrics {
            view: registry.gauge("dcs_pbft_view", "current PBFT view", &l),
            view_changes: registry.counter(
                "dcs_pbft_view_changes_total",
                "view changes executed",
                &l,
            ),
            preprepare: registry.counter(
                "dcs_pbft_phase_total",
                "protocol phase entries, by phase",
                &[("node", node), ("phase", "preprepare")],
            ),
            prepare: registry.counter(
                "dcs_pbft_phase_total",
                "protocol phase entries, by phase",
                &[("node", node), ("phase", "prepare")],
            ),
            commit: registry.counter(
                "dcs_pbft_phase_total",
                "protocol phase entries, by phase",
                &[("node", node), ("phase", "commit")],
            ),
        }
    }

    /// Records a phase entry, mirroring the `TraceEvent::Pbft` emissions.
    pub fn record_phase(&self, phase: PbftPhase, view: u64) {
        match phase {
            PbftPhase::PrePrepare => self.preprepare.inc(),
            PbftPhase::Prepare => self.prepare.inc(),
            PbftPhase::Commit => self.commit.inc(),
            PbftPhase::ViewChange => self.view_changes.inc(),
        }
        self.view.set(view as i64);
    }
}
