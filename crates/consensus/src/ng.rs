//! Bitcoin-NG (\[14\], §2.4: "Proof-of-Work is employed to determine the next
//! leader, who can then propose the next sequence of blocks"): rare PoW
//! *key blocks* elect a leader; the leader streams frequent *microblocks*
//! carrying transactions until the next key block displaces it. Throughput
//! decouples from the key-block interval — the first of the paper's §5.4
//! "scalable system innovations".

use crate::node::{is_sync_tag, NodeCore};
use crate::WireMsg;
use dcs_chain::{ChainEvent, StateMachine};
use dcs_crypto::{Address, Hash256};
use dcs_net::{Ctx, NodeId, Protocol};
use dcs_primitives::{Block, ChainConfig, ConsensusKind, Seal};
use dcs_sim::{SimDuration, SimTime};

/// A Bitcoin-NG peer: mines key blocks, and serves as transaction leader
/// while its key block is the latest one on the canonical chain.
#[derive(Debug)]
pub struct NgNode<M: StateMachine> {
    /// Shared peer machinery.
    pub core: NodeCore<M>,
    /// This peer's hash power (key-block mining), hashes per second.
    pub hash_power: f64,
    /// Cumulative simulated hash attempts.
    pub work_expended: f64,
    key_difficulty: u64,
    micro_interval_us: u64,
    mining_epoch: u64,
    micro_epoch: u64,
    micro_seq: u64,
    mining_started: SimTime,
}

const TAG_MINE: u64 = 1 << 40;
const TAG_MICRO: u64 = 2 << 40;

impl<M: StateMachine> NgNode<M> {
    /// Creates a peer.
    ///
    /// # Panics
    ///
    /// Panics if the config is not `BitcoinNg` or hash power is not positive.
    pub fn new(
        id: NodeId,
        address: Address,
        genesis: Block,
        config: ChainConfig,
        machine: M,
        hash_power: f64,
    ) -> Self {
        assert!(hash_power > 0.0, "hash power must be positive");
        let ConsensusKind::BitcoinNg {
            key_difficulty,
            micro_interval_us,
            ..
        } = config.consensus
        else {
            panic!("NgNode requires a BitcoinNg consensus config")
        };
        NgNode {
            core: NodeCore::new(id, address, genesis, config, machine),
            hash_power,
            work_expended: 0.0,
            key_difficulty,
            micro_interval_us,
            mining_epoch: 0,
            micro_epoch: 0,
            micro_seq: 0,
            mining_started: SimTime::ZERO,
        }
    }

    /// The latest key block on the canonical chain and its proposer — the
    /// current leader. Falls back to genesis (no leader) if none.
    pub fn current_leader(&self) -> Option<(Hash256, Address)> {
        for hash in self.core.chain.canonical().iter().rev() {
            // Canonical hashes always resolve in the tree; a miss is a
            // broken store invariant — skip rather than abort.
            let Some(stored) = self.core.chain.tree().get(hash) else {
                continue;
            };
            let hdr = stored.header();
            if matches!(hdr.seal, Seal::Work { .. }) {
                return Some((*hash, hdr.proposer));
            }
        }
        None
    }

    fn i_am_leader(&self) -> bool {
        self.current_leader()
            .is_some_and(|(_, addr)| addr == self.core.address)
    }

    fn settle_work(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.mining_started).as_secs_f64();
        self.work_expended += self.hash_power * elapsed;
        self.mining_started = now;
    }

    fn restart_mining(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        self.settle_work(ctx.now);
        self.mining_epoch += 1;
        let mean_secs = self.key_difficulty as f64 / self.hash_power;
        let solve = ctx.rng.exp(mean_secs);
        ctx.set_timer(
            SimDuration::from_secs_f64(solve),
            TAG_MINE | self.mining_epoch,
        );
    }

    fn maybe_start_leading(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        if self.i_am_leader() {
            self.micro_epoch += 1;
            self.micro_seq = 0;
            ctx.set_timer(
                SimDuration::from_micros(self.micro_interval_us),
                TAG_MICRO | self.micro_epoch,
            );
        }
    }
}

impl<M: StateMachine> Protocol for NgNode<M> {
    type Msg = WireMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        self.mining_started = ctx.now;
        self.restart_mining(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: WireMsg, ctx: &mut Ctx<'_, WireMsg>) {
        match msg {
            WireMsg::Block(block) => {
                let is_key = matches!(block.header.seal, Seal::Work { .. });
                if let Some(event) = self.core.handle_block(block, Some(from), ctx) {
                    if matches!(
                        event,
                        ChainEvent::Extended { .. } | ChainEvent::Reorg { .. }
                    ) {
                        if is_key {
                            // New leader epoch: restart mining, and take over
                            // microblock production if the new key block is
                            // ours (it isn't, here — but a reorg can promote
                            // our own key block back to the tip).
                            self.restart_mining(ctx);
                        }
                        self.maybe_start_leading(ctx);
                    }
                }
            }
            WireMsg::Tx(tx) => {
                self.core.handle_tx(tx, Some(from), ctx);
            }
            WireMsg::Pbft(_) => {}
            WireMsg::BlockRequest(hash) => {
                self.core.handle_block_request(hash, from, ctx);
            }
            WireMsg::BlockNotFound(hash) => {
                self.core.handle_block_not_found(hash, from, ctx);
            }
            WireMsg::SyncRequest { locator } => {
                self.core.handle_sync_request(&locator, from, ctx);
            }
            WireMsg::SyncResponse { blocks, tip_height } => {
                if self
                    .core
                    .handle_sync_response(blocks, tip_height, from, ctx)
                {
                    // The caught-up tip may carry a new key block (new leader
                    // epoch) — restart mining and re-evaluate leadership.
                    self.restart_mining(ctx);
                    self.maybe_start_leading(ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, WireMsg>) {
        if is_sync_tag(tag) {
            self.core.handle_sync_timer(tag, ctx);
            return;
        }
        let kind = tag & (0xff << 40);
        let counter = tag & !(0xff << 40);
        match kind {
            TAG_MINE => {
                if counter != self.mining_epoch {
                    return;
                }
                // Key block found: empty of transactions, claims leadership.
                let seal = Seal::Work {
                    nonce: ctx.rng.next_u64(),
                    difficulty: self.key_difficulty,
                };
                let block = self.core.build_block_with(seal, ctx.now, false);
                self.core.handle_block(block, None, ctx);
                self.restart_mining(ctx);
                self.maybe_start_leading(ctx);
            }
            TAG_MICRO => {
                if counter != self.micro_epoch || !self.i_am_leader() {
                    return;
                }
                // `i_am_leader()` above implies a leader exists.
                let Some((key_block, _)) = self.current_leader() else {
                    return;
                };
                self.micro_seq += 1;
                if !self.core.mempool.is_empty() {
                    let seal = Seal::Micro {
                        key_block,
                        sequence: self.micro_seq,
                    };
                    let block = self.core.build_block(seal, ctx.now);
                    self.core.handle_block(block, None, ctx);
                }
                ctx.set_timer(
                    SimDuration::from_micros(self.micro_interval_us),
                    TAG_MICRO | self.micro_epoch,
                );
            }
            _ => {}
        }
    }
}
