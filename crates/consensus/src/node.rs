//! The peer core shared by every consensus protocol: a [`Chain`] replica, a
//! [`Mempool`], gossip dedup tables, block assembly, and the bookkeeping
//! that returns reverted transactions to the pool after reorgs. Individual
//! protocols (`pow`, `pos`, …) wrap a `NodeCore` and add their proposal
//! logic.

use crate::mempool::Mempool;
use crate::{wire_size, WireMsg};
use dcs_chain::{Chain, ChainEvent, StateMachine};
use dcs_crypto::{Address, Hash256};
use dcs_net::{Ctx, Gossiper, NodeId};
use dcs_primitives::{Block, BlockHeader, ChainConfig, Seal, Transaction};
use dcs_sim::SimTime;
use std::collections::HashSet;
use std::sync::Arc;

/// Shared per-peer machinery.
#[derive(Debug)]
pub struct NodeCore<M: StateMachine> {
    /// This peer's network identity.
    pub id: NodeId,
    /// This peer's reward address.
    pub address: Address,
    /// The local chain replica.
    pub chain: Chain<M>,
    /// Pending client transactions.
    pub mempool: Mempool,
    /// Blocks produced by this peer.
    pub blocks_produced: u64,
    seen: Gossiper,
    included: HashSet<Hash256>,
}

impl<M: StateMachine> NodeCore<M> {
    /// Builds a peer core over a fresh chain replica.
    pub fn new(
        id: NodeId,
        address: Address,
        genesis: Block,
        config: ChainConfig,
        machine: M,
    ) -> Self {
        NodeCore {
            id,
            address,
            chain: Chain::new(genesis, config, machine),
            mempool: Mempool::new(100_000),
            blocks_produced: 0,
            seen: Gossiper::new(),
            included: HashSet::new(),
        }
    }

    /// Transaction ids currently on this peer's canonical chain.
    pub fn included(&self) -> &HashSet<Hash256> {
        &self.included
    }

    /// Handles an incoming (or self-produced) block: dedup, re-gossip,
    /// import, mempool/included maintenance. `from` is `None` for blocks
    /// this peer produced itself. Returns the chain event if the block was
    /// new and imported.
    pub fn handle_block(
        &mut self,
        block: Arc<Block>,
        from: Option<NodeId>,
        ctx: &mut Ctx<'_, WireMsg>,
    ) -> Option<ChainEvent> {
        let hash = block.hash();
        if !self.seen.first_sight(hash) {
            return None;
        }
        let msg = WireMsg::Block(block.clone());
        let size = wire_size(&msg);
        match from {
            Some(sender) => ctx.broadcast_except(sender, msg, size),
            None => ctx.broadcast(msg, size),
        }
        let old_tip = self.chain.tip_hash();
        let parent = block.header.parent;
        let event = self.chain.import((*block).clone()).ok()?;
        if let (ChainEvent::Orphaned, Some(sender)) = (&event, from) {
            // Missing ancestry (e.g. after a healed partition): walk it back
            // one hop at a time from whoever showed us the descendant.
            let req = WireMsg::BlockRequest(parent);
            let size = wire_size(&req);
            ctx.send(sender, req, size);
        }
        self.after_event(&event, old_tip);
        Some(event)
    }

    /// Serves a sync request: if we hold `hash`, send the block straight
    /// back to the asker.
    pub fn handle_block_request(
        &mut self,
        hash: Hash256,
        from: NodeId,
        ctx: &mut Ctx<'_, WireMsg>,
    ) {
        if let Some(stored) = self.chain.tree().get(&hash) {
            let msg = WireMsg::Block(Arc::new(stored.block.clone()));
            let size = wire_size(&msg);
            ctx.send(from, msg, size);
        }
    }

    /// Handles an incoming (or locally submitted) transaction: dedup,
    /// re-gossip, mempool insertion. Returns true if the tx was new.
    pub fn handle_tx(
        &mut self,
        tx: Arc<Transaction>,
        from: Option<NodeId>,
        ctx: &mut Ctx<'_, WireMsg>,
    ) -> bool {
        let id = tx.id();
        if !self.seen.first_sight(id) {
            return false;
        }
        let msg = WireMsg::Tx(tx.clone());
        let size = wire_size(&msg);
        match from {
            Some(sender) => ctx.broadcast_except(sender, msg, size),
            None => ctx.broadcast(msg, size),
        }
        if !self.included.contains(&id) {
            self.mempool.insert(tx);
        }
        true
    }

    fn after_event(&mut self, event: &ChainEvent, old_tip: Hash256) {
        match event {
            ChainEvent::Extended { block } => {
                self.note_included(block);
            }
            ChainEvent::Reorg { reverted, .. } => {
                // Collect transactions from the abandoned branch so they can
                // return to the mempool if the new branch lacks them.
                let mut abandoned: Vec<Arc<Transaction>> = Vec::new();
                let mut cur = old_tip;
                for _ in 0..*reverted {
                    let sb = self.chain.tree().get(&cur).expect("old branch stored");
                    for tx in &sb.block.txs {
                        if !matches!(tx, Transaction::Coinbase { .. }) {
                            abandoned.push(Arc::new(tx.clone()));
                        }
                    }
                    cur = sb.block.header.parent;
                }
                // Rebuild the included set from the new canonical chain.
                self.included.clear();
                let canonical: Vec<Hash256> = self.chain.canonical().to_vec();
                for h in canonical {
                    let hash = h;
                    self.note_included(&hash);
                }
                for tx in abandoned {
                    let id = tx.id();
                    if !self.included.contains(&id) {
                        self.mempool.insert(tx);
                    }
                }
            }
            ChainEvent::SideChain { .. } | ChainEvent::Orphaned => {}
        }
    }

    fn note_included(&mut self, block_hash: &Hash256) {
        let ids: Vec<Hash256> = self
            .chain
            .tree()
            .get(block_hash)
            .expect("canonical block stored")
            .block
            .txs
            .iter()
            .map(Transaction::id)
            .collect();
        self.mempool.remove_all(ids.iter());
        self.included.extend(ids);
    }

    /// Assembles a new block on the current tip: selects mempool
    /// transactions, prepends a coinbase claiming the block reward plus
    /// offered fees, and stamps the given seal and time.
    pub fn build_block(&mut self, seal: Seal, now: SimTime) -> Arc<Block> {
        self.build_block_with(seal, now, true)
    }

    /// Like [`NodeCore::build_block`], but can skip mempool transactions
    /// entirely (`include_txs = false`) — Bitcoin-NG key blocks carry only
    /// their coinbase.
    pub fn build_block_with(&mut self, seal: Seal, now: SimTime, include_txs: bool) -> Arc<Block> {
        let parent = self.chain.tip_hash();
        let height = self.chain.height() + 1;
        let limit = self.chain.config().block_tx_limit;
        let mut txs = if include_txs {
            let included = &self.included;
            self.mempool.select(limit.saturating_sub(1), included)
        } else {
            Vec::new()
        };
        let fees: u64 = txs.iter().map(Transaction::offered_fee).sum();
        let reward = self.chain.config().block_reward;
        let mut body = Vec::with_capacity(txs.len() + 1);
        body.push(Transaction::Coinbase {
            to: self.address,
            value: reward + fees,
            height,
        });
        body.append(&mut txs);
        let header = BlockHeader::new(parent, height, now.as_micros(), self.address, seal);
        self.blocks_produced += 1;
        Arc::new(Block::new(header, body))
    }

    /// Transactions committed on the canonical chain (excluding coinbases) —
    /// the numerator of every throughput metric.
    pub fn committed_tx_count(&self) -> u64 {
        self.chain
            .canonical()
            .iter()
            .map(|h| {
                self.chain
                    .tree()
                    .get(h)
                    .expect("canonical stored")
                    .block
                    .txs
                    .iter()
                    .filter(|t| !matches!(t, Transaction::Coinbase { .. }))
                    .count() as u64
            })
            .sum()
    }
}
