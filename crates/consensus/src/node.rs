//! The peer core shared by every consensus protocol: a [`Chain`] replica, a
//! [`Mempool`], gossip dedup tables, block assembly, and the bookkeeping
//! that returns reverted transactions to the pool after reorgs. Individual
//! protocols (`pow`, `pos`, …) wrap a `NodeCore` and add their proposal
//! logic.

use crate::mempool::{InsertOutcome, Mempool};
use crate::{wire_size, WireMsg};
use dcs_chain::{Chain, ChainEvent, StateMachine};
use dcs_crypto::{Address, Hash256};
use dcs_net::{Ctx, Gossiper, NodeId};
use dcs_primitives::{Block, BlockHeader, ChainConfig, Seal, Transaction};
use dcs_sim::SimTime;
use dcs_trace::{EntityKind, Id as TraceId, RejectReason, TraceConfig, TraceEvent, Tracer, ORIGIN};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Shared per-peer machinery.
#[derive(Debug)]
pub struct NodeCore<M: StateMachine> {
    /// This peer's network identity.
    pub id: NodeId,
    /// This peer's reward address.
    pub address: Address,
    /// The local chain replica.
    pub chain: Chain<M>,
    /// Pending client transactions.
    pub mempool: Mempool,
    /// Blocks produced by this peer.
    pub blocks_produced: u64,
    /// Gossiped blocks this peer rejected at import (bad seal, height,
    /// root, …). A spike across peers is an invalid-block storm.
    pub rejected_blocks: u64,
    /// Broken internal invariants survived at runtime (e.g. a reorg walk
    /// hitting a missing stored block). Always 0 in a healthy run; counted
    /// instead of panicking so a bad peer input can never abort the peer.
    pub internal_errors: u64,
    /// This peer's tracer (consensus-layer events: gossip sightings,
    /// mempool admissions, proposals). Disabled by default; install with
    /// [`NodeCore::set_tracing`].
    pub tracer: Tracer,
    seen: Gossiper,
    included: BTreeSet<Hash256>,
}

impl<M: StateMachine> NodeCore<M> {
    /// Builds a peer core over a fresh chain replica.
    pub fn new(
        id: NodeId,
        address: Address,
        genesis: Block,
        config: ChainConfig,
        machine: M,
    ) -> Self {
        NodeCore {
            id,
            address,
            chain: Chain::new(genesis, config, machine),
            mempool: Mempool::new(100_000),
            blocks_produced: 0,
            rejected_blocks: 0,
            internal_errors: 0,
            tracer: Tracer::disabled(),
            seen: Gossiper::new(),
            included: BTreeSet::new(),
        }
    }

    /// Installs tracing on this peer: one tracer here (consensus events)
    /// and one on the chain replica (import/reorg/finality events), both
    /// emitting as this peer's id.
    pub fn set_tracing(&mut self, cfg: &TraceConfig) {
        let node = self.id.0 as u32;
        self.tracer = Tracer::new(node, cfg);
        self.chain.set_tracer(Tracer::new(node, cfg));
    }

    /// Transaction ids currently on this peer's canonical chain.
    pub fn included(&self) -> &BTreeSet<Hash256> {
        &self.included
    }

    /// Imports a block into the local replica and performs the
    /// mempool/`included` maintenance for the resulting event. Errors are
    /// counted in [`NodeCore::rejected_blocks`] rather than silently
    /// dropped. This is [`NodeCore::handle_block`] minus the network I/O,
    /// usable without a live simulation context.
    pub fn ingest_block(&mut self, block: Arc<Block>) -> Option<ChainEvent> {
        self.ingest_block_at(block, SimTime::ZERO)
    }

    /// [`NodeCore::ingest_block`] with an explicit sim time, so chain and
    /// inclusion trace events carry the real timestamp (with tracing off
    /// the time is unused).
    pub fn ingest_block_at(&mut self, block: Arc<Block>, now: SimTime) -> Option<ChainEvent> {
        let old_tip = self.chain.tip_hash();
        let event = match self.chain.import_at(block, now.as_micros()) {
            Ok(ev) => ev,
            Err(_) => {
                self.rejected_blocks += 1;
                return None;
            }
        };
        self.after_event(&event, old_tip, now);
        Some(event)
    }

    /// Handles an incoming (or self-produced) block: dedup, re-gossip,
    /// import, mempool/included maintenance. `from` is `None` for blocks
    /// this peer produced itself. Returns the chain event if the block was
    /// new and imported. The `Arc` is shared with the chain's store — the
    /// block is never deep-copied on this path.
    pub fn handle_block(
        &mut self,
        block: Arc<Block>,
        from: Option<NodeId>,
        ctx: &mut Ctx<'_, WireMsg>,
    ) -> Option<ChainEvent> {
        let hash = block.hash();
        if !self.seen.first_sight(hash) {
            return None;
        }
        self.tracer.emit(
            ctx.now.as_micros(),
            TraceEvent::FirstSeen {
                kind: EntityKind::Block,
                id: TraceId(hash.into_bytes()),
                from: from.map_or(ORIGIN, |n| n.0 as u32),
            },
        );
        let msg = WireMsg::Block(Arc::clone(&block));
        let size = wire_size(&msg);
        match from {
            Some(sender) => ctx.broadcast_except(sender, msg, size),
            None => ctx.broadcast(msg, size),
        }
        let parent = block.header.parent;
        let event = self.ingest_block_at(block, ctx.now)?;
        if let (ChainEvent::Orphaned, Some(sender)) = (&event, from) {
            // Missing ancestry (e.g. after a healed partition): walk it back
            // one hop at a time from whoever showed us the descendant.
            let req = WireMsg::BlockRequest(parent);
            let size = wire_size(&req);
            ctx.send(sender, req, size);
        }
        Some(event)
    }

    /// Serves a sync request: if we hold `hash` with its body resident
    /// (a pruning node may have dropped it), send the block straight back
    /// to the asker — a refcount bump on the stored `Arc`, not a copy.
    pub fn handle_block_request(
        &mut self,
        hash: Hash256,
        from: NodeId,
        ctx: &mut Ctx<'_, WireMsg>,
    ) {
        if let Some(body) = self.chain.tree().get(&hash).and_then(|sb| sb.body()) {
            let msg = WireMsg::Block(Arc::clone(body));
            let size = wire_size(&msg);
            ctx.send(from, msg, size);
        }
    }

    /// Handles an incoming (or locally submitted) transaction: dedup,
    /// re-gossip, mempool insertion. Returns true if the tx was new.
    pub fn handle_tx(
        &mut self,
        tx: Arc<Transaction>,
        from: Option<NodeId>,
        ctx: &mut Ctx<'_, WireMsg>,
    ) -> bool {
        let id = tx.id();
        if !self.seen.first_sight(id) {
            return false;
        }
        self.tracer.emit(
            ctx.now.as_micros(),
            TraceEvent::FirstSeen {
                kind: EntityKind::Tx,
                id: TraceId(id.into_bytes()),
                from: from.map_or(ORIGIN, |n| n.0 as u32),
            },
        );
        let msg = WireMsg::Tx(tx.clone());
        let size = wire_size(&msg);
        match from {
            Some(sender) => ctx.broadcast_except(sender, msg, size),
            None => ctx.broadcast(msg, size),
        }
        if !self.included.contains(&id) {
            let outcome = self.mempool.insert_outcome(tx);
            if self.tracer.is_enabled() {
                let tx = TraceId(id.into_bytes());
                let event = match outcome {
                    InsertOutcome::Added => TraceEvent::TxAdmitted { tx },
                    InsertOutcome::Duplicate => TraceEvent::TxRejected {
                        tx,
                        reason: RejectReason::Duplicate,
                    },
                    InsertOutcome::Full => TraceEvent::TxRejected {
                        tx,
                        reason: RejectReason::Full,
                    },
                    InsertOutcome::BadWitness => TraceEvent::TxRejected {
                        tx,
                        reason: RejectReason::BadWitness,
                    },
                };
                self.tracer.emit(ctx.now.as_micros(), event);
            }
        }
        true
    }

    fn after_event(&mut self, event: &ChainEvent, old_tip: Hash256, now: SimTime) {
        match event {
            ChainEvent::Extended { block } => {
                self.note_included(block, now);
            }
            ChainEvent::Reorg {
                reverted,
                applied,
                new_tip,
            } => {
                // Shed the abandoned branch: collect its transactions so
                // they can return to the mempool, and drop their ids from
                // `included`. O(reverted), not O(chain).
                let mut abandoned: Vec<Arc<Transaction>> = Vec::new();
                let mut cur = old_tip;
                for _ in 0..*reverted {
                    let Some(stored) = self.chain.tree().get(&cur) else {
                        // The reverted branch must be stored; a miss is a
                        // broken invariant — count it and salvage the rest.
                        self.internal_errors += 1;
                        break;
                    };
                    let block = Arc::clone(stored.block());
                    cur = block.header.parent;
                    for tx in &block.txs {
                        if !matches!(tx, Transaction::Coinbase { .. }) {
                            self.included.remove(&tx.id());
                            abandoned.push(Arc::new(tx.clone()));
                        }
                    }
                }
                // Absorb the new branch (walked tip-backwards, noted in
                // chain order).
                let mut new_blocks = Vec::with_capacity(*applied as usize);
                let mut cur = *new_tip;
                for _ in 0..*applied {
                    new_blocks.push(cur);
                    match self.chain.tree().get(&cur) {
                        Some(stored) => cur = stored.header().parent,
                        None => {
                            self.internal_errors += 1;
                            break;
                        }
                    }
                }
                for hash in new_blocks.iter().rev() {
                    self.note_included(hash, now);
                }
                // Abandoned transactions not re-included on the new branch
                // go back to the mempool.
                for tx in abandoned {
                    let id = tx.id();
                    if !self.included.contains(&id) {
                        self.mempool.insert(tx);
                    }
                }
            }
            ChainEvent::SideChain { .. } | ChainEvent::Orphaned => {}
        }
    }

    fn note_included(&mut self, block_hash: &Hash256, now: SimTime) {
        let Some(stored) = self.chain.tree().get(block_hash) else {
            self.internal_errors += 1;
            return;
        };
        if self.tracer.is_enabled() {
            let block = TraceId(block_hash.into_bytes());
            for tx in &stored.block().txs {
                if !matches!(tx, Transaction::Coinbase { .. }) {
                    self.tracer.emit(
                        now.as_micros(),
                        TraceEvent::TxIncluded {
                            tx: TraceId(tx.id().into_bytes()),
                            block,
                        },
                    );
                }
            }
        }
        let ids: Vec<Hash256> = stored.block().txs.iter().map(Transaction::id).collect();
        self.mempool.remove_all(ids.iter());
        self.included.extend(ids);
    }

    /// Assembles a new block on the current tip: selects mempool
    /// transactions, prepends a coinbase claiming the block reward plus
    /// offered fees, and stamps the given seal and time.
    pub fn build_block(&mut self, seal: Seal, now: SimTime) -> Arc<Block> {
        self.build_block_with(seal, now, true)
    }

    /// Like [`NodeCore::build_block`], but can skip mempool transactions
    /// entirely (`include_txs = false`) — Bitcoin-NG key blocks carry only
    /// their coinbase.
    pub fn build_block_with(&mut self, seal: Seal, now: SimTime, include_txs: bool) -> Arc<Block> {
        let parent = self.chain.tip_hash();
        let height = self.chain.height() + 1;
        let limit = self.chain.config().block_tx_limit;
        let mut txs = if include_txs {
            let included = &self.included;
            self.mempool.select(limit.saturating_sub(1), included)
        } else {
            Vec::new()
        };
        let fees: u64 = txs.iter().map(Transaction::offered_fee).sum();
        let reward = self.chain.config().block_reward;
        let mut body = Vec::with_capacity(txs.len() + 1);
        body.push(Transaction::Coinbase {
            to: self.address,
            value: reward + fees,
            height,
        });
        body.append(&mut txs);
        let header = BlockHeader::new(parent, height, now.as_micros(), self.address, seal);
        self.blocks_produced += 1;
        let block = Arc::new(Block::new(header, body));
        if self.tracer.is_enabled() {
            self.tracer.emit(
                now.as_micros(),
                TraceEvent::BlockProposed {
                    block: TraceId(block.hash().into_bytes()),
                    height,
                    txs: (block.txs.len().saturating_sub(1)).min(u32::MAX as usize) as u32,
                },
            );
        }
        block
    }

    /// Transactions committed on the canonical chain (excluding coinbases) —
    /// the numerator of every throughput metric. O(1): maintained
    /// incrementally by the chain on every apply/revert.
    pub fn committed_tx_count(&self) -> u64 {
        self.chain.canon_stats().committed_txs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_chain::NullMachine;
    use dcs_primitives::AccountTx;

    fn tx(v: u64) -> Transaction {
        Transaction::Account(AccountTx::transfer(
            Address::from_index(1),
            Address::from_index(2),
            v,
            v, // nonce: make each tx unique
        ))
    }

    fn block_on(parent: &Block, salt: u64, txs: Vec<Transaction>) -> Arc<Block> {
        Arc::new(Block::new(
            BlockHeader::new(
                parent.hash(),
                parent.header.height + 1,
                salt,
                Address::from_index(salt),
                Seal::None,
            ),
            txs,
        ))
    }

    fn new_node() -> (NodeCore<NullMachine>, Block) {
        let cfg = ChainConfig::bitcoin_like();
        let genesis = dcs_chain::genesis_block(&cfg);
        let node = NodeCore::new(
            NodeId(0),
            Address::from_index(0),
            genesis.clone(),
            cfg,
            NullMachine,
        );
        (node, genesis)
    }

    /// The canonical-chain tx set above genesis, recomputed the slow way.
    fn included_recomputed(node: &NodeCore<NullMachine>) -> BTreeSet<Hash256> {
        node.chain
            .canonical()
            .iter()
            .skip(1)
            .flat_map(|h| {
                node.chain
                    .tree()
                    .get(h)
                    .unwrap()
                    .block()
                    .txs
                    .iter()
                    .map(Transaction::id)
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    #[test]
    fn reorg_returns_abandoned_txs_to_mempool_exactly_when_absent_from_new_branch() {
        let (mut node, g) = new_node();
        let shared = tx(1); // ends up on both branches
        let only_old = tx(2); // only on the abandoned branch
        let only_new = tx(3); // only on the winning branch

        // Old branch: g → a1 carrying {shared, only_old}.
        let a1 = block_on(&g, 1, vec![shared.clone(), only_old.clone()]);
        assert!(matches!(
            node.ingest_block(Arc::clone(&a1)),
            Some(ChainEvent::Extended { .. })
        ));
        assert!(node.included().contains(&shared.id()));

        // New branch: g → b1 {shared} → b2 {only_new} wins by length.
        let b1 = block_on(&g, 10, vec![shared.clone()]);
        let b2 = block_on(&b1, 11, vec![only_new.clone()]);
        node.ingest_block(Arc::clone(&b1)).unwrap();
        let ev = node.ingest_block(Arc::clone(&b2)).unwrap();
        assert!(matches!(
            ev,
            ChainEvent::Reorg {
                reverted: 1,
                applied: 2,
                ..
            }
        ));

        // `only_old` was abandoned and is absent from the new branch → back
        // in the mempool. `shared` is on the new branch → not restored.
        assert!(
            node.mempool.contains(&only_old.id()),
            "abandoned tx restored"
        );
        assert!(
            !node.mempool.contains(&shared.id()),
            "re-included tx not restored"
        );
        assert!(!node.mempool.contains(&only_new.id()));
        assert_eq!(node.included(), &included_recomputed(&node));
        assert_eq!(node.committed_tx_count(), 2); // shared + only_new
    }

    #[test]
    fn included_matches_canonical_after_multi_block_reorg() {
        let (mut node, g) = new_node();
        // Old branch of depth 3 with distinct txs per block.
        let a1 = block_on(&g, 1, vec![tx(10)]);
        let a2 = block_on(&a1, 2, vec![tx(11), tx(12)]);
        let a3 = block_on(&a2, 3, vec![tx(13)]);
        for b in [&a1, &a2, &a3] {
            node.ingest_block(Arc::clone(b)).unwrap();
        }
        assert_eq!(node.committed_tx_count(), 4);

        // New branch of depth 4 sharing one tx with the old branch.
        let b1 = block_on(&g, 20, vec![tx(11)]);
        let b2 = block_on(&b1, 21, vec![tx(20)]);
        let b3 = block_on(&b2, 22, vec![]);
        let b4 = block_on(&b3, 23, vec![tx(21)]);
        for b in [&b1, &b2, &b3] {
            node.ingest_block(Arc::clone(b)).unwrap();
        }
        let ev = node.ingest_block(Arc::clone(&b4)).unwrap();
        assert!(matches!(
            ev,
            ChainEvent::Reorg {
                reverted: 3,
                applied: 4,
                ..
            }
        ));

        assert_eq!(
            node.included(),
            &included_recomputed(&node),
            "included ≡ canonical"
        );
        assert_eq!(node.committed_tx_count(), 3); // 11, 20, 21
                                                  // Abandoned-only txs restored; the shared one (11) not.
        for v in [10, 12, 13] {
            assert!(node.mempool.contains(&tx(v).id()), "tx {v} restored");
        }
        assert!(!node.mempool.contains(&tx(11).id()));
    }

    #[test]
    fn rejected_blocks_are_counted() {
        let (mut node, g) = new_node();
        let mut bad = (*block_on(&g, 1, vec![])).clone();
        bad.header.height = 7; // wrong height for a child of genesis
        let bad = Arc::new(Block::new(bad.header, vec![]));
        assert!(node.ingest_block(bad).is_none());
        assert_eq!(node.rejected_blocks, 1);
        // Duplicates count too: gossip dedup normally filters them, but a
        // direct re-ingest is an import error.
        let a1 = block_on(&g, 1, vec![]);
        node.ingest_block(Arc::clone(&a1)).unwrap();
        assert!(node.ingest_block(a1).is_none());
        assert_eq!(node.rejected_blocks, 2);
    }

    #[test]
    fn ingest_shares_the_arc_with_the_store() {
        let (mut node, g) = new_node();
        let a1 = block_on(&g, 1, vec![tx(1)]);
        node.ingest_block(Arc::clone(&a1)).unwrap();
        assert!(Arc::ptr_eq(
            node.chain.tree().get(&a1.hash()).unwrap().block(),
            &a1
        ));
    }
}
