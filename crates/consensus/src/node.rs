//! The peer core shared by every consensus protocol: a [`Chain`] replica, a
//! [`Mempool`], gossip dedup tables, block assembly, and the bookkeeping
//! that returns reverted transactions to the pool after reorgs. Individual
//! protocols (`pow`, `pos`, …) wrap a `NodeCore` and add their proposal
//! logic.

use crate::mempool::{InsertOutcome, Mempool};
use crate::{wire_size, WireMsg};
use dcs_chain::{ArchivalStore, BlockStore, Chain, ChainEvent, StateMachine};
use dcs_crypto::{Address, Hash256};
use dcs_net::{Ctx, Gossiper, NodeId, Protocol};
use dcs_primitives::{Block, BlockHeader, ChainConfig, Seal, SealedTx, Transaction};
use dcs_sim::{SimDuration, SimTime};
use dcs_trace::{EntityKind, Id as TraceId, RejectReason, TraceConfig, TraceEvent, Tracer, ORIGIN};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Mempool capacity of every peer core.
const MEMPOOL_CAP: usize = 100_000;

/// Timer-tag namespace for the sync retry timers, in the same
/// `kind << 40` scheme the protocols use. The high byte is `0x5C` so a
/// sync tag can never collide with PBFT/NG kinds (`1 << 40`, `2 << 40`) or
/// with the raw epoch counters PoW and PoET use (small integers).
pub const TAG_SYNC: u64 = 0x5C << 40;

const TAG_KIND_MASK: u64 = 0xff << 40;

/// True if `tag` belongs to the [`NodeCore`] sync machinery. Protocols
/// route these to [`NodeCore::handle_sync_timer`] before their own timer
/// decoding.
pub fn is_sync_tag(tag: u64) -> bool {
    tag & TAG_KIND_MASK == TAG_SYNC
}

/// Base retry backoff for lost sync requests (doubles per attempt).
const SYNC_RETRY_BASE_US: u64 = 500_000;
/// Give up on a sync target after this many retries (round-robin over
/// neighbors); normal gossip remains as the recovery path of last resort.
const MAX_SYNC_ATTEMPTS: u32 = 8;
/// Blocks per catch-up response batch.
const SYNC_BATCH: usize = 32;

/// One in-flight sync request: which epoch its retry timer carries and how
/// many times it has been (re)sent.
#[derive(Debug, Clone, Copy)]
struct SyncAttempt {
    epoch: u64,
    attempts: u32,
}

/// Crash/restart hooks for protocols that support fail-stop recovery. The
/// fault driver calls [`Recoverable::on_crash`] when a node fail-stops and
/// [`Recoverable::on_restart`] when it comes back; the restart path is
/// expected to cold-rebuild the peer from its block store and start the
/// catch-up sync protocol.
pub trait Recoverable: Protocol<Msg = WireMsg> {
    /// The node fail-stops: settle any in-progress accounting. No actions
    /// the implementation emits will be delivered to the node itself (the
    /// fabric suppresses them), but sends to peers still go out, so
    /// implementations should emit nothing.
    fn on_crash(&mut self, ctx: &mut Ctx<'_, WireMsg>);

    /// The node restarts: rebuild volatile state from the durable block
    /// store, re-arm protocol timers, and begin catch-up sync.
    fn on_restart(&mut self, ctx: &mut Ctx<'_, WireMsg>);
}

/// Shared per-peer machinery, generic over the chain's record backend
/// (archival by default).
#[derive(Debug)]
pub struct NodeCore<M: StateMachine, S: BlockStore = ArchivalStore> {
    /// This peer's network identity.
    pub id: NodeId,
    /// This peer's reward address.
    pub address: Address,
    /// The local chain replica.
    pub chain: Chain<M, S>,
    /// Pending client transactions.
    pub mempool: Mempool,
    /// Blocks produced by this peer.
    pub blocks_produced: u64,
    /// Gossiped blocks this peer rejected at import (bad seal, height,
    /// root, …). A spike across peers is an invalid-block storm.
    pub rejected_blocks: u64,
    /// Broken internal invariants survived at runtime (e.g. a reorg walk
    /// hitting a missing stored block). Always 0 in a healthy run; counted
    /// instead of panicking so a bad peer input can never abort the peer.
    pub internal_errors: u64,
    /// Sync requests re-sent after a lost request or reply (retry timers
    /// fired, `BlockNotFound` re-targets). Zero on a loss-free network.
    pub sync_retries: u64,
    /// Catch-up rounds started (one per [`NodeCore::begin_catchup`] call,
    /// including the follow-up pages of a multi-batch catch-up).
    pub catchup_rounds: u64,
    /// This peer's tracer (consensus-layer events: gossip sightings,
    /// mempool admissions, proposals). Disabled by default; install with
    /// [`NodeCore::set_tracing`].
    pub tracer: Tracer,
    seen: Gossiper,
    included: BTreeSet<Hash256>,
    /// Missing-ancestor requests awaiting a reply, keyed by block hash.
    pending_blocks: BTreeMap<Hash256, SyncAttempt>,
    /// The in-flight catch-up range request, if any.
    catchup: Option<SyncAttempt>,
    /// Monotonic epoch distinguishing live sync timers from stale ones.
    sync_epoch: u64,
}

impl<M: StateMachine> NodeCore<M> {
    /// Builds a peer core over a fresh archival chain replica.
    pub fn new(
        id: NodeId,
        address: Address,
        genesis: Block,
        config: ChainConfig,
        machine: M,
    ) -> Self {
        Self::with_store(
            id,
            address,
            genesis,
            config,
            machine,
            ArchivalStore::default(),
        )
    }
}

impl<M: StateMachine, S: BlockStore> NodeCore<M, S> {
    /// Builds a peer core over the given record backend.
    pub fn with_store(
        id: NodeId,
        address: Address,
        genesis: Block,
        config: ChainConfig,
        machine: M,
        store: S,
    ) -> Self {
        NodeCore {
            id,
            address,
            chain: Chain::with_store(genesis, config, machine, store),
            mempool: Mempool::new(MEMPOOL_CAP),
            blocks_produced: 0,
            rejected_blocks: 0,
            internal_errors: 0,
            sync_retries: 0,
            catchup_rounds: 0,
            tracer: Tracer::disabled(),
            seen: Gossiper::new(),
            included: BTreeSet::new(),
            pending_blocks: BTreeMap::new(),
            catchup: None,
            sync_epoch: 0,
        }
    }

    /// Installs tracing on this peer: one tracer here (consensus events)
    /// and one on the chain replica (import/reorg/finality events), both
    /// emitting as this peer's id.
    pub fn set_tracing(&mut self, cfg: &TraceConfig) {
        let node = self.id.0 as u32;
        self.tracer = Tracer::new(node, cfg);
        self.chain.set_tracer(Tracer::new(node, cfg));
    }

    /// Installs live metrics on this peer: chain head/import series on the
    /// replica and admission/depth series on the mempool, all labeled with
    /// this peer's id. Updates are relaxed atomic bumps beside decisions
    /// that have already been taken, so an instrumented peer behaves
    /// bit-identically to a bare one (asserted in `tests/determinism.rs`).
    pub fn set_metrics(&mut self, registry: &dcs_metrics::Registry) {
        let node = self.id.0.to_string();
        self.chain
            .set_metrics(dcs_chain::ChainMetrics::register(registry, &node));
        self.mempool
            .set_metrics(crate::MempoolMetrics::register(registry, &node));
    }

    /// Transaction ids currently on this peer's canonical chain.
    pub fn included(&self) -> &BTreeSet<Hash256> {
        &self.included
    }

    /// Imports a block into the local replica and performs the
    /// mempool/`included` maintenance for the resulting event. Errors are
    /// counted in [`NodeCore::rejected_blocks`] rather than silently
    /// dropped. This is [`NodeCore::handle_block`] minus the network I/O,
    /// usable without a live simulation context.
    pub fn ingest_block(&mut self, block: Arc<Block>) -> Option<ChainEvent> {
        self.ingest_block_at(block, SimTime::ZERO)
    }

    /// [`NodeCore::ingest_block`] with an explicit sim time, so chain and
    /// inclusion trace events carry the real timestamp (with tracing off
    /// the time is unused).
    pub fn ingest_block_at(&mut self, block: Arc<Block>, now: SimTime) -> Option<ChainEvent> {
        let old_tip = self.chain.tip_hash();
        let event = match self.chain.import_at(block, now.as_micros()) {
            Ok(ev) => ev,
            Err(_) => {
                self.rejected_blocks += 1;
                return None;
            }
        };
        self.after_event(&event, old_tip, now);
        Some(event)
    }

    /// Handles an incoming (or self-produced) block: dedup, re-gossip,
    /// import, mempool/included maintenance. `from` is `None` for blocks
    /// this peer produced itself. Returns the chain event if the block was
    /// new and imported. The `Arc` is shared with the chain's store — the
    /// block is never deep-copied on this path.
    pub fn handle_block(
        &mut self,
        block: Arc<Block>,
        from: Option<NodeId>,
        ctx: &mut Ctx<'_, WireMsg>,
    ) -> Option<ChainEvent> {
        let hash = block.hash();
        if !self.seen.first_sight(hash) {
            return None;
        }
        self.tracer.emit(
            ctx.now.as_micros(),
            TraceEvent::FirstSeen {
                kind: EntityKind::Block,
                id: TraceId(hash.into_bytes()),
                from: from.map_or(ORIGIN, |n| n.0 as u32),
            },
        );
        let msg = WireMsg::Block(Arc::clone(&block));
        let size = wire_size(&msg);
        match from {
            Some(sender) => ctx.broadcast_except(sender, msg, size),
            None => ctx.broadcast(msg, size),
        }
        let parent = block.header.parent;
        // However the block arrived, it satisfies any outstanding request.
        self.pending_blocks.remove(&hash);
        let event = self.ingest_block_at(block, ctx.now)?;
        if let (ChainEvent::Orphaned, Some(sender)) = (&event, from) {
            // Missing ancestry (e.g. after a healed partition): walk it back
            // one hop at a time from whoever showed us the descendant, with
            // a bounded retry timer so a lost request or reply cannot stall
            // this branch forever.
            self.request_block(parent, sender, ctx);
        }
        Some(event)
    }

    /// Sends a [`WireMsg::BlockRequest`] for `hash` to `peer` and arms a
    /// backoff retry timer. No-op if the block is already stored or already
    /// requested.
    pub fn request_block(&mut self, hash: Hash256, peer: NodeId, ctx: &mut Ctx<'_, WireMsg>) {
        if self.chain.tree().contains(&hash) || self.pending_blocks.contains_key(&hash) {
            return;
        }
        let req = WireMsg::BlockRequest(hash);
        let size = wire_size(&req);
        ctx.send(peer, req, size);
        let epoch = self.arm_sync_timer(0, ctx);
        self.pending_blocks
            .insert(hash, SyncAttempt { epoch, attempts: 0 });
    }

    /// Serves a sync request: if we hold `hash` with its body resident,
    /// send the block straight back to the asker — a refcount bump on the
    /// stored `Arc`, not a copy. Otherwise (unknown hash, or a pruning
    /// node dropped the body) reply [`WireMsg::BlockNotFound`] so the
    /// asker re-targets another peer instead of waiting forever.
    pub fn handle_block_request(
        &mut self,
        hash: Hash256,
        from: NodeId,
        ctx: &mut Ctx<'_, WireMsg>,
    ) {
        if let Some(body) = self.chain.tree().get(&hash).and_then(|sb| sb.body()) {
            let msg = WireMsg::Block(Arc::clone(body));
            let size = wire_size(&msg);
            ctx.send(from, msg, size);
        } else {
            let msg = WireMsg::BlockNotFound(hash);
            let size = wire_size(&msg);
            ctx.send(from, msg, size);
        }
    }

    /// Handles a negative sync reply: immediately re-target the request at
    /// the next neighbor (round-robin) instead of waiting out the retry
    /// timer.
    pub fn handle_block_not_found(
        &mut self,
        hash: Hash256,
        _from: NodeId,
        ctx: &mut Ctx<'_, WireMsg>,
    ) {
        if self.pending_blocks.contains_key(&hash) {
            self.retry_block_request(hash, ctx);
        }
    }

    /// Starts (or restarts) catch-up sync: sends a locator-based range
    /// request to the first neighbor and arms the retry timer. The reply
    /// handler keeps paging until this replica reaches the responder's
    /// tip.
    pub fn begin_catchup(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        let Some(&peer) = ctx.neighbors.first() else {
            return;
        };
        self.send_catchup_request(peer, 0, ctx);
    }

    fn send_catchup_request(&mut self, peer: NodeId, attempts: u32, ctx: &mut Ctx<'_, WireMsg>) {
        self.catchup_rounds += 1;
        let msg = WireMsg::SyncRequest {
            locator: self.chain.locator(),
        };
        let size = wire_size(&msg);
        ctx.send(peer, msg, size);
        let epoch = self.arm_sync_timer(attempts, ctx);
        self.catchup = Some(SyncAttempt { epoch, attempts });
    }

    /// Serves a catch-up range request with a bounded batch of canonical
    /// blocks above the best locator match.
    pub fn handle_sync_request(
        &mut self,
        locator: &[Hash256],
        from: NodeId,
        ctx: &mut Ctx<'_, WireMsg>,
    ) {
        let (blocks, tip_height) = self.chain.blocks_after(locator, SYNC_BATCH);
        let msg = WireMsg::SyncResponse { blocks, tip_height };
        let size = wire_size(&msg);
        ctx.send(from, msg, size);
    }

    /// Ingests a catch-up batch. Blocks are imported without re-gossip
    /// (peers already have them) and marked seen so later gossip copies
    /// dedup. Returns true if the canonical tip advanced — protocols use
    /// this to restart mining/leadership on the new tip. Keeps paging from
    /// the same responder while still behind its tip; an empty reply from
    /// a peer that claims more history (it pruned the needed bodies)
    /// re-targets the next neighbor.
    pub fn handle_sync_response(
        &mut self,
        blocks: Vec<Arc<Block>>,
        tip_height: u64,
        from: NodeId,
        ctx: &mut Ctx<'_, WireMsg>,
    ) -> bool {
        let empty = blocks.is_empty();
        let mut advanced = false;
        for block in blocks {
            let hash = block.hash();
            self.pending_blocks.remove(&hash);
            self.seen.first_sight(hash);
            if self.chain.tree().contains(&hash) {
                continue;
            }
            let event = self.ingest_block_at(block, ctx.now);
            advanced |= matches!(
                event,
                Some(ChainEvent::Extended { .. } | ChainEvent::Reorg { .. })
            );
        }
        if self.catchup.is_some() {
            if self.chain.height() >= tip_height {
                self.catchup = None; // caught up to this responder's tip
            } else if empty {
                // The responder is ahead but served nothing (pruned
                // history): treat as a failed attempt and re-target.
                self.retry_catchup(ctx);
            } else {
                // Progress: page the next batch from the same responder.
                self.send_catchup_request(from, 0, ctx);
            }
        }
        advanced
    }

    /// Handles a sync-namespace timer: if the request it guards is still
    /// outstanding, re-send with doubled backoff to the next neighbor.
    /// Stale epochs (the reply arrived meanwhile) are ignored.
    pub fn handle_sync_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, WireMsg>) {
        let epoch = tag & !TAG_KIND_MASK;
        if let Some(c) = self.catchup {
            if c.epoch == epoch {
                self.retry_catchup(ctx);
                return;
            }
        }
        let hash = self
            .pending_blocks
            .iter()
            .find(|(_, a)| a.epoch == epoch)
            .map(|(h, _)| *h);
        if let Some(hash) = hash {
            self.retry_block_request(hash, ctx);
        }
    }

    fn retry_block_request(&mut self, hash: Hash256, ctx: &mut Ctx<'_, WireMsg>) {
        if self.chain.tree().contains(&hash) {
            self.pending_blocks.remove(&hash);
            return;
        }
        let Some(attempt) = self.pending_blocks.get(&hash).copied() else {
            return;
        };
        let attempts = attempt.attempts + 1;
        if attempts > MAX_SYNC_ATTEMPTS || ctx.neighbors.is_empty() {
            // Give up; gossip of a later descendant will re-trigger.
            self.pending_blocks.remove(&hash);
            return;
        }
        self.sync_retries += 1;
        let peer = ctx.neighbors[attempts as usize % ctx.neighbors.len()];
        let req = WireMsg::BlockRequest(hash);
        let size = wire_size(&req);
        ctx.send(peer, req, size);
        let epoch = self.arm_sync_timer(attempts, ctx);
        self.pending_blocks
            .insert(hash, SyncAttempt { epoch, attempts });
    }

    fn retry_catchup(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        let Some(attempt) = self.catchup else {
            return;
        };
        let attempts = attempt.attempts + 1;
        if attempts > MAX_SYNC_ATTEMPTS || ctx.neighbors.is_empty() {
            self.catchup = None;
            return;
        }
        self.sync_retries += 1;
        let peer = ctx.neighbors[attempts as usize % ctx.neighbors.len()];
        // send_catchup_request counts a round; a retry is the same round.
        self.catchup_rounds -= 1;
        self.send_catchup_request(peer, attempts, ctx);
    }

    /// Arms a sync retry timer with exponential backoff and returns its
    /// epoch.
    fn arm_sync_timer(&mut self, attempts: u32, ctx: &mut Ctx<'_, WireMsg>) -> u64 {
        self.sync_epoch += 1;
        let delay = SYNC_RETRY_BASE_US << attempts.min(6);
        ctx.set_timer(SimDuration::from_micros(delay), TAG_SYNC | self.sync_epoch);
        self.sync_epoch
    }

    /// Cold-rebuilds this peer from its durable block store — the restart
    /// path after a crash. The chain re-runs fork choice over the stored
    /// tree with a fresh `machine`; the mempool, gossip dedup tables, and
    /// inclusion index are volatile and re-derived (canonical blocks and
    /// their transactions are marked seen so catch-up traffic does not
    /// re-gossip old history). Lifetime counters survive. Rebuild errors
    /// land in [`NodeCore::internal_errors`] rather than aborting.
    pub fn rebuild_from_store(&mut self, machine: M) {
        if self.chain.rebuild_from_store(machine).is_err() {
            self.internal_errors += 1;
        }
        let mempool_metrics = self.mempool.metrics().cloned();
        let admission = self.mempool.admission().cloned();
        self.mempool = Mempool::new(MEMPOOL_CAP);
        if let Some(m) = mempool_metrics {
            self.mempool.set_metrics(m);
        }
        if let Some(p) = admission {
            self.mempool.set_admission(p);
        }
        self.seen = Gossiper::new();
        self.included.clear();
        self.pending_blocks.clear();
        self.catchup = None;
        let canonical: Vec<Hash256> = self.chain.canonical().to_vec();
        let mut tx_ids = Vec::new();
        for hash in canonical.iter().skip(1) {
            if let Some(body) = self.chain.tree().get(hash).and_then(|sb| sb.body()) {
                for (tx, id) in body.txs.iter().zip(body.tx_ids()) {
                    if !matches!(tx, Transaction::Coinbase { .. }) {
                        tx_ids.push(*id);
                    }
                }
            }
        }
        for hash in canonical.iter().skip(1) {
            self.seen.first_sight(*hash);
        }
        for id in tx_ids {
            self.seen.first_sight(id);
            self.included.insert(id);
        }
    }

    /// Handles an incoming (or locally submitted) transaction: dedup,
    /// re-gossip, mempool insertion. Returns true if the tx was new.
    /// The sealed transaction carries its content id, so this hot path —
    /// run once per peer per gossiped tx — never hashes the body.
    pub fn handle_tx(
        &mut self,
        tx: SealedTx,
        from: Option<NodeId>,
        ctx: &mut Ctx<'_, WireMsg>,
    ) -> bool {
        let id = tx.id();
        if !self.seen.first_sight(id) {
            return false;
        }
        self.tracer.emit(
            ctx.now.as_micros(),
            TraceEvent::FirstSeen {
                kind: EntityKind::Tx,
                id: TraceId(id.into_bytes()),
                from: from.map_or(ORIGIN, |n| n.0 as u32),
            },
        );
        let msg = WireMsg::Tx(tx.clone());
        let size = wire_size(&msg);
        match from {
            Some(sender) => ctx.broadcast_except(sender, msg, size),
            None => ctx.broadcast(msg, size),
        }
        if !self.included.contains(&id) {
            let outcome = self.mempool.insert_outcome(tx);
            if self.tracer.is_enabled() {
                let tx = TraceId(id.into_bytes());
                let event = match outcome {
                    InsertOutcome::Added => TraceEvent::TxAdmitted { tx },
                    InsertOutcome::Duplicate => TraceEvent::TxRejected {
                        tx,
                        reason: RejectReason::Duplicate,
                    },
                    InsertOutcome::Full => TraceEvent::TxRejected {
                        tx,
                        reason: RejectReason::Full,
                    },
                    InsertOutcome::BadWitness => TraceEvent::TxRejected {
                        tx,
                        reason: RejectReason::BadWitness,
                    },
                };
                self.tracer.emit(ctx.now.as_micros(), event);
            }
        }
        true
    }

    fn after_event(&mut self, event: &ChainEvent, old_tip: Hash256, now: SimTime) {
        match event {
            ChainEvent::Extended { block } => {
                self.note_included(block, now);
            }
            ChainEvent::Reorg {
                reverted,
                applied,
                new_tip,
            } => {
                // Shed the abandoned branch: collect its transactions so
                // they can return to the mempool, and drop their ids from
                // `included`. O(reverted), not O(chain).
                let mut abandoned: Vec<SealedTx> = Vec::new();
                let mut cur = old_tip;
                for _ in 0..*reverted {
                    let Some(stored) = self.chain.tree().get(&cur) else {
                        // The reverted branch must be stored; a miss is a
                        // broken invariant — count it and salvage the rest.
                        self.internal_errors += 1;
                        break;
                    };
                    let block = Arc::clone(stored.block());
                    cur = block.header.parent;
                    for (tx, id) in block.txs.iter().zip(block.tx_ids()) {
                        if !matches!(tx, Transaction::Coinbase { .. }) {
                            self.included.remove(id);
                            abandoned.push(SealedTx::from_parts(Arc::new(tx.clone()), *id));
                        }
                    }
                }
                // Absorb the new branch (walked tip-backwards, noted in
                // chain order).
                let mut new_blocks = Vec::with_capacity(*applied as usize);
                let mut cur = *new_tip;
                for _ in 0..*applied {
                    new_blocks.push(cur);
                    match self.chain.tree().get(&cur) {
                        Some(stored) => cur = stored.header().parent,
                        None => {
                            self.internal_errors += 1;
                            break;
                        }
                    }
                }
                for hash in new_blocks.iter().rev() {
                    self.note_included(hash, now);
                }
                // Abandoned transactions not re-included on the new branch
                // go back to the mempool.
                for tx in abandoned {
                    let id = tx.id();
                    if !self.included.contains(&id) {
                        self.mempool.insert(tx);
                    }
                }
            }
            ChainEvent::SideChain { .. } | ChainEvent::Orphaned => {}
        }
    }

    fn note_included(&mut self, block_hash: &Hash256, now: SimTime) {
        let Some(stored) = self.chain.tree().get(block_hash) else {
            self.internal_errors += 1;
            return;
        };
        // The id slice is cached in the block, and the `Arc` behind it is
        // shared network-wide by gossip: across all peers these ids are
        // computed once, not once per peer per commit.
        let block = Arc::clone(stored.block());
        let ids = block.tx_ids();
        if self.tracer.is_enabled() {
            let block_id = TraceId(block_hash.into_bytes());
            for (tx, id) in block.txs.iter().zip(ids) {
                if !matches!(tx, Transaction::Coinbase { .. }) {
                    self.tracer.emit(
                        now.as_micros(),
                        TraceEvent::TxIncluded {
                            tx: TraceId(id.into_bytes()),
                            block: block_id,
                        },
                    );
                }
            }
        }
        self.mempool.remove_all(block.txs.iter().zip(ids));
        self.included.extend(ids.iter().copied());
    }

    /// Assembles a new block on the current tip: selects mempool
    /// transactions, prepends a coinbase claiming the block reward plus
    /// offered fees, and stamps the given seal and time.
    pub fn build_block(&mut self, seal: Seal, now: SimTime) -> Arc<Block> {
        self.build_block_with(seal, now, true)
    }

    /// Like [`NodeCore::build_block`], but can skip mempool transactions
    /// entirely (`include_txs = false`) — Bitcoin-NG key blocks carry only
    /// their coinbase.
    pub fn build_block_with(&mut self, seal: Seal, now: SimTime, include_txs: bool) -> Arc<Block> {
        let parent = self.chain.tip_hash();
        let height = self.chain.height() + 1;
        let limit = self.chain.config().block_tx_limit;
        let selected = if include_txs {
            let included = &self.included;
            self.mempool.select(limit.saturating_sub(1), included)
        } else {
            Vec::new()
        };
        let fees: u64 = selected.iter().map(|t| t.offered_fee()).sum();
        let reward = self.chain.config().block_reward;
        // Selected transactions carry their ids from admission; only the
        // fresh coinbase is hashed here, and the assembled block starts
        // life with its id cache seeded — importers never re-hash bodies.
        let mut body = Vec::with_capacity(selected.len() + 1);
        let mut ids = Vec::with_capacity(selected.len() + 1);
        let coinbase = Transaction::Coinbase {
            to: self.address,
            value: reward + fees,
            height,
        };
        ids.push(coinbase.id());
        body.push(coinbase);
        for tx in selected {
            ids.push(tx.id());
            body.push((**tx.tx()).clone());
        }
        let header = BlockHeader::new(parent, height, now.as_micros(), self.address, seal);
        self.blocks_produced += 1;
        let block = Arc::new(Block::with_ids(header, body, ids));
        if self.tracer.is_enabled() {
            self.tracer.emit(
                now.as_micros(),
                TraceEvent::BlockProposed {
                    block: TraceId(block.hash().into_bytes()),
                    height,
                    txs: (block.txs.len().saturating_sub(1)).min(u32::MAX as usize) as u32,
                },
            );
        }
        block
    }

    /// Transactions committed on the canonical chain (excluding coinbases) —
    /// the numerator of every throughput metric. O(1): maintained
    /// incrementally by the chain on every apply/revert.
    pub fn committed_tx_count(&self) -> u64 {
        self.chain.canon_stats().committed_txs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_chain::NullMachine;
    use dcs_primitives::AccountTx;

    fn tx(v: u64) -> Transaction {
        Transaction::Account(AccountTx::transfer(
            Address::from_index(1),
            Address::from_index(2),
            v,
            v, // nonce: make each tx unique
        ))
    }

    fn block_on(parent: &Block, salt: u64, txs: Vec<Transaction>) -> Arc<Block> {
        Arc::new(Block::new(
            BlockHeader::new(
                parent.hash(),
                parent.header.height + 1,
                salt,
                Address::from_index(salt),
                Seal::None,
            ),
            txs,
        ))
    }

    fn new_node() -> (NodeCore<NullMachine>, Block) {
        let cfg = ChainConfig::bitcoin_like();
        let genesis = dcs_chain::genesis_block(&cfg);
        let node = NodeCore::new(
            NodeId(0),
            Address::from_index(0),
            genesis.clone(),
            cfg,
            NullMachine,
        );
        (node, genesis)
    }

    /// The canonical-chain tx set above genesis, recomputed the slow way.
    fn included_recomputed(node: &NodeCore<NullMachine>) -> BTreeSet<Hash256> {
        node.chain
            .canonical()
            .iter()
            .skip(1)
            .flat_map(|h| {
                node.chain
                    .tree()
                    .get(h)
                    .unwrap()
                    .block()
                    .txs
                    .iter()
                    .map(Transaction::id)
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    #[test]
    fn reorg_returns_abandoned_txs_to_mempool_exactly_when_absent_from_new_branch() {
        let (mut node, g) = new_node();
        let shared = tx(1); // ends up on both branches
        let only_old = tx(2); // only on the abandoned branch
        let only_new = tx(3); // only on the winning branch

        // Old branch: g → a1 carrying {shared, only_old}.
        let a1 = block_on(&g, 1, vec![shared.clone(), only_old.clone()]);
        assert!(matches!(
            node.ingest_block(Arc::clone(&a1)),
            Some(ChainEvent::Extended { .. })
        ));
        assert!(node.included().contains(&shared.id()));

        // New branch: g → b1 {shared} → b2 {only_new} wins by length.
        let b1 = block_on(&g, 10, vec![shared.clone()]);
        let b2 = block_on(&b1, 11, vec![only_new.clone()]);
        node.ingest_block(Arc::clone(&b1)).unwrap();
        let ev = node.ingest_block(Arc::clone(&b2)).unwrap();
        assert!(matches!(
            ev,
            ChainEvent::Reorg {
                reverted: 1,
                applied: 2,
                ..
            }
        ));

        // `only_old` was abandoned and is absent from the new branch → back
        // in the mempool. `shared` is on the new branch → not restored.
        assert!(
            node.mempool.contains(&only_old.id()),
            "abandoned tx restored"
        );
        assert!(
            !node.mempool.contains(&shared.id()),
            "re-included tx not restored"
        );
        assert!(!node.mempool.contains(&only_new.id()));
        assert_eq!(node.included(), &included_recomputed(&node));
        assert_eq!(node.committed_tx_count(), 2); // shared + only_new
    }

    #[test]
    fn included_matches_canonical_after_multi_block_reorg() {
        let (mut node, g) = new_node();
        // Old branch of depth 3 with distinct txs per block.
        let a1 = block_on(&g, 1, vec![tx(10)]);
        let a2 = block_on(&a1, 2, vec![tx(11), tx(12)]);
        let a3 = block_on(&a2, 3, vec![tx(13)]);
        for b in [&a1, &a2, &a3] {
            node.ingest_block(Arc::clone(b)).unwrap();
        }
        assert_eq!(node.committed_tx_count(), 4);

        // New branch of depth 4 sharing one tx with the old branch.
        let b1 = block_on(&g, 20, vec![tx(11)]);
        let b2 = block_on(&b1, 21, vec![tx(20)]);
        let b3 = block_on(&b2, 22, vec![]);
        let b4 = block_on(&b3, 23, vec![tx(21)]);
        for b in [&b1, &b2, &b3] {
            node.ingest_block(Arc::clone(b)).unwrap();
        }
        let ev = node.ingest_block(Arc::clone(&b4)).unwrap();
        assert!(matches!(
            ev,
            ChainEvent::Reorg {
                reverted: 3,
                applied: 4,
                ..
            }
        ));

        assert_eq!(
            node.included(),
            &included_recomputed(&node),
            "included ≡ canonical"
        );
        assert_eq!(node.committed_tx_count(), 3); // 11, 20, 21
                                                  // Abandoned-only txs restored; the shared one (11) not.
        for v in [10, 12, 13] {
            assert!(node.mempool.contains(&tx(v).id()), "tx {v} restored");
        }
        assert!(!node.mempool.contains(&tx(11).id()));
    }

    #[test]
    fn rejected_blocks_are_counted() {
        let (mut node, g) = new_node();
        let mut bad = (*block_on(&g, 1, vec![])).clone();
        bad.header.height = 7; // wrong height for a child of genesis
        let bad = Arc::new(Block::new(bad.header, vec![]));
        assert!(node.ingest_block(bad).is_none());
        assert_eq!(node.rejected_blocks, 1);
        // Duplicates count too: gossip dedup normally filters them, but a
        // direct re-ingest is an import error.
        let a1 = block_on(&g, 1, vec![]);
        node.ingest_block(Arc::clone(&a1)).unwrap();
        assert!(node.ingest_block(a1).is_none());
        assert_eq!(node.rejected_blocks, 2);
    }

    #[test]
    fn ingest_shares_the_arc_with_the_store() {
        let (mut node, g) = new_node();
        let a1 = block_on(&g, 1, vec![tx(1)]);
        node.ingest_block(Arc::clone(&a1)).unwrap();
        assert!(Arc::ptr_eq(
            node.chain.tree().get(&a1.hash()).unwrap().block(),
            &a1
        ));
    }

    fn sent_requests(actions: &[dcs_net::Action<WireMsg>]) -> Vec<(NodeId, Hash256)> {
        actions
            .iter()
            .filter_map(|a| match a {
                dcs_net::Action::Send {
                    to,
                    msg: WireMsg::BlockRequest(h),
                    ..
                } => Some((*to, *h)),
                _ => None,
            })
            .collect()
    }

    fn sync_timer_tags(actions: &[dcs_net::Action<WireMsg>]) -> Vec<u64> {
        actions
            .iter()
            .filter_map(|a| match a {
                dcs_net::Action::Timer { tag, .. } if is_sync_tag(*tag) => Some(*tag),
                _ => None,
            })
            .collect()
    }

    /// Regression (sync-stall #1): the orphan-parent request used to be
    /// fire-and-forget — if it was lost, the node stalled on that branch
    /// forever. Now a backoff timer re-sends it and the node converges.
    #[test]
    fn orphan_parent_request_retries_after_loss_and_converges() {
        let (mut node, g) = new_node();
        let b1 = block_on(&g, 1, vec![]);
        let b2 = block_on(&b1, 2, vec![]);
        let neighbors = [NodeId(1), NodeId(2)];
        let mut rng = dcs_sim::Rng::seed_from(1);

        // b2 arrives first: orphaned, parent requested from the sender.
        let mut actions = Vec::new();
        let mut ctx = Ctx::new(NodeId(0), SimTime::ZERO, &neighbors, &mut rng, &mut actions);
        node.handle_block(Arc::clone(&b2), Some(NodeId(1)), &mut ctx);
        assert_eq!(sent_requests(&actions), vec![(NodeId(1), b1.hash())]);
        let timers = sync_timer_tags(&actions);
        assert_eq!(timers.len(), 1, "a retry timer guards the request");

        // The request (or its reply) is lost; the timer fires.
        let mut actions = Vec::new();
        let mut ctx = Ctx::new(NodeId(0), SimTime::ZERO, &neighbors, &mut rng, &mut actions);
        node.handle_sync_timer(timers[0], &mut ctx);
        let retries = sent_requests(&actions);
        assert_eq!(retries.len(), 1, "the request was re-sent");
        assert_eq!(retries[0].1, b1.hash());
        assert_eq!(node.sync_retries, 1);
        let retry_tag = sync_timer_tags(&actions)[0];

        // The retried request is answered: the node converges on b2.
        let mut actions = Vec::new();
        let mut ctx = Ctx::new(NodeId(0), SimTime::ZERO, &neighbors, &mut rng, &mut actions);
        node.handle_block(Arc::clone(&b1), Some(retries[0].0), &mut ctx);
        assert_eq!(node.chain.tip_hash(), b2.hash(), "converged");
        assert_eq!(node.chain.height(), 2);

        // The stale timer is inert: no further requests go out.
        let mut actions = Vec::new();
        let mut ctx = Ctx::new(NodeId(0), SimTime::ZERO, &neighbors, &mut rng, &mut actions);
        node.handle_sync_timer(retry_tag, &mut ctx);
        assert!(sent_requests(&actions).is_empty());
        assert_eq!(node.sync_retries, 1);
    }

    #[test]
    fn sync_retries_are_bounded() {
        let (mut node, g) = new_node();
        let b1 = block_on(&g, 1, vec![]);
        let b2 = block_on(&b1, 2, vec![]);
        let neighbors = [NodeId(1), NodeId(2)];
        let mut rng = dcs_sim::Rng::seed_from(1);
        let mut actions = Vec::new();
        let mut ctx = Ctx::new(NodeId(0), SimTime::ZERO, &neighbors, &mut rng, &mut actions);
        node.handle_block(b2, Some(NodeId(1)), &mut ctx);
        let mut tag = sync_timer_tags(&actions)[0];
        for _ in 0..64 {
            let mut actions = Vec::new();
            let mut ctx = Ctx::new(NodeId(0), SimTime::ZERO, &neighbors, &mut rng, &mut actions);
            node.handle_sync_timer(tag, &mut ctx);
            match sync_timer_tags(&actions).first() {
                Some(t) => tag = *t,
                None => break,
            }
        }
        assert_eq!(
            node.sync_retries,
            u64::from(super::MAX_SYNC_ATTEMPTS),
            "gives up after the retry budget"
        );
    }

    /// Regression (sync-stall #2): a peer asked for an unknown or pruned
    /// body used to stay silent, leaving the asker waiting forever. Now it
    /// answers `BlockNotFound`.
    #[test]
    fn block_request_for_unknown_or_pruned_body_answers_not_found() {
        use dcs_chain::PrunedStore;
        let mut cfg = ChainConfig::bitcoin_like();
        cfg.confirmation_depth = 2;
        let genesis = dcs_chain::genesis_block(&cfg);
        let mut node = NodeCore::with_store(
            NodeId(0),
            Address::from_index(0),
            genesis.clone(),
            cfg,
            NullMachine,
            PrunedStore::new(0),
        );
        let mut tip = Arc::new(genesis);
        let mut hashes = Vec::new();
        for i in 0..10 {
            tip = block_on(&tip, i, vec![]);
            hashes.push(tip.hash());
            node.ingest_block(Arc::clone(&tip)).unwrap();
        }
        let pruned = hashes[0];
        assert!(
            node.chain.tree().get(&pruned).unwrap().body().is_none(),
            "the early body must be pruned for this test"
        );

        let neighbors = [NodeId(1)];
        let mut rng = dcs_sim::Rng::seed_from(1);
        let mut actions = Vec::new();
        let mut ctx = Ctx::new(NodeId(0), SimTime::ZERO, &neighbors, &mut rng, &mut actions);
        node.handle_block_request(pruned, NodeId(1), &mut ctx);
        node.handle_block_request(Hash256::ZERO, NodeId(1), &mut ctx); // unknown
        let not_found: Vec<Hash256> = actions
            .iter()
            .filter_map(|a| match a {
                dcs_net::Action::Send {
                    to: NodeId(1),
                    msg: WireMsg::BlockNotFound(h),
                    ..
                } => Some(*h),
                _ => None,
            })
            .collect();
        assert_eq!(not_found, vec![pruned, Hash256::ZERO]);

        // A resident body is still served as a full block.
        let mut actions = Vec::new();
        let mut ctx = Ctx::new(NodeId(0), SimTime::ZERO, &neighbors, &mut rng, &mut actions);
        node.handle_block_request(tip.hash(), NodeId(1), &mut ctx);
        assert!(matches!(
            actions.as_slice(),
            [dcs_net::Action::Send {
                msg: WireMsg::Block(_),
                ..
            }]
        ));
    }

    #[test]
    fn block_not_found_retargets_the_next_neighbor() {
        let (mut node, g) = new_node();
        let b1 = block_on(&g, 1, vec![]);
        let b2 = block_on(&b1, 2, vec![]);
        let neighbors = [NodeId(1), NodeId(2)];
        let mut rng = dcs_sim::Rng::seed_from(1);
        let mut actions = Vec::new();
        let mut ctx = Ctx::new(NodeId(0), SimTime::ZERO, &neighbors, &mut rng, &mut actions);
        node.handle_block(b2, Some(NodeId(1)), &mut ctx);
        assert_eq!(sent_requests(&actions), vec![(NodeId(1), b1.hash())]);

        // Peer 1 cannot serve it: the request immediately moves to peer 2.
        let mut actions = Vec::new();
        let mut ctx = Ctx::new(NodeId(0), SimTime::ZERO, &neighbors, &mut rng, &mut actions);
        node.handle_block_not_found(b1.hash(), NodeId(1), &mut ctx);
        assert_eq!(sent_requests(&actions), vec![(NodeId(2), b1.hash())]);
        assert_eq!(node.sync_retries, 1);
    }

    #[test]
    fn rebuild_from_store_rederives_volatile_state() {
        let (mut node, g) = new_node();
        let t1 = tx(1);
        let b1 = block_on(&g, 1, vec![t1.clone()]);
        let b2 = block_on(&b1, 2, vec![tx(2)]);
        for b in [&b1, &b2] {
            node.ingest_block(Arc::clone(b)).unwrap();
        }
        // Volatile state that must NOT survive: a pooled tx.
        node.mempool.insert(SealedTx::new(Arc::new(tx(9))));
        node.blocks_produced = 5;
        let tip = node.chain.tip_hash();

        node.rebuild_from_store(NullMachine);

        assert_eq!(node.chain.tip_hash(), tip);
        assert_eq!(node.internal_errors, 0);
        assert!(node.mempool.is_empty(), "mempool is volatile");
        assert_eq!(node.blocks_produced, 5, "lifetime counters survive");
        assert_eq!(node.included(), &included_recomputed(&node));
        // Canonical history is marked seen: a re-gossiped old block is
        // deduped, not re-broadcast.
        let neighbors = [NodeId(1)];
        let mut rng = dcs_sim::Rng::seed_from(1);
        let mut actions = Vec::new();
        {
            let mut ctx = Ctx::new(NodeId(0), SimTime::ZERO, &neighbors, &mut rng, &mut actions);
            assert!(node.handle_block(b1, Some(NodeId(1)), &mut ctx).is_none());
            assert!(
                !node.handle_tx(SealedTx::new(Arc::new(t1)), Some(NodeId(1)), &mut ctx),
                "included txs are seen too"
            );
        }
        assert!(actions.is_empty(), "no re-gossip of known history");
    }
}
