//! The transaction pool: pending client transactions awaiting inclusion
//! (§2.4: "transactions are submitted by client users ... which are then
//! pooled into blocks"). FIFO ordering with a capacity bound; duplicates by
//! transaction id are rejected.
//!
//! Admission is **sharded by sender key**: each transaction routes to one of
//! [`MEMPOOL_SHARDS`] partitions by its sender (the `from` address of an
//! account transaction, the first spent outpoint of a UTXO transaction), so
//! per-sender streams stay together and shard maps stay small. A global
//! admission sequence number threads through every shard; selection is a
//! k-way merge on that sequence, so block assembly sees the exact same FIFO
//! order a single-map pool would produce — sharding changes data layout,
//! never ordering.

use dcs_crypto::{Hash256, VerifyItem, VerifyPipeline};
use dcs_primitives::{SealedTx, Transaction};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Number of sender-key partitions in the pool.
pub const MEMPOOL_SHARDS: usize = 8;

/// Result of a [`Mempool::insert_outcome`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The transaction was admitted.
    Added,
    /// The transaction id is already pooled.
    Duplicate,
    /// The pool is at capacity.
    Full,
    /// The admission pipeline refused a carried witness.
    BadWitness,
}

/// One sender-key partition: id-keyed storage plus the admission order of
/// this shard's transactions (global sequence number, id).
#[derive(Debug, Clone, Default)]
struct Shard {
    txs: BTreeMap<Hash256, SealedTx>,
    order: VecDeque<(u64, Hash256)>,
}

impl Shard {
    /// Drops order entries whose transaction is no longer stored.
    fn compact(&mut self) {
        self.order.retain(|(_, id)| self.txs.contains_key(id));
    }
}

/// The shard a transaction's sender key routes to. Deterministic over
/// content, so duplicates always land in the same shard and removal can
/// route the same way admission did.
fn shard_of(tx: &Transaction) -> usize {
    let key = match tx {
        Transaction::Account(a) => a.from.as_ref()[0],
        Transaction::Utxo(u) => u.inputs.first().map_or(0, |i| i.prev_tx.as_ref()[0]),
        Transaction::Coinbase { .. } => 0,
    };
    key as usize % MEMPOOL_SHARDS
}

/// A bounded FIFO transaction pool, sharded by sender key.
///
/// # Examples
///
/// ```
/// use dcs_consensus::Mempool;
/// use dcs_primitives::{AccountTx, SealedTx, Transaction};
/// use dcs_crypto::Address;
/// use std::sync::Arc;
///
/// let mut pool = Mempool::new(100);
/// let tx = SealedTx::new(Arc::new(Transaction::Account(AccountTx::transfer(
///     Address::from_index(1), Address::from_index(2), 5, 0,
/// ))));
/// assert!(pool.insert(tx.clone()));
/// assert!(!pool.insert(tx), "duplicates rejected");
/// assert_eq!(pool.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Mempool {
    shards: Vec<Shard>,
    len: usize,
    /// Global admission counter: selection merges shards on this.
    seq: u64,
    capacity: usize,
    admission: Option<Arc<VerifyPipeline>>,
    rejected_invalid: u64,
    metrics: Option<crate::MempoolMetrics>,
}

impl Mempool {
    /// Creates a pool bounded at `capacity` transactions.
    pub fn new(capacity: usize) -> Self {
        Mempool {
            shards: (0..MEMPOOL_SHARDS).map(|_| Shard::default()).collect(),
            len: 0,
            seq: 0,
            capacity,
            admission: None,
            rejected_invalid: 0,
            metrics: None,
        }
    }

    /// Installs live metrics: admission outcomes and pool depths (global
    /// and per shard). Gauges are seeded from the current contents, so
    /// installation on a non-empty pool starts accurate. Updates are
    /// relaxed atomic bumps beside already-taken admission decisions —
    /// they never influence what is admitted (DESIGN.md §16).
    pub fn set_metrics(&mut self, metrics: crate::MempoolMetrics) {
        metrics.set_depth(self.len);
        metrics.set_all_shard_depths(&self.shard_lens());
        self.metrics = Some(metrics);
    }

    /// The installed mempool metrics, if any.
    pub fn metrics(&self) -> Option<&crate::MempoolMetrics> {
        self.metrics.as_ref()
    }

    /// A pool that verifies witness signatures at admission through
    /// `pipeline`. Forged signatures are rejected at the door, and — because
    /// verdicts land in the pipeline's shared signature cache — a block
    /// built from this pool connects without re-verifying any admitted
    /// signature: block prevalidation hits the cache instead.
    pub fn with_admission(capacity: usize, pipeline: Arc<VerifyPipeline>) -> Self {
        let mut pool = Mempool::new(capacity);
        pool.admission = Some(pipeline);
        pool
    }

    /// The admission pipeline, if one is configured.
    pub fn admission(&self) -> Option<&Arc<VerifyPipeline>> {
        self.admission.as_ref()
    }

    /// Installs (or replaces) the admission pipeline on an existing pool —
    /// the post-construction form of [`Mempool::with_admission`], for
    /// builders that hand out already-constructed nodes.
    pub fn set_admission(&mut self, pipeline: Arc<VerifyPipeline>) {
        self.admission = Some(pipeline);
    }

    /// Transactions rejected at admission for carrying a bad witness.
    pub fn rejected_invalid(&self) -> u64 {
        self.rejected_invalid
    }

    /// Checks every witness the transaction carries through the admission
    /// pipeline (warming the signature cache). Unsigned transactions pass —
    /// whether signatures are *required* is the state machine's policy;
    /// admission only refuses signatures that are present and wrong.
    fn admit(&self, tx: &Transaction) -> bool {
        let Some(pipeline) = &self.admission else {
            return true;
        };
        let signing_hash = tx.signing_hash();
        let mut items: Vec<VerifyItem<'_>> = Vec::new();
        match tx {
            Transaction::Utxo(utx) => {
                for input in &utx.inputs {
                    if let Some(auth) = &input.auth {
                        items.push((&auth.pubkey, &signing_hash, &auth.signature));
                    }
                }
            }
            Transaction::Account(acct) => {
                if let Some(auth) = &acct.auth {
                    if auth.pubkey.address() != acct.from {
                        return false;
                    }
                    items.push((&auth.pubkey, &signing_hash, &auth.signature));
                }
            }
            Transaction::Coinbase { .. } => {}
        }
        items.is_empty() || !pipeline.verify_batch_refs(&items).contains(&false)
    }

    /// Pending transaction count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no transactions are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pending transaction count per sender-key shard.
    pub fn shard_lens(&self) -> [usize; MEMPOOL_SHARDS] {
        let mut lens = [0usize; MEMPOOL_SHARDS];
        for (slot, shard) in lens.iter_mut().zip(&self.shards) {
            *slot = shard.txs.len();
        }
        lens
    }

    /// True if the pool holds `id`.
    pub fn contains(&self, id: &Hash256) -> bool {
        self.shards.iter().any(|s| s.txs.contains_key(id))
    }

    /// Adds a transaction; returns false if it is a duplicate, the pool is
    /// full, or (with an admission pipeline) it carries a forged witness.
    pub fn insert(&mut self, tx: SealedTx) -> bool {
        self.insert_outcome(tx) == InsertOutcome::Added
    }

    /// Like [`Mempool::insert`], but reports *why* a transaction was
    /// refused — the tracing layer records the reason. The id carried by
    /// the sealed transaction is reused; nothing is hashed at admission.
    pub fn insert_outcome(&mut self, tx: SealedTx) -> InsertOutcome {
        let outcome = self.insert_outcome_inner(tx);
        if let Some(m) = &self.metrics {
            m.record_outcome(outcome);
            if outcome == InsertOutcome::Added {
                m.set_depth(self.len);
            }
        }
        outcome
    }

    fn insert_outcome_inner(&mut self, tx: SealedTx) -> InsertOutcome {
        if self.len >= self.capacity {
            return InsertOutcome::Full;
        }
        let id = tx.id();
        let shard_idx = shard_of(&tx);
        if self.shards[shard_idx].txs.contains_key(&id) {
            return InsertOutcome::Duplicate;
        }
        if !self.admit(&tx) {
            self.rejected_invalid += 1;
            return InsertOutcome::BadWitness;
        }
        let shard = &mut self.shards[shard_idx];
        shard.order.push_back((self.seq, id));
        shard.txs.insert(id, tx);
        self.seq += 1;
        self.len += 1;
        if let Some(m) = &self.metrics {
            m.set_shard_depth(shard_idx, self.shards[shard_idx].txs.len());
        }
        InsertOutcome::Added
    }

    /// Removes a transaction by id alone. The shard cannot be derived from
    /// an id, so all partitions are probed; prefer [`Mempool::remove_all`]
    /// when the transaction body is at hand.
    pub fn remove(&mut self, id: &Hash256) -> Option<SealedTx> {
        // `order` is lazily compacted in `select`.
        for (shard_idx, shard) in self.shards.iter_mut().enumerate() {
            if let Some(tx) = shard.txs.remove(id) {
                self.len -= 1;
                if let Some(m) = &self.metrics {
                    m.set_depth(self.len);
                    m.set_shard_depth(shard_idx, shard.txs.len());
                }
                return Some(tx);
            }
        }
        None
    }

    /// Selects up to `limit` transactions in global FIFO (admission) order,
    /// skipping any whose id is in `exclude` (already on the canonical
    /// chain). A k-way merge over the shards' order queues on the global
    /// sequence number — identical output to an unsharded FIFO pool. The
    /// pool is not modified — selected transactions leave the pool only
    /// when a block containing them commits.
    pub fn select(&mut self, limit: usize, exclude: &BTreeSet<Hash256>) -> Vec<SealedTx> {
        for shard in &mut self.shards {
            shard.compact();
        }
        let mut heads = [0usize; MEMPOOL_SHARDS];
        let mut out = Vec::new();
        while out.len() < limit {
            // Pick the live head with the smallest admission sequence.
            let mut best: Option<(u64, usize)> = None;
            for (i, shard) in self.shards.iter().enumerate() {
                if let Some(&(seq, _)) = shard.order.get(heads[i]) {
                    if best.is_none_or(|(b, _)| seq < b) {
                        best = Some((seq, i));
                    }
                }
            }
            let Some((_, i)) = best else {
                break; // every shard exhausted
            };
            let (_, id) = self.shards[i].order[heads[i]];
            heads[i] += 1;
            if !exclude.contains(&id) {
                out.push(self.shards[i].txs[&id].clone());
            }
        }
        out
    }

    /// Drops every listed transaction (a committed block), routing each
    /// removal by content the same way admission did — no cross-shard
    /// probing and no id recomputation: callers pass the block's cached
    /// ids zipped with its bodies.
    pub fn remove_all<'a>(
        &mut self,
        txs: impl IntoIterator<Item = (&'a Transaction, &'a Hash256)>,
    ) {
        for (tx, id) in txs {
            if self.shards[shard_of(tx)].txs.remove(id).is_some() {
                self.len -= 1;
            }
        }
        if let Some(m) = &self.metrics {
            m.set_depth(self.len);
            m.set_all_shard_depths(&self.shard_lens());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_crypto::Address;
    use dcs_primitives::AccountTx;

    fn tx(n: u64) -> SealedTx {
        SealedTx::new(Arc::new(Transaction::Account(AccountTx::transfer(
            Address::from_index(n),
            Address::from_index(n + 1),
            n,
            0,
        ))))
    }

    #[test]
    fn fifo_selection() {
        let mut pool = Mempool::new(10);
        let t1 = tx(1);
        let t2 = tx(2);
        let t3 = tx(3);
        for t in [&t1, &t2, &t3] {
            assert!(pool.insert(t.clone()));
        }
        let selected = pool.select(2, &BTreeSet::new());
        assert_eq!(selected.len(), 2);
        assert_eq!(selected[0].id(), t1.id());
        assert_eq!(selected[1].id(), t2.id());
        // Selection does not remove.
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn selection_order_spans_shards() {
        // Senders at distinct indices scatter over shards; the k-way merge
        // must still yield exact global admission order.
        let mut pool = Mempool::new(300);
        let ts: Vec<SealedTx> = (0..200).map(tx).collect();
        for t in &ts {
            assert!(pool.insert(t.clone()));
        }
        assert!(
            pool.shard_lens().iter().filter(|&&n| n > 0).count() > 1,
            "distinct senders must spread over shards: {:?}",
            pool.shard_lens()
        );
        assert_eq!(pool.shard_lens().iter().sum::<usize>(), pool.len());
        let selected = pool.select(200, &BTreeSet::new());
        assert_eq!(selected.len(), 200);
        for (s, t) in selected.iter().zip(&ts) {
            assert_eq!(s.id(), t.id(), "global FIFO order preserved");
        }
    }

    #[test]
    fn exclusion_skips_included() {
        let mut pool = Mempool::new(10);
        let t1 = tx(1);
        let t2 = tx(2);
        pool.insert(t1.clone());
        pool.insert(t2.clone());
        let exclude: BTreeSet<_> = [t1.id()].into_iter().collect();
        let selected = pool.select(10, &exclude);
        assert_eq!(selected.len(), 1);
        assert_eq!(selected[0].id(), t2.id());
    }

    #[test]
    fn capacity_bound() {
        let mut pool = Mempool::new(2);
        assert!(pool.insert(tx(1)));
        assert!(pool.insert(tx(2)));
        assert!(!pool.insert(tx(3)), "full pool rejects");
        pool.remove(&tx(1).id());
        assert!(pool.insert(tx(3)), "space freed");
    }

    #[test]
    fn insert_outcome_reports_each_reason() {
        let mut pool = Mempool::new(2);
        assert_eq!(pool.insert_outcome(tx(1)), InsertOutcome::Added);
        assert_eq!(pool.insert_outcome(tx(1)), InsertOutcome::Duplicate);
        assert_eq!(pool.insert_outcome(tx(2)), InsertOutcome::Added);
        assert_eq!(pool.insert_outcome(tx(3)), InsertOutcome::Full);
    }

    #[test]
    fn remove_all_routes_by_content() {
        let mut pool = Mempool::new(300);
        let ts: Vec<SealedTx> = (0..100).map(tx).collect();
        for t in &ts {
            pool.insert(t.clone());
        }
        let ids: Vec<Hash256> = ts[..60].iter().map(|t| t.id()).collect();
        let bodies: Vec<&Transaction> = ts[..60].iter().map(|t| &**t).collect();
        pool.remove_all(bodies.into_iter().zip(ids.iter()));
        assert_eq!(pool.len(), 40);
        let selected = pool.select(100, &BTreeSet::new());
        assert_eq!(selected.len(), 40);
        for (s, t) in selected.iter().zip(&ts[60..]) {
            assert_eq!(s.id(), t.id(), "survivors keep FIFO order");
        }
    }

    #[test]
    fn admission_rejects_forged_and_warms_cache_for_block_connect() {
        use dcs_primitives::{TxAuth, TxIn, TxOut, UtxoTx};
        use dcs_state::UtxoSet;

        let mut kp = dcs_crypto::KeyPair::generate([21u8; 32], 3);
        let addr = kp.address();
        let mut set = UtxoSet::with_witness_verification();
        let op = set.mint(addr, 100);

        let pipeline = Arc::new(VerifyPipeline::new(2, 4096));
        let mut pool = Mempool::with_admission(16, Arc::clone(&pipeline));

        // A well-signed spend is admitted (and its verdict cached)...
        let mut utx = UtxoTx {
            inputs: vec![TxIn {
                prev_tx: op.tx,
                index: op.index,
                auth: None,
            }],
            outputs: vec![TxOut {
                value: 100,
                recipient: addr,
            }],
        };
        let signing = Transaction::Utxo(utx.clone()).signing_hash();
        let sig = kp.sign(&signing).unwrap();
        utx.inputs[0].auth = Some(TxAuth {
            pubkey: kp.public_key(),
            signature: sig,
        });
        let good = Transaction::Utxo(utx.clone());
        assert!(pool.insert(SealedTx::new(Arc::new(good.clone()))));

        // ...a forged one is refused at the door.
        let mut forged_utx = utx;
        forged_utx.inputs[0].auth.as_mut().unwrap().signature =
            kp.sign(&dcs_crypto::sha256(b"other")).unwrap();
        assert!(!pool.insert(SealedTx::new(Arc::new(Transaction::Utxo(forged_utx)))));
        assert_eq!(pool.rejected_invalid(), 1);
        assert_eq!(pool.len(), 1);

        // Mempool → block flow: the block containing the admitted tx
        // prevalidates entirely from the cache — hits, no new misses.
        let body: Vec<Transaction> = pool
            .select(10, &BTreeSet::new())
            .into_iter()
            .map(|t| (*t.into_tx()).clone())
            .collect();
        let before = pipeline.stats().cache.unwrap();
        assert_eq!(UtxoSet::prevalidate_witnesses(&body, &pipeline), Ok(1));
        let after = pipeline.stats().cache.unwrap();
        assert!(
            after.hits > before.hits,
            "block connect must hit the warm cache"
        );
        assert_eq!(after.misses, before.misses, "no signature re-verified");
        set.apply_prevalidated(&good).unwrap();
        assert_eq!(set.balance_of(&addr), 100);
    }

    #[test]
    fn admission_rejects_account_witness_key_mismatch() {
        use dcs_primitives::{AccountTx, TxAuth};
        let mut kp = dcs_crypto::KeyPair::generate([22u8; 32], 2);
        let pipeline = Arc::new(VerifyPipeline::new(1, 64));
        let mut pool = Mempool::with_admission(16, pipeline);

        // Signature is genuine but the key is not the claimed sender's.
        let mut acct = AccountTx::transfer(Address::from_index(42), Address::from_index(2), 5, 0);
        let signing = Transaction::Account(acct.clone()).signing_hash();
        let sig = kp.sign(&signing).unwrap();
        acct.auth = Some(TxAuth {
            pubkey: kp.public_key(),
            signature: sig,
        });
        assert!(!pool.insert(SealedTx::new(Arc::new(Transaction::Account(acct)))));
        assert_eq!(pool.rejected_invalid(), 1);

        // Unsigned transactions still pass (simulation mode).
        assert!(pool.insert(tx(1)));
    }
}
