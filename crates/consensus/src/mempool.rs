//! The transaction pool: pending client transactions awaiting inclusion
//! (§2.4: "transactions are submitted by client users ... which are then
//! pooled into blocks"). FIFO ordering with a capacity bound; duplicates by
//! transaction id are rejected.

use dcs_crypto::Hash256;
use dcs_primitives::Transaction;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// A bounded FIFO transaction pool.
///
/// # Examples
///
/// ```
/// use dcs_consensus::Mempool;
/// use dcs_primitives::{AccountTx, Transaction};
/// use dcs_crypto::Address;
/// use std::sync::Arc;
///
/// let mut pool = Mempool::new(100);
/// let tx = Arc::new(Transaction::Account(AccountTx::transfer(
///     Address::from_index(1), Address::from_index(2), 5, 0,
/// )));
/// assert!(pool.insert(tx.clone()));
/// assert!(!pool.insert(tx), "duplicates rejected");
/// assert_eq!(pool.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Mempool {
    txs: HashMap<Hash256, Arc<Transaction>>,
    order: VecDeque<Hash256>,
    capacity: usize,
}

impl Mempool {
    /// Creates a pool bounded at `capacity` transactions.
    pub fn new(capacity: usize) -> Self {
        Mempool { txs: HashMap::new(), order: VecDeque::new(), capacity }
    }

    /// Pending transaction count.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// True when no transactions are pending.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// True if the pool holds `id`.
    pub fn contains(&self, id: &Hash256) -> bool {
        self.txs.contains_key(id)
    }

    /// Adds a transaction; returns false if it is a duplicate or the pool is
    /// full.
    pub fn insert(&mut self, tx: Arc<Transaction>) -> bool {
        if self.txs.len() >= self.capacity {
            return false;
        }
        let id = tx.id();
        if self.txs.contains_key(&id) {
            return false;
        }
        self.order.push_back(id);
        self.txs.insert(id, tx);
        true
    }

    /// Removes a transaction (it was included in a block).
    pub fn remove(&mut self, id: &Hash256) -> Option<Arc<Transaction>> {
        // `order` is lazily compacted in `select`.
        self.txs.remove(id)
    }

    /// Selects up to `limit` transactions in FIFO order, skipping any whose
    /// id is in `exclude` (already on the canonical chain). The pool is not
    /// modified — selected transactions leave the pool only when a block
    /// containing them commits.
    pub fn select(&mut self, limit: usize, exclude: &HashSet<Hash256>) -> Vec<Transaction> {
        // Compact the order queue of ids no longer present.
        self.order.retain(|id| self.txs.contains_key(id));
        self.order
            .iter()
            .filter(|id| !exclude.contains(*id))
            .take(limit)
            .map(|id| (*self.txs[id]).clone())
            .collect()
    }

    /// Drops every transaction whose id is in `ids` (a committed block).
    pub fn remove_all<'a>(&mut self, ids: impl IntoIterator<Item = &'a Hash256>) {
        for id in ids {
            self.txs.remove(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_crypto::Address;
    use dcs_primitives::AccountTx;

    fn tx(n: u64) -> Arc<Transaction> {
        Arc::new(Transaction::Account(AccountTx::transfer(
            Address::from_index(n),
            Address::from_index(n + 1),
            n,
            0,
        )))
    }

    #[test]
    fn fifo_selection() {
        let mut pool = Mempool::new(10);
        let t1 = tx(1);
        let t2 = tx(2);
        let t3 = tx(3);
        for t in [&t1, &t2, &t3] {
            assert!(pool.insert(t.clone()));
        }
        let selected = pool.select(2, &HashSet::new());
        assert_eq!(selected.len(), 2);
        assert_eq!(selected[0].id(), t1.id());
        assert_eq!(selected[1].id(), t2.id());
        // Selection does not remove.
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn exclusion_skips_included() {
        let mut pool = Mempool::new(10);
        let t1 = tx(1);
        let t2 = tx(2);
        pool.insert(t1.clone());
        pool.insert(t2.clone());
        let exclude: HashSet<_> = [t1.id()].into_iter().collect();
        let selected = pool.select(10, &exclude);
        assert_eq!(selected.len(), 1);
        assert_eq!(selected[0].id(), t2.id());
    }

    #[test]
    fn capacity_bound() {
        let mut pool = Mempool::new(2);
        assert!(pool.insert(tx(1)));
        assert!(pool.insert(tx(2)));
        assert!(!pool.insert(tx(3)), "full pool rejects");
        pool.remove(&tx(1).id());
        assert!(pool.insert(tx(3)), "space freed");
    }

    #[test]
    fn remove_all() {
        let mut pool = Mempool::new(10);
        let ts: Vec<_> = (0..5).map(tx).collect();
        for t in &ts {
            pool.insert(t.clone());
        }
        let ids: Vec<Hash256> = ts[..3].iter().map(|t| t.id()).collect();
        pool.remove_all(ids.iter());
        assert_eq!(pool.len(), 2);
        let selected = pool.select(10, &HashSet::new());
        assert_eq!(selected.len(), 2);
    }
}
