//! The transaction pool: pending client transactions awaiting inclusion
//! (§2.4: "transactions are submitted by client users ... which are then
//! pooled into blocks"). FIFO ordering with a capacity bound; duplicates by
//! transaction id are rejected.

use dcs_crypto::{Hash256, VerifyItem, VerifyPipeline};
use dcs_primitives::Transaction;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

/// Result of a [`Mempool::insert_outcome`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The transaction was admitted.
    Added,
    /// The transaction id is already pooled.
    Duplicate,
    /// The pool is at capacity.
    Full,
    /// The admission pipeline refused a carried witness.
    BadWitness,
}

/// A bounded FIFO transaction pool.
///
/// # Examples
///
/// ```
/// use dcs_consensus::Mempool;
/// use dcs_primitives::{AccountTx, Transaction};
/// use dcs_crypto::Address;
/// use std::sync::Arc;
///
/// let mut pool = Mempool::new(100);
/// let tx = Arc::new(Transaction::Account(AccountTx::transfer(
///     Address::from_index(1), Address::from_index(2), 5, 0,
/// )));
/// assert!(pool.insert(tx.clone()));
/// assert!(!pool.insert(tx), "duplicates rejected");
/// assert_eq!(pool.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Mempool {
    txs: BTreeMap<Hash256, Arc<Transaction>>,
    order: VecDeque<Hash256>,
    capacity: usize,
    admission: Option<Arc<VerifyPipeline>>,
    rejected_invalid: u64,
}

impl Mempool {
    /// Creates a pool bounded at `capacity` transactions.
    pub fn new(capacity: usize) -> Self {
        Mempool {
            txs: BTreeMap::new(),
            order: VecDeque::new(),
            capacity,
            admission: None,
            rejected_invalid: 0,
        }
    }

    /// A pool that verifies witness signatures at admission through
    /// `pipeline`. Forged signatures are rejected at the door, and — because
    /// verdicts land in the pipeline's shared signature cache — a block
    /// built from this pool connects without re-verifying any admitted
    /// signature: block prevalidation hits the cache instead.
    pub fn with_admission(capacity: usize, pipeline: Arc<VerifyPipeline>) -> Self {
        let mut pool = Mempool::new(capacity);
        pool.admission = Some(pipeline);
        pool
    }

    /// The admission pipeline, if one is configured.
    pub fn admission(&self) -> Option<&Arc<VerifyPipeline>> {
        self.admission.as_ref()
    }

    /// Transactions rejected at admission for carrying a bad witness.
    pub fn rejected_invalid(&self) -> u64 {
        self.rejected_invalid
    }

    /// Checks every witness the transaction carries through the admission
    /// pipeline (warming the signature cache). Unsigned transactions pass —
    /// whether signatures are *required* is the state machine's policy;
    /// admission only refuses signatures that are present and wrong.
    fn admit(&self, tx: &Transaction) -> bool {
        let Some(pipeline) = &self.admission else {
            return true;
        };
        let signing_hash = tx.signing_hash();
        let mut items: Vec<VerifyItem<'_>> = Vec::new();
        match tx {
            Transaction::Utxo(utx) => {
                for input in &utx.inputs {
                    if let Some(auth) = &input.auth {
                        items.push((&auth.pubkey, &signing_hash, &auth.signature));
                    }
                }
            }
            Transaction::Account(acct) => {
                if let Some(auth) = &acct.auth {
                    if auth.pubkey.address() != acct.from {
                        return false;
                    }
                    items.push((&auth.pubkey, &signing_hash, &auth.signature));
                }
            }
            Transaction::Coinbase { .. } => {}
        }
        items.is_empty() || !pipeline.verify_batch_refs(&items).contains(&false)
    }

    /// Pending transaction count.
    pub fn len(&self) -> usize {
        self.txs.len()
    }

    /// True when no transactions are pending.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// True if the pool holds `id`.
    pub fn contains(&self, id: &Hash256) -> bool {
        self.txs.contains_key(id)
    }

    /// Adds a transaction; returns false if it is a duplicate, the pool is
    /// full, or (with an admission pipeline) it carries a forged witness.
    pub fn insert(&mut self, tx: Arc<Transaction>) -> bool {
        self.insert_outcome(tx) == InsertOutcome::Added
    }

    /// Like [`Mempool::insert`], but reports *why* a transaction was
    /// refused — the tracing layer records the reason.
    pub fn insert_outcome(&mut self, tx: Arc<Transaction>) -> InsertOutcome {
        if self.txs.len() >= self.capacity {
            return InsertOutcome::Full;
        }
        let id = tx.id();
        if self.txs.contains_key(&id) {
            return InsertOutcome::Duplicate;
        }
        if !self.admit(&tx) {
            self.rejected_invalid += 1;
            return InsertOutcome::BadWitness;
        }
        self.order.push_back(id);
        self.txs.insert(id, tx);
        InsertOutcome::Added
    }

    /// Removes a transaction (it was included in a block).
    pub fn remove(&mut self, id: &Hash256) -> Option<Arc<Transaction>> {
        // `order` is lazily compacted in `select`.
        self.txs.remove(id)
    }

    /// Selects up to `limit` transactions in FIFO order, skipping any whose
    /// id is in `exclude` (already on the canonical chain). The pool is not
    /// modified — selected transactions leave the pool only when a block
    /// containing them commits.
    pub fn select(&mut self, limit: usize, exclude: &BTreeSet<Hash256>) -> Vec<Transaction> {
        // Compact the order queue of ids no longer present.
        self.order.retain(|id| self.txs.contains_key(id));
        self.order
            .iter()
            .filter(|id| !exclude.contains(*id))
            .take(limit)
            .map(|id| (*self.txs[id]).clone())
            .collect()
    }

    /// Drops every transaction whose id is in `ids` (a committed block).
    pub fn remove_all<'a>(&mut self, ids: impl IntoIterator<Item = &'a Hash256>) {
        for id in ids {
            self.txs.remove(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_crypto::Address;
    use dcs_primitives::AccountTx;

    fn tx(n: u64) -> Arc<Transaction> {
        Arc::new(Transaction::Account(AccountTx::transfer(
            Address::from_index(n),
            Address::from_index(n + 1),
            n,
            0,
        )))
    }

    #[test]
    fn fifo_selection() {
        let mut pool = Mempool::new(10);
        let t1 = tx(1);
        let t2 = tx(2);
        let t3 = tx(3);
        for t in [&t1, &t2, &t3] {
            assert!(pool.insert(t.clone()));
        }
        let selected = pool.select(2, &BTreeSet::new());
        assert_eq!(selected.len(), 2);
        assert_eq!(selected[0].id(), t1.id());
        assert_eq!(selected[1].id(), t2.id());
        // Selection does not remove.
        assert_eq!(pool.len(), 3);
    }

    #[test]
    fn exclusion_skips_included() {
        let mut pool = Mempool::new(10);
        let t1 = tx(1);
        let t2 = tx(2);
        pool.insert(t1.clone());
        pool.insert(t2.clone());
        let exclude: BTreeSet<_> = [t1.id()].into_iter().collect();
        let selected = pool.select(10, &exclude);
        assert_eq!(selected.len(), 1);
        assert_eq!(selected[0].id(), t2.id());
    }

    #[test]
    fn capacity_bound() {
        let mut pool = Mempool::new(2);
        assert!(pool.insert(tx(1)));
        assert!(pool.insert(tx(2)));
        assert!(!pool.insert(tx(3)), "full pool rejects");
        pool.remove(&tx(1).id());
        assert!(pool.insert(tx(3)), "space freed");
    }

    #[test]
    fn insert_outcome_reports_each_reason() {
        let mut pool = Mempool::new(2);
        assert_eq!(pool.insert_outcome(tx(1)), InsertOutcome::Added);
        assert_eq!(pool.insert_outcome(tx(1)), InsertOutcome::Duplicate);
        assert_eq!(pool.insert_outcome(tx(2)), InsertOutcome::Added);
        assert_eq!(pool.insert_outcome(tx(3)), InsertOutcome::Full);
    }

    #[test]
    fn admission_rejects_forged_and_warms_cache_for_block_connect() {
        use dcs_primitives::{TxAuth, TxIn, TxOut, UtxoTx};
        use dcs_state::UtxoSet;

        let mut kp = dcs_crypto::KeyPair::generate([21u8; 32], 3);
        let addr = kp.address();
        let mut set = UtxoSet::with_witness_verification();
        let op = set.mint(addr, 100);

        let pipeline = Arc::new(VerifyPipeline::new(2, 4096));
        let mut pool = Mempool::with_admission(16, Arc::clone(&pipeline));

        // A well-signed spend is admitted (and its verdict cached)...
        let mut utx = UtxoTx {
            inputs: vec![TxIn {
                prev_tx: op.tx,
                index: op.index,
                auth: None,
            }],
            outputs: vec![TxOut {
                value: 100,
                recipient: addr,
            }],
        };
        let signing = Transaction::Utxo(utx.clone()).signing_hash();
        let sig = kp.sign(&signing).unwrap();
        utx.inputs[0].auth = Some(TxAuth {
            pubkey: kp.public_key(),
            signature: sig,
        });
        let good = Transaction::Utxo(utx.clone());
        assert!(pool.insert(Arc::new(good.clone())));

        // ...a forged one is refused at the door.
        let mut forged_utx = utx;
        forged_utx.inputs[0].auth.as_mut().unwrap().signature =
            kp.sign(&dcs_crypto::sha256(b"other")).unwrap();
        assert!(!pool.insert(Arc::new(Transaction::Utxo(forged_utx))));
        assert_eq!(pool.rejected_invalid(), 1);
        assert_eq!(pool.len(), 1);

        // Mempool → block flow: the block containing the admitted tx
        // prevalidates entirely from the cache — hits, no new misses.
        let body = pool.select(10, &BTreeSet::new());
        let before = pipeline.stats().cache.unwrap();
        assert_eq!(UtxoSet::prevalidate_witnesses(&body, &pipeline), Ok(1));
        let after = pipeline.stats().cache.unwrap();
        assert!(
            after.hits > before.hits,
            "block connect must hit the warm cache"
        );
        assert_eq!(after.misses, before.misses, "no signature re-verified");
        set.apply_prevalidated(&good).unwrap();
        assert_eq!(set.balance_of(&addr), 100);
    }

    #[test]
    fn admission_rejects_account_witness_key_mismatch() {
        use dcs_primitives::{AccountTx, TxAuth};
        let mut kp = dcs_crypto::KeyPair::generate([22u8; 32], 2);
        let pipeline = Arc::new(VerifyPipeline::new(1, 64));
        let mut pool = Mempool::with_admission(16, pipeline);

        // Signature is genuine but the key is not the claimed sender's.
        let mut acct = AccountTx::transfer(Address::from_index(42), Address::from_index(2), 5, 0);
        let signing = Transaction::Account(acct.clone()).signing_hash();
        let sig = kp.sign(&signing).unwrap();
        acct.auth = Some(TxAuth {
            pubkey: kp.public_key(),
            signature: sig,
        });
        assert!(!pool.insert(Arc::new(Transaction::Account(acct))));
        assert_eq!(pool.rejected_invalid(), 1);

        // Unsigned transactions still pass (simulation mode).
        assert!(pool.insert(tx(1)));
    }

    #[test]
    fn remove_all() {
        let mut pool = Mempool::new(10);
        let ts: Vec<_> = (0..5).map(tx).collect();
        for t in &ts {
            pool.insert(t.clone());
        }
        let ids: Vec<Hash256> = ts[..3].iter().map(|t| t.id()).collect();
        pool.remove_all(ids.iter());
        assert_eq!(pool.len(), 2);
        let selected = pool.select(10, &BTreeSet::new());
        assert_eq!(selected.len(), 2);
    }
}
