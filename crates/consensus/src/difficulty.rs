//! Difficulty retargeting: the mechanism behind the paper's observation that
//! Bitcoin "does not yield increased performance despite the increase in
//! \[hash\] power" (§2.7) — as miners add power, difficulty rises to pin the
//! block interval, so throughput stays flat. Experiment E1 demonstrates this.

use dcs_chain::StateMachine;
use dcs_primitives::Seal;

/// Bitcoin-style bounds on a single retarget step.
const MAX_ADJUST: u64 = 4;

/// The difficulty the *next* block must carry, derived deterministically from
/// the canonical chain: every `window` blocks, scale the previous difficulty
/// by `target_interval / observed_interval`, clamped to a factor of 4 per
/// step (as Bitcoin does).
pub fn next_difficulty<M: StateMachine>(
    chain: &dcs_chain::Chain<M>,
    initial: u64,
    window: u64,
    target_interval_us: u64,
) -> u64 {
    if window == 0 {
        return initial.max(1);
    }
    let next_height = chain.height() + 1;
    // Block h belongs to era (h-1)/window: the first `window` blocks use the
    // initial difficulty, and each later era reads the timestamps of the
    // previous era's boundary blocks (which are guaranteed to exist).
    let era = (next_height - 1) / window;
    if era == 0 {
        return initial.max(1);
    }
    // The era boundary blocks: heights (era-1)*window and era*window.
    let hi = era * window;
    let lo = hi - window;
    let (Some(hi_hash), Some(lo_hash)) = (chain.canonical_at(hi), chain.canonical_at(lo)) else {
        return initial.max(1);
    };
    let (Some(hi_stored), Some(lo_stored)) =
        (chain.tree().get(&hi_hash), chain.tree().get(&lo_hash))
    else {
        // Canonical hashes must resolve; degrade to the initial difficulty
        // rather than panicking on a broken store invariant.
        return initial.max(1);
    };
    let hi_hdr = hi_stored.header();
    let lo_hdr = lo_stored.header();
    let prev_difficulty = match hi_hdr.seal {
        Seal::Work { difficulty, .. } => difficulty.max(1),
        _ => initial.max(1),
    };
    let observed_us = hi_hdr
        .timestamp_us
        .saturating_sub(lo_hdr.timestamp_us)
        .max(1);
    let target_total = target_interval_us.saturating_mul(window).max(1);
    // Integer retarget: scaled = prev * target / observed, rounded to
    // nearest, then clamped to [prev/4, prev*4]. u128 intermediates cannot
    // overflow (u64 * u64 fits in u128) and, unlike the float formulation,
    // the result is bit-identical on every platform and opt level.
    let scaled = ((prev_difficulty as u128 * target_total as u128) + (observed_us as u128 / 2))
        / observed_us as u128;
    let lo_bound = (prev_difficulty / MAX_ADJUST).max(1) as u128;
    let hi_bound = (prev_difficulty as u128) * MAX_ADJUST as u128;
    let clamped = scaled.clamp(lo_bound, hi_bound);
    u64::try_from(clamped).unwrap_or(u64::MAX).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_chain::{Chain, NullMachine};
    use dcs_crypto::Address;
    use dcs_primitives::{Block, BlockHeader, ChainConfig, Seal};

    fn chain_with_intervals(interval_us: u64, count: u64, difficulty: u64) -> Chain<NullMachine> {
        let cfg = ChainConfig::bitcoin_like();
        let genesis = dcs_chain::genesis_block(&cfg);
        let mut chain = Chain::new(genesis, cfg, NullMachine);
        for h in 1..=count {
            let parent = chain.tip_hash();
            let block = Block::new(
                BlockHeader::new(
                    parent,
                    h,
                    h * interval_us,
                    Address::from_index(h),
                    Seal::Work {
                        nonce: h,
                        difficulty,
                    },
                ),
                vec![],
            );
            chain.import(block).unwrap();
        }
        chain
    }

    #[test]
    fn first_era_uses_initial() {
        let chain = chain_with_intervals(1_000_000, 3, 500);
        assert_eq!(next_difficulty(&chain, 1000, 8, 600_000_000), 1000);
    }

    #[test]
    fn window_zero_disables_retargeting() {
        let chain = chain_with_intervals(1_000_000, 20, 500);
        assert_eq!(next_difficulty(&chain, 1000, 0, 1), 1000);
    }

    #[test]
    fn too_fast_blocks_raise_difficulty() {
        // Target 10 s, observed 1 s per block → ratio 10, clamped to 4.
        let chain = chain_with_intervals(1_000_000, 8, 1000);
        let d = next_difficulty(&chain, 1000, 8, 10_000_000);
        assert_eq!(d, 4000, "clamped to 4x");
    }

    #[test]
    fn too_slow_blocks_lower_difficulty() {
        // Target 1 s, observed 2 s per block → ratio 0.5.
        let chain = chain_with_intervals(2_000_000, 8, 1000);
        let d = next_difficulty(&chain, 1000, 8, 1_000_000);
        assert_eq!(d, 500);
    }

    #[test]
    fn on_target_blocks_keep_difficulty() {
        let chain = chain_with_intervals(1_000_000, 8, 1000);
        let d = next_difficulty(&chain, 1000, 8, 1_000_000);
        assert_eq!(d, 1000);
    }

    #[test]
    fn difficulty_is_stable_within_an_era() {
        // Heights 8..15 all read the same boundary blocks.
        let chain = chain_with_intervals(2_000_000, 12, 1000);
        let d_at_12 = next_difficulty(&chain, 1000, 8, 1_000_000);
        let chain15 = chain_with_intervals(2_000_000, 15, 1000);
        let d_at_15 = next_difficulty(&chain15, 1000, 8, 1_000_000);
        assert_eq!(d_at_12, d_at_15);
        assert_eq!(d_at_12, 500, "halved for double-target intervals");
    }

    #[test]
    fn never_returns_zero() {
        let chain = chain_with_intervals(u32::MAX as u64, 8, 1);
        assert!(next_difficulty(&chain, 1, 8, 1) >= 1);
    }
}
