//! Slot-based proof-of-stake (§2.4, \[13\]): time is divided into fixed slots;
//! in each slot a deterministic stake-weighted lottery (seeded from the slot
//! number) picks the proposer. Every peer evaluates the same lottery, so
//! proposals carry a verifiable [`Seal::Stake`] proof and forks arise only
//! from propagation races — no hashing is expended, which is the point of
//! experiment E5.

use crate::node::{is_sync_tag, NodeCore};
use crate::WireMsg;
use dcs_chain::StateMachine;
use dcs_crypto::{sha256, Address, Hash256};
use dcs_net::{Ctx, NodeId, Protocol};
use dcs_primitives::{Block, ChainConfig, ConsensusKind, Seal};
use dcs_sim::{Rng, SimDuration};

/// The stake distribution every validator knows (registered at genesis).
#[derive(Debug, Clone)]
pub struct StakeTable {
    addresses: Vec<Address>,
    stakes: Vec<u64>,
    chain_id: u32,
}

impl StakeTable {
    /// Builds the table; one entry per validator.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or total stake is zero.
    pub fn new(addresses: Vec<Address>, stakes: Vec<u64>, chain_id: u32) -> Self {
        assert_eq!(addresses.len(), stakes.len(), "one stake per validator");
        assert!(
            stakes.iter().sum::<u64>() > 0,
            "total stake must be positive"
        );
        StakeTable {
            addresses,
            stakes,
            chain_id,
        }
    }

    /// Number of validators.
    pub fn len(&self) -> usize {
        self.addresses.len()
    }

    /// True when there are no validators (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.addresses.is_empty()
    }

    /// The stake vector (for decentralization metrics).
    pub fn stakes(&self) -> &[u64] {
        &self.stakes
    }

    /// The slot lottery: which validator index proposes in `slot`.
    /// Deterministic in (chain_id, slot) so all honest peers agree.
    pub fn slot_leader(&self, slot: u64) -> usize {
        let mut seed_bytes = Vec::with_capacity(16);
        seed_bytes.extend_from_slice(&self.chain_id.to_le_bytes());
        seed_bytes.extend_from_slice(&slot.to_le_bytes());
        let seed = sha256(&seed_bytes).prefix_u64();
        Rng::seed_from(seed).weighted_index(&self.stakes)
    }

    /// The lottery proof a proposer embeds in its seal.
    pub fn slot_proof(&self, slot: u64, proposer: &Address) -> Hash256 {
        let mut bytes = Vec::with_capacity(28);
        bytes.extend_from_slice(&slot.to_le_bytes());
        bytes.extend_from_slice(proposer.as_bytes());
        sha256(&bytes)
    }

    /// Verifies a stake seal: right slot leader, right proof.
    pub fn verify_seal(&self, proposer: &Address, seal: &Seal) -> bool {
        let Seal::Stake { slot, proof } = seal else {
            return false;
        };
        let leader = self.slot_leader(*slot);
        self.addresses[leader] == *proposer && *proof == self.slot_proof(*slot, proposer)
    }
}

/// A proof-of-stake validator.
#[derive(Debug)]
pub struct PosNode<M: StateMachine> {
    /// Shared peer machinery.
    pub core: NodeCore<M>,
    /// Lottery evaluations performed (the PoS "work" analogue for E5: one
    /// cheap hash per slot instead of `difficulty` hashes per block).
    pub lotteries_evaluated: u64,
    /// Blocks rejected for invalid stake seals.
    pub invalid_seals: u64,
    stake_table: StakeTable,
    slot_us: u64,
    my_index: usize,
}

impl<M: StateMachine> PosNode<M> {
    /// Creates a validator at index `my_index` of the stake table.
    ///
    /// # Panics
    ///
    /// Panics if the config is not `ProofOfStake` or the index is out of
    /// range.
    pub fn new(
        id: NodeId,
        genesis: Block,
        config: ChainConfig,
        machine: M,
        stake_table: StakeTable,
        my_index: usize,
    ) -> Self {
        let ConsensusKind::ProofOfStake { slot_us } = config.consensus else {
            panic!("PosNode requires a ProofOfStake consensus config")
        };
        assert!(my_index < stake_table.len(), "validator index in range");
        let address = stake_table.addresses[my_index];
        PosNode {
            core: NodeCore::new(id, address, genesis, config, machine),
            lotteries_evaluated: 0,
            invalid_seals: 0,
            stake_table,
            slot_us,
            my_index,
        }
    }

    fn schedule_next_slot(&self, ctx: &mut Ctx<'_, WireMsg>) {
        let now_us = ctx.now.as_micros();
        let next_slot = now_us / self.slot_us + 1;
        let delay = next_slot * self.slot_us - now_us;
        ctx.set_timer(SimDuration::from_micros(delay), next_slot);
    }
}

impl<M: StateMachine> Protocol for PosNode<M> {
    type Msg = WireMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        self.schedule_next_slot(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: WireMsg, ctx: &mut Ctx<'_, WireMsg>) {
        match msg {
            WireMsg::Block(block) => {
                if self
                    .stake_table
                    .verify_seal(&block.header.proposer, &block.header.seal)
                {
                    self.core.handle_block(block, Some(from), ctx);
                } else {
                    self.invalid_seals += 1;
                }
            }
            WireMsg::Tx(tx) => {
                self.core.handle_tx(tx, Some(from), ctx);
            }
            WireMsg::Pbft(_) => {}
            WireMsg::BlockRequest(hash) => {
                self.core.handle_block_request(hash, from, ctx);
            }
            WireMsg::BlockNotFound(hash) => {
                self.core.handle_block_not_found(hash, from, ctx);
            }
            WireMsg::SyncRequest { locator } => {
                self.core.handle_sync_request(&locator, from, ctx);
            }
            WireMsg::SyncResponse { blocks, tip_height } => {
                // The slot schedule is wall-clock driven; nothing to re-arm.
                self.core
                    .handle_sync_response(blocks, tip_height, from, ctx);
            }
        }
    }

    fn on_timer(&mut self, slot: u64, ctx: &mut Ctx<'_, WireMsg>) {
        if is_sync_tag(slot) {
            self.core.handle_sync_timer(slot, ctx);
            return;
        }
        self.lotteries_evaluated += 1;
        if self.stake_table.slot_leader(slot) == self.my_index {
            let proof = self.stake_table.slot_proof(slot, &self.core.address);
            let block = self.core.build_block(Seal::Stake { slot, proof }, ctx.now);
            self.core.handle_block(block, None, ctx);
        }
        self.schedule_next_slot(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> StakeTable {
        StakeTable::new(
            (0..4).map(Address::from_index).collect(),
            vec![10, 20, 30, 40],
            7,
        )
    }

    #[test]
    fn lottery_is_deterministic_and_stake_weighted() {
        let t = table();
        let mut counts = [0u64; 4];
        for slot in 0..20_000 {
            let leader = t.slot_leader(slot);
            assert_eq!(leader, t.slot_leader(slot), "deterministic");
            counts[leader] += 1;
        }
        // Validator 3 has 4x the stake of validator 0.
        let ratio = counts[3] as f64 / counts[0] as f64;
        assert!((ratio - 4.0).abs() < 0.6, "ratio {ratio}");
    }

    #[test]
    fn seal_verification() {
        let t = table();
        let slot = 5;
        let leader = t.slot_leader(slot);
        let proposer = Address::from_index(leader as u64);
        let good = Seal::Stake {
            slot,
            proof: t.slot_proof(slot, &proposer),
        };
        assert!(t.verify_seal(&proposer, &good));

        // Wrong proposer.
        let imposter = Address::from_index(((leader + 1) % 4) as u64);
        let forged = Seal::Stake {
            slot,
            proof: t.slot_proof(slot, &imposter),
        };
        assert!(!t.verify_seal(&imposter, &forged));

        // Wrong proof.
        let bad_proof = Seal::Stake {
            slot,
            proof: dcs_crypto::sha256(b"junk"),
        };
        assert!(!t.verify_seal(&proposer, &bad_proof));

        // Wrong seal kind.
        assert!(!t.verify_seal(&proposer, &Seal::None));
    }

    #[test]
    #[should_panic(expected = "total stake must be positive")]
    fn zero_stake_table_panics() {
        StakeTable::new(vec![Address::ZERO], vec![0], 1);
    }
}
