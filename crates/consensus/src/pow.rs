//! Nakamoto proof-of-work consensus (§2.4): each miner's time-to-next-block
//! is exponentially distributed with mean `difficulty / hash_power` — the
//! Poisson process that real hash grinding converges to — and difficulty
//! retargets every window to hold the block interval at its target.
//!
//! The substitution of sampled solve times for physical grinding is recorded
//! in DESIGN.md; the actual hash-target relation (`meets_pow_target`) is
//! exercised by [`mine_real`] and its tests/benches at low difficulty.

use crate::difficulty::next_difficulty;
use crate::node::{is_sync_tag, NodeCore, Recoverable};
use crate::WireMsg;
use dcs_chain::{ChainEvent, StateMachine};
use dcs_crypto::Address;
use dcs_net::{Ctx, NodeId, Protocol};
use dcs_primitives::{Block, BlockHeader, ChainConfig, ConsensusKind, Seal};
use dcs_sim::{SimDuration, SimTime};

/// A proof-of-work mining peer.
#[derive(Debug)]
pub struct PowNode<M: StateMachine> {
    /// Shared peer machinery (chain, mempool, gossip).
    pub core: NodeCore<M>,
    /// This miner's hash rate in hashes per simulated second.
    pub hash_power: f64,
    /// Cumulative simulated hash attempts — the "energy" metric of E5.
    pub work_expended: f64,
    mining_epoch: u64,
    mining_started: SimTime,
    initial_difficulty: u64,
    retarget_window: u64,
    target_interval_us: u64,
}

impl<M: StateMachine> PowNode<M> {
    /// Creates a miner.
    ///
    /// # Panics
    ///
    /// Panics if the config's consensus kind is not `ProofOfWork`, or
    /// `hash_power` is not positive.
    pub fn new(
        id: NodeId,
        address: Address,
        genesis: Block,
        config: ChainConfig,
        machine: M,
        hash_power: f64,
    ) -> Self {
        assert!(hash_power > 0.0, "hash power must be positive");
        let ConsensusKind::ProofOfWork {
            initial_difficulty,
            retarget_window,
            target_interval_us,
        } = config.consensus
        else {
            panic!("PowNode requires a ProofOfWork consensus config")
        };
        PowNode {
            core: NodeCore::new(id, address, genesis, config, machine),
            hash_power,
            work_expended: 0.0,
            mining_epoch: 0,
            mining_started: SimTime::ZERO,
            initial_difficulty,
            retarget_window,
            target_interval_us,
        }
    }

    /// The difficulty this miner's next block must carry.
    pub fn current_difficulty(&self) -> u64 {
        next_difficulty(
            &self.core.chain,
            self.initial_difficulty,
            self.retarget_window,
            self.target_interval_us,
        )
    }

    fn settle_work(&mut self, now: SimTime) {
        let elapsed = now.saturating_since(self.mining_started).as_secs_f64();
        self.work_expended += self.hash_power * elapsed;
        self.mining_started = now;
    }

    fn restart_mining(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        self.settle_work(ctx.now);
        self.mining_epoch += 1;
        let difficulty = self.current_difficulty();
        let mean_secs = difficulty as f64 / self.hash_power;
        let solve = ctx.rng.exp(mean_secs);
        ctx.set_timer(SimDuration::from_secs_f64(solve), self.mining_epoch);
    }
}

impl<M: StateMachine> Protocol for PowNode<M> {
    type Msg = WireMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        self.mining_started = ctx.now;
        self.restart_mining(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: WireMsg, ctx: &mut Ctx<'_, WireMsg>) {
        match msg {
            WireMsg::Block(block) => {
                if let Some(event) = self.core.handle_block(block, Some(from), ctx) {
                    // Mining restarts whenever the tip moves (the miner must
                    // build on the new best block).
                    if matches!(
                        event,
                        ChainEvent::Extended { .. } | ChainEvent::Reorg { .. }
                    ) {
                        self.restart_mining(ctx);
                    }
                }
            }
            WireMsg::Tx(tx) => {
                self.core.handle_tx(tx, Some(from), ctx);
            }
            WireMsg::Pbft(_) => {}
            WireMsg::BlockRequest(hash) => {
                self.core.handle_block_request(hash, from, ctx);
            }
            WireMsg::BlockNotFound(hash) => {
                self.core.handle_block_not_found(hash, from, ctx);
            }
            WireMsg::SyncRequest { locator } => {
                self.core.handle_sync_request(&locator, from, ctx);
            }
            WireMsg::SyncResponse { blocks, tip_height } => {
                if self
                    .core
                    .handle_sync_response(blocks, tip_height, from, ctx)
                {
                    self.restart_mining(ctx); // mine on the caught-up tip
                }
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, WireMsg>) {
        if is_sync_tag(tag) {
            self.core.handle_sync_timer(tag, ctx);
            return;
        }
        if tag != self.mining_epoch {
            return; // stale mining attempt: the tip moved since it was set
        }
        // Block found.
        let difficulty = self.current_difficulty();
        let seal = Seal::Work {
            nonce: ctx.rng.next_u64(),
            difficulty,
        };
        let block = self.core.build_block(seal, ctx.now);
        self.core.handle_block(block, None, ctx);
        self.restart_mining(ctx);
    }
}

impl<M: StateMachine + Default> Recoverable for PowNode<M> {
    fn on_crash(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        // Book the hash work done up to the crash; none accrues while down.
        self.settle_work(ctx.now);
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        self.core.rebuild_from_store(M::default());
        self.mining_started = ctx.now; // downtime is not hash work
        self.restart_mining(ctx);
        self.core.begin_catchup(ctx);
    }
}

/// Actually grinds nonces until the header hash meets its difficulty target —
/// the real thing, for tests, benches, and the immutability demo. Returns
/// the sealed header and the number of attempts.
///
/// # Panics
///
/// Panics if `difficulty` is zero.
pub fn mine_real(mut header: BlockHeader, difficulty: u64, start_nonce: u64) -> (BlockHeader, u64) {
    assert!(difficulty > 0, "difficulty must be positive");
    let mut attempts = 0;
    let mut nonce = start_nonce;
    loop {
        header.seal = Seal::Work { nonce, difficulty };
        attempts += 1;
        if header.meets_pow_target() {
            return (header, attempts);
        }
        nonce = nonce.wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_crypto::Hash256;

    #[test]
    fn mine_real_finds_valid_seal() {
        let header = BlockHeader::new(Hash256::ZERO, 1, 0, Address::from_index(1), Seal::None);
        let (mined, attempts) = mine_real(header, 64, 0);
        assert!(mined.meets_pow_target());
        assert!(attempts >= 1);
        // Expected attempts ≈ difficulty; allow a wide statistical band.
        assert!(attempts < 64 * 20, "attempts {attempts}");
    }

    #[test]
    fn mined_header_fails_at_higher_difficulty() {
        let header = BlockHeader::new(Hash256::ZERO, 1, 0, Address::from_index(1), Seal::None);
        let (mined, _) = mine_real(header, 16, 0);
        // Reinterpret the same nonce at a difficulty 2^16 times higher: the
        // probability it still passes is ~2^-16.
        let harder = BlockHeader {
            seal: match mined.seal {
                Seal::Work { nonce, .. } => Seal::Work {
                    nonce,
                    difficulty: 16 << 16,
                },
                _ => unreachable!(),
            },
            ..mined
        };
        assert!(!harder.meets_pow_target());
    }

    #[test]
    fn immutability_rewriting_history_requires_remining() {
        // Build a 5-block mined chain, then tamper with block 2: every
        // subsequent block's parent link breaks, and each must be re-mined
        // (the paper's §2.2 immutability argument, made concrete).
        let difficulty = 32;
        let mut headers = Vec::new();
        let mut parent = Hash256::ZERO;
        for h in 1..=5u64 {
            let hdr = BlockHeader::new(parent, h, h, Address::from_index(h), Seal::None);
            let (mined, _) = mine_real(hdr, difficulty, 1000 * h);
            parent = mined.hash();
            headers.push(mined);
        }
        // Tamper: change block 2's proposer without re-mining.
        let mut tampered = headers[1].clone();
        tampered.proposer = Address::from_index(99);
        // Its own seal is now (almost surely) invalid...
        assert!(!tampered.meets_pow_target());
        // ...and even after re-mining it, block 3 no longer links to it.
        let (remined, _) = mine_real(tampered, difficulty, 7777);
        assert_ne!(headers[2].parent, remined.hash());
    }
}
