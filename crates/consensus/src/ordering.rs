//! A Hyperledger-style ordering service (§2.4, \[2\], \[18\]): a designated
//! orderer sequences incoming transactions into batches; committing peers
//! validate and apply. "There is thus no possibility of branching ... and no
//! branch selection algorithm is therefore required" — the CS corner of the
//! DCS triangle, traded against decentralization (one or few orderers).
//!
//! Supports a static leader (`rotate_every = 0`) or round-robin rotation
//! every N blocks among all peers.

use crate::node::{is_sync_tag, NodeCore};
use crate::WireMsg;
use dcs_chain::StateMachine;
use dcs_crypto::Address;
use dcs_net::{Ctx, NodeId, Protocol};
use dcs_primitives::{Block, ChainConfig, ConsensusKind, Seal};
use dcs_sim::SimDuration;

/// A peer in an ordering-service network. All peers gossip transactions;
/// whichever peer currently holds the orderer role cuts batches.
#[derive(Debug)]
pub struct OrderingNode<M: StateMachine> {
    /// Shared peer machinery.
    pub core: NodeCore<M>,
    batch_size: usize,
    batch_timeout_us: u64,
    rotate_every: u64,
    node_count: usize,
}

impl<M: StateMachine> OrderingNode<M> {
    /// Creates a peer; `node_count` is the network size (for rotation).
    ///
    /// # Panics
    ///
    /// Panics if the config is not `Ordering`.
    pub fn new(
        id: NodeId,
        address: Address,
        genesis: Block,
        config: ChainConfig,
        machine: M,
        node_count: usize,
    ) -> Self {
        let ConsensusKind::Ordering {
            batch_size,
            batch_timeout_us,
            rotate_every,
        } = config.consensus
        else {
            panic!("OrderingNode requires an Ordering consensus config")
        };
        OrderingNode {
            core: NodeCore::new(id, address, genesis, config, machine),
            batch_size,
            batch_timeout_us,
            rotate_every,
            node_count,
        }
    }

    /// Which peer orders the block at `height`.
    pub fn orderer_for_height(&self, height: u64) -> NodeId {
        match height.checked_div(self.rotate_every) {
            // rotate_every == 0 means a fixed orderer.
            None => NodeId(0),
            Some(turn) => NodeId((turn % self.node_count as u64) as usize),
        }
    }

    fn is_my_turn(&self) -> bool {
        self.orderer_for_height(self.core.chain.height() + 1) == self.core.id
    }

    fn pending(&self) -> usize {
        self.core.mempool.len()
    }

    fn try_cut_batch(&mut self, ctx: &mut Ctx<'_, WireMsg>, force: bool) {
        if !self.is_my_turn() {
            return;
        }
        let pending = self.pending();
        if pending == 0 {
            return;
        }
        if pending >= self.batch_size || force {
            let height = self.core.chain.height() + 1;
            let seal = Seal::Authority {
                view: 0,
                sequence: height,
                votes: 1,
            };
            let block = self.core.build_block(seal, ctx.now);
            self.core.handle_block(block, None, ctx);
            // Immediately try again: a backlog larger than one batch should
            // drain at full rate rather than one batch per timeout.
            self.try_cut_batch(ctx, false);
        }
    }

    fn schedule_tick(&self, ctx: &mut Ctx<'_, WireMsg>) {
        ctx.set_timer(SimDuration::from_micros(self.batch_timeout_us), 0);
    }
}

impl<M: StateMachine> Protocol for OrderingNode<M> {
    type Msg = WireMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        self.schedule_tick(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: WireMsg, ctx: &mut Ctx<'_, WireMsg>) {
        match msg {
            WireMsg::Block(block) => {
                self.core.handle_block(block, Some(from), ctx);
            }
            WireMsg::Tx(tx) => {
                if self.core.handle_tx(tx, Some(from), ctx) {
                    self.try_cut_batch(ctx, false);
                }
            }
            WireMsg::Pbft(_) => {}
            WireMsg::BlockRequest(hash) => {
                self.core.handle_block_request(hash, from, ctx);
            }
            WireMsg::BlockNotFound(hash) => {
                self.core.handle_block_not_found(hash, from, ctx);
            }
            WireMsg::SyncRequest { locator } => {
                self.core.handle_sync_request(&locator, from, ctx);
            }
            WireMsg::SyncResponse { blocks, tip_height } => {
                if self
                    .core
                    .handle_sync_response(blocks, tip_height, from, ctx)
                {
                    // The orderer role may have rotated onto us at the new
                    // height; the regular tick picks that up.
                    self.try_cut_batch(ctx, false);
                }
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, WireMsg>) {
        // Sync retries share the timer queue; route them before the batch
        // tick (which deliberately ignores its tag).
        if is_sync_tag(tag) {
            self.core.handle_sync_timer(tag, ctx);
            return;
        }
        // Batch timeout: cut whatever is pending, then re-arm.
        self.try_cut_batch(ctx, true);
        self.schedule_tick(ctx);
    }
}
