//! 51%-attack analysis (§2.2, §2.4): the paper grounds immutability in the
//! claim that rewriting history "takes an attacker a large volume of
//! computational resources (e.g., more than 51% of the entire network)".
//! This module quantifies that claim two ways — Nakamoto's analytical
//! formula and a Monte Carlo race simulation — compared head-to-head in
//! experiments E6 and E13.

use dcs_sim::Rng;

/// Nakamoto's closed-form probability that an attacker controlling fraction
/// `q` of hash power eventually rewrites a transaction buried under `z`
/// confirmations (Bitcoin whitepaper, §11).
///
/// Returns 1.0 when `q >= 0.5` (the attacker always wins eventually).
///
/// # Panics
///
/// Panics if `q` is not in `[0, 1]`.
pub fn nakamoto_success_probability(q: f64, z: u32) -> f64 {
    assert!(
        (0.0..=1.0).contains(&q),
        "attacker share must be in [0,1], got {q}"
    );
    if q <= 0.0 {
        return 0.0;
    }
    if q >= 0.5 {
        return 1.0;
    }
    let p = 1.0 - q;
    let lambda = z as f64 * q / p;
    let mut sum = 0.0;
    let mut poisson = (-lambda).exp(); // P(k=0)
    for k in 0..=z {
        let catch_up = 1.0 - (q / p).powi((z - k) as i32);
        sum += poisson * catch_up;
        poisson *= lambda / (k as f64 + 1.0);
    }
    (1.0 - sum).clamp(0.0, 1.0)
}

/// Outcome of a Monte Carlo double-spend race.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaceResult {
    /// Fraction of trials where the attacker's private chain overtook the
    /// honest chain.
    pub success_rate: f64,
    /// Mean attacker lead/deficit when the race was decided.
    pub mean_blocks_to_decide: f64,
}

/// Simulates the private-mining race under Nakamoto's model: the attacker
/// forks at the parent of the block holding the victim transaction, the
/// merchant waits until that block has `z` confirmations (z honest blocks
/// including it), and the attacker keeps mining privately until *catching
/// up* (Nakamoto counts reaching a tie as success, since the attacker can
/// then release and win the race with its next block) or falling
/// `give_up_deficit` blocks behind.
///
/// Each new block belongs to the attacker with probability `q` — the
/// standard memoryless model of competing Poisson miners.
pub fn simulate_double_spend(
    q: f64,
    z: u32,
    trials: u32,
    give_up_deficit: i64,
    seed: u64,
) -> RaceResult {
    assert!(
        (0.0..=1.0).contains(&q),
        "attacker share must be in [0,1], got {q}"
    );
    let mut rng = Rng::seed_from(seed);
    let mut successes = 0u32;
    let mut total_blocks = 0u64;
    for _ in 0..trials {
        // Lead = attacker chain length minus honest chain length, measured
        // from the fork point. Both start at the fork, so lead starts at 0.
        let mut lead: i64 = 0;
        let mut honest_blocks = 0u32;
        let mut blocks = 0u64;
        let decided = loop {
            blocks += 1;
            if rng.chance(q) {
                lead += 1;
            } else {
                lead -= 1;
                honest_blocks += 1;
            }
            // Merchant accepts once the honest chain holds z confirmations;
            // from then on, the attacker succeeds on catching up (tie).
            if honest_blocks >= z && lead >= 0 {
                break true;
            }
            if lead <= -give_up_deficit {
                break false;
            }
        };
        if decided {
            successes += 1;
        }
        total_blocks += blocks;
    }
    RaceResult {
        success_rate: f64::from(successes) / f64::from(trials),
        mean_blocks_to_decide: total_blocks as f64 / f64::from(trials),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_boundaries() {
        assert_eq!(nakamoto_success_probability(0.0, 6), 0.0);
        assert_eq!(nakamoto_success_probability(0.5, 6), 1.0);
        assert_eq!(nakamoto_success_probability(0.9, 1), 1.0);
    }

    #[test]
    fn analytic_matches_whitepaper_table() {
        // Nakamoto's published values: q=0.1, z=5 → 0.0009137;
        // q=0.3, z=5 → 0.1773523.
        let p_q10_z5 = nakamoto_success_probability(0.1, 5);
        assert!((p_q10_z5 - 0.0009137).abs() < 0.0001, "{p_q10_z5}");
        let p_q30_z5 = nakamoto_success_probability(0.3, 5);
        assert!((p_q30_z5 - 0.1773523).abs() < 0.001, "{p_q30_z5}");
        // q=0.1, z=0 → 1.0 (unconfirmed txs are trivially reversible).
        assert!((nakamoto_success_probability(0.1, 0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deeper_confirmations_monotonically_safer() {
        let mut last = 1.1;
        for z in 0..10 {
            let p = nakamoto_success_probability(0.25, z);
            assert!(p < last, "z={z}: {p} !< {last}");
            last = p;
        }
    }

    #[test]
    fn simulation_tracks_analytic_formula() {
        for (q, z) in [(0.1, 2), (0.2, 3), (0.3, 4)] {
            let analytic = nakamoto_success_probability(q, z);
            let sim = simulate_double_spend(q, z, 20_000, 60, 42);
            assert!(
                (sim.success_rate - analytic).abs() < 0.02,
                "q={q} z={z}: sim {} vs analytic {analytic}",
                sim.success_rate
            );
        }
    }

    #[test]
    fn majority_attacker_always_wins_in_simulation() {
        let sim = simulate_double_spend(0.6, 3, 2_000, 200, 7);
        assert!(sim.success_rate > 0.98, "got {}", sim.success_rate);
    }

    #[test]
    fn tiny_attacker_almost_never_wins() {
        let sim = simulate_double_spend(0.05, 6, 5_000, 40, 9);
        assert!(sim.success_rate < 0.001, "got {}", sim.success_rate);
    }
}
