//! Proof-of-elapsed-time (§5.4, \[41\]): every peer asks its trusted execution
//! environment for a random wait; the first to finish waiting proposes.
//! Consensus-visible behaviour is identical to proof-of-work's exponential
//! race — but no hashing is burned, which is exactly Sawtooth's pitch.
//!
//! The TEE is simulated (DESIGN.md substitution): waits are exponential
//! draws from the peer's own RNG, and a `cheat_factor < 1.0` models a
//! compromised enclave that shortens its waits — used to reproduce the PoET
//! security concern analyzed in \[41\].

use crate::node::{is_sync_tag, NodeCore};
use crate::WireMsg;
use dcs_chain::{ChainEvent, StateMachine};
use dcs_crypto::Address;
use dcs_net::{Ctx, NodeId, Protocol};
use dcs_primitives::{Block, ChainConfig, ConsensusKind, Seal};
use dcs_sim::SimDuration;

/// A proof-of-elapsed-time peer.
#[derive(Debug)]
pub struct PoetNode<M: StateMachine> {
    /// Shared peer machinery.
    pub core: NodeCore<M>,
    /// TEE wait requests made (the PoET "work" analogue for E5).
    pub waits_drawn: u64,
    /// 1.0 = honest enclave; 0.5 = waits halved (compromised SGX).
    pub cheat_factor: f64,
    mean_wait_us: u64,
    epoch: u64,
}

impl<M: StateMachine> PoetNode<M> {
    /// Creates an honest PoET peer.
    ///
    /// # Panics
    ///
    /// Panics if the config is not `ProofOfElapsedTime`.
    pub fn new(
        id: NodeId,
        address: Address,
        genesis: Block,
        config: ChainConfig,
        machine: M,
    ) -> Self {
        let ConsensusKind::ProofOfElapsedTime { mean_wait_us } = config.consensus else {
            panic!("PoetNode requires a ProofOfElapsedTime consensus config")
        };
        PoetNode {
            core: NodeCore::new(id, address, genesis, config, machine),
            waits_drawn: 0,
            cheat_factor: 1.0,
            mean_wait_us,
            epoch: 0,
        }
    }

    fn draw_wait(&mut self, ctx: &mut Ctx<'_, WireMsg>) -> SimDuration {
        self.waits_drawn += 1;
        let mean = self.mean_wait_us as f64 * self.cheat_factor;
        SimDuration::from_secs_f64(ctx.rng.exp(mean / 1_000_000.0))
    }

    fn restart_wait(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        self.epoch += 1;
        let wait = self.draw_wait(ctx);
        ctx.set_timer(wait, self.epoch);
    }
}

impl<M: StateMachine> Protocol for PoetNode<M> {
    type Msg = WireMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        self.restart_wait(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: WireMsg, ctx: &mut Ctx<'_, WireMsg>) {
        match msg {
            WireMsg::Block(block) => {
                if let Some(event) = self.core.handle_block(block, Some(from), ctx) {
                    if matches!(
                        event,
                        ChainEvent::Extended { .. } | ChainEvent::Reorg { .. }
                    ) {
                        self.restart_wait(ctx);
                    }
                }
            }
            WireMsg::Tx(tx) => {
                self.core.handle_tx(tx, Some(from), ctx);
            }
            WireMsg::Pbft(_) => {}
            WireMsg::BlockRequest(hash) => {
                self.core.handle_block_request(hash, from, ctx);
            }
            WireMsg::BlockNotFound(hash) => {
                self.core.handle_block_not_found(hash, from, ctx);
            }
            WireMsg::SyncRequest { locator } => {
                self.core.handle_sync_request(&locator, from, ctx);
            }
            WireMsg::SyncResponse { blocks, tip_height } => {
                if self
                    .core
                    .handle_sync_response(blocks, tip_height, from, ctx)
                {
                    self.restart_wait(ctx); // wait from the caught-up tip
                }
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, WireMsg>) {
        if is_sync_tag(tag) {
            self.core.handle_sync_timer(tag, ctx);
            return;
        }
        if tag != self.epoch {
            return; // superseded: a block arrived while we were waiting
        }
        let seal = Seal::ElapsedTime { wait_us: 0 };
        let block = self.core.build_block(seal, ctx.now);
        self.core.handle_block(block, None, ctx);
        self.restart_wait(ctx);
    }
}
