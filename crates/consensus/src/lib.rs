//! The system layer (§4.4 of the paper): every consensus protocol family the
//! paper surveys (§2.4), implemented as network protocols over `dcs-net`:
//!
//! * [`pow`] — Nakamoto proof-of-work with Bitcoin-style difficulty
//!   retargeting (block arrival modeled as a Poisson process, the standard
//!   analytical model of mining).
//! * [`pos`] — slot-based proof-of-stake with a deterministic stake-weighted
//!   lottery (PeerCoin-style, \[13\]).
//! * [`poet`] — proof-of-elapsed-time: a trusted random-wait lottery
//!   (Hyperledger Sawtooth / Intel SGX, \[41\]; the TEE is simulated).
//! * [`ordering`] — a Hyperledger-style ordering service with solo or
//!   rotating leaders (\[2\], \[18\]).
//! * [`pbft`] — three-phase Practical Byzantine Fault Tolerance with view
//!   changes.
//! * [`ng`] — Bitcoin-NG key blocks + microblocks (\[14\]).
//!
//! Supporting modules: [`node`] (the common peer core: chain + mempool +
//! gossip), [`mempool`], [`difficulty`] (retargeting), and [`attack`]
//! (51%-attack analysis, §2.4's immutability argument, experiments E6/E13).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attack;
pub mod difficulty;
pub mod mempool;
pub mod metrics;
pub mod ng;
pub mod node;
pub mod ordering;
pub mod pbft;
pub mod poet;
pub mod pos;
pub mod pow;

pub use mempool::{InsertOutcome, Mempool, MEMPOOL_SHARDS};
pub use metrics::{MempoolMetrics, PbftMetrics};
pub use node::{is_sync_tag, NodeCore, Recoverable, TAG_SYNC};

use dcs_crypto::Hash256;
use dcs_primitives::{Block, SealedTx, Transaction, TxPayload};
use std::sync::Arc;

/// Messages exchanged by all consensus protocols. Blocks and transactions
/// are reference-counted so gossip re-forwarding never deep-copies bodies.
#[derive(Debug, Clone)]
pub enum WireMsg {
    /// A client transaction sealed with its content id — the in-memory
    /// analogue of computing the id once at decode time. Every hop reuses
    /// the carried id for gossip dedup instead of re-hashing the body.
    Tx(SealedTx),
    /// A full block announcement.
    Block(Arc<Block>),
    /// A PBFT protocol message.
    Pbft(pbft::PbftMsg),
    /// A request to send the block with this hash back to the asker — the
    /// minimal sync protocol: a peer that orphans a block walks the missing
    /// ancestry back to a common ancestor (how healed partitions reconverge).
    BlockRequest(Hash256),
    /// The negative reply to a [`WireMsg::BlockRequest`] the asked peer
    /// cannot serve (unknown hash, or a pruning node dropped the body) —
    /// lets the requester re-target another peer instead of waiting on a
    /// reply that never comes.
    BlockNotFound(Hash256),
    /// A catch-up range request: `locator` is the asker's canonical chain
    /// sampled newest-first at exponentially growing gaps (Bitcoin-style).
    /// The responder finds the highest locator entry on its own canonical
    /// chain and replies with the blocks above it.
    SyncRequest {
        /// Exponentially spaced canonical hashes, newest first.
        locator: Vec<Hash256>,
    },
    /// A batch of canonical blocks answering a [`WireMsg::SyncRequest`],
    /// plus the responder's tip height so the asker knows whether to keep
    /// paging.
    SyncResponse {
        /// Consecutive canonical blocks, oldest first (bounded batch).
        blocks: Vec<Arc<Block>>,
        /// The responder's canonical tip height.
        tip_height: u64,
    },
}

/// Cheap wire-size estimate in bytes, used for bandwidth accounting without
/// re-encoding bodies on every gossip hop. (Experiments that measure exact
/// sizes — e.g. E10 — call `encoded_len` on the payloads directly.)
pub fn wire_size(msg: &WireMsg) -> usize {
    match msg {
        WireMsg::Block(b) => approx_block_size(b),
        WireMsg::Tx(tx) => approx_tx_size(tx),
        WireMsg::Pbft(m) => match m {
            pbft::PbftMsg::PrePrepare { block, .. } => {
                200 + block.txs.iter().map(approx_tx_size).sum::<usize>()
            }
            _ => 100,
        },
        WireMsg::BlockRequest(_) | WireMsg::BlockNotFound(_) => 40,
        WireMsg::SyncRequest { locator } => 16 + 32 * locator.len(),
        WireMsg::SyncResponse { blocks, .. } => {
            16 + blocks.iter().map(|b| approx_block_size(b)).sum::<usize>()
        }
    }
}

/// Approximate encoded size of one block (header plus body).
fn approx_block_size(b: &Block) -> usize {
    180 + b.txs.iter().map(approx_tx_size).sum::<usize>()
}

/// Approximate encoded size of one transaction.
pub fn approx_tx_size(tx: &Transaction) -> usize {
    match tx {
        Transaction::Coinbase { .. } => 45,
        Transaction::Utxo(u) => {
            40 + u
                .inputs
                .iter()
                .map(|i| 40 + if i.auth.is_some() { 2_300 } else { 0 })
                .sum::<usize>()
                + u.outputs.len() * 28
        }
        Transaction::Account(a) => {
            let payload = match &a.payload {
                TxPayload::Transfer => 0,
                TxPayload::Deploy(c) => c.len(),
                TxPayload::Call(d) => d.len(),
                TxPayload::Data(d) => d.len(),
            };
            80 + payload + if a.auth.is_some() { 2_300 } else { 0 }
        }
    }
}

/// A convenience id for gossip dedup: the hash of the thing being gossiped.
pub fn gossip_id(msg: &WireMsg) -> Option<Hash256> {
    match msg {
        WireMsg::Block(b) => Some(b.hash()),
        WireMsg::Tx(tx) => Some(tx.id()),
        // PBFT and sync messages are point-to-point/one-shot.
        WireMsg::Pbft(_)
        | WireMsg::BlockRequest(_)
        | WireMsg::BlockNotFound(_)
        | WireMsg::SyncRequest { .. }
        | WireMsg::SyncResponse { .. } => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_crypto::Address;
    use dcs_primitives::AccountTx;

    #[test]
    fn tx_size_estimates_track_reality_loosely() {
        let tx = Transaction::Account(AccountTx::transfer(
            Address::from_index(1),
            Address::from_index(2),
            5,
            0,
        ));
        let approx = approx_tx_size(&tx);
        let exact = tx.encoded_len();
        assert!(
            (approx as f64 / exact as f64) > 0.5 && (approx as f64 / exact as f64) < 2.0,
            "approx {approx} vs exact {exact}"
        );
    }

    #[test]
    fn gossip_ids_match_content_hashes() {
        let tx = Arc::new(Transaction::Coinbase {
            to: Address::ZERO,
            value: 1,
            height: 0,
        });
        let sealed = SealedTx::new(tx.clone());
        assert_eq!(gossip_id(&WireMsg::Tx(sealed)), Some(tx.id()));
    }
}
