//! Practical Byzantine Fault Tolerance (§2.4: Hyperledger's "committing
//! peers ... must then execute a Practical Byzantine Fault-Tolerance
//! protocol"): the classic three-phase protocol — pre-prepare, prepare,
//! commit — over a fully connected consortium of `n = 3f + 1` peers,
//! tolerating `f` faulty ones, with view changes to replace a failed leader.
//!
//! Peers communicate point-to-point (consortium networks are small and fully
//! connected), not by gossip. Fail-stop faults are modeled with the
//! [`PbftNode::crashed`] flag; equivocation is not modeled (the simulator
//! drives all honest peers from the same implementation).

use crate::node::{is_sync_tag, NodeCore, Recoverable};
use crate::WireMsg;
use dcs_chain::StateMachine;
use dcs_crypto::{Address, Hash256};
use dcs_net::{Ctx, NodeId, Protocol};
use dcs_primitives::{Block, ChainConfig, ConsensusKind, Seal};
use dcs_sim::SimDuration;
use dcs_trace::{PbftPhase, TraceEvent};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// PBFT protocol messages.
#[derive(Debug, Clone)]
pub enum PbftMsg {
    /// Leader's proposal for sequence `seq` in `view`.
    PrePrepare {
        /// Current view.
        view: u64,
        /// Sequence number (block height).
        seq: u64,
        /// The proposed block.
        block: Arc<Block>,
    },
    /// A replica's agreement that the proposal for `(view, seq)` is `digest`.
    Prepare {
        /// Current view.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// Block hash being prepared.
        digest: Hash256,
    },
    /// A replica's commitment after seeing a prepared quorum.
    Commit {
        /// Current view.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// Block hash being committed.
        digest: Hash256,
    },
    /// A vote to abandon the current view for `new_view`.
    ViewChange {
        /// The proposed new view.
        new_view: u64,
    },
}

const TAG_BATCH: u64 = 1 << 40;
const TAG_VIEW: u64 = 2 << 40;

#[derive(Debug, Default)]
struct SeqState {
    candidate: Option<Arc<Block>>,
    prepares: BTreeSet<NodeId>,
    commits: BTreeSet<NodeId>,
    sent_prepare: bool,
    sent_commit: bool,
}

/// A PBFT replica.
#[derive(Debug)]
pub struct PbftNode<M: StateMachine> {
    /// Shared peer machinery.
    pub core: NodeCore<M>,
    /// Fail-stop switch: a crashed replica ignores all events.
    pub crashed: bool,
    /// View changes this replica has executed.
    pub view_changes: u64,
    n: usize,
    view: u64,
    state: BTreeMap<u64, SeqState>,
    view_votes: BTreeMap<u64, BTreeSet<NodeId>>,
    view_timer_epoch: u64,
    batch_timeout_us: u64,
    view_timeout_us: u64,
    /// The sequence the leader currently has a proposal out for.
    in_flight: Option<u64>,
    metrics: Option<crate::PbftMetrics>,
}

impl<M: StateMachine> PbftNode<M> {
    /// Creates replica `id` of an `n`-peer consortium.
    ///
    /// # Panics
    ///
    /// Panics if the config is not `Pbft` or `n < 4` (PBFT needs `3f+1 ≥ 4`).
    pub fn new(
        id: NodeId,
        address: Address,
        genesis: Block,
        config: ChainConfig,
        machine: M,
        n: usize,
    ) -> Self {
        assert!(n >= 4, "PBFT needs at least 4 replicas, got {n}");
        let ConsensusKind::Pbft {
            batch_timeout_us,
            view_timeout_us,
            ..
        } = config.consensus
        else {
            // Constructor misuse is a programmer error, not a peer input.
            panic!("PbftNode requires a Pbft consensus config") // dcs-lint: allow(panic-path)
        };
        PbftNode {
            core: NodeCore::new(id, address, genesis, config, machine),
            crashed: false,
            view_changes: 0,
            n,
            view: 0,
            state: BTreeMap::new(),
            view_votes: BTreeMap::new(),
            view_timer_epoch: 0,
            batch_timeout_us,
            view_timeout_us,
            in_flight: None,
            metrics: None,
        }
    }

    /// Installs live metrics: the shared peer series (chain, mempool) via
    /// [`NodeCore::set_metrics`] plus this replica's view gauge and phase
    /// counters. Counter bumps sit beside the existing trace emissions and
    /// never gate protocol decisions.
    pub fn set_metrics(&mut self, registry: &dcs_metrics::Registry) {
        self.core.set_metrics(registry);
        self.metrics = Some(crate::PbftMetrics::register(
            registry,
            &self.core.id.0.to_string(),
        ));
    }

    fn record_phase(&self, phase: PbftPhase) {
        if let Some(m) = &self.metrics {
            m.record_phase(phase, self.view);
        }
    }

    /// Maximum faulty replicas tolerated: `f = (n - 1) / 3`.
    pub fn f(&self) -> usize {
        (self.n - 1) / 3
    }

    fn quorum(&self) -> usize {
        2 * self.f() + 1
    }

    /// The leader of a view: round-robin over replicas.
    pub fn leader_of(&self, view: u64) -> NodeId {
        NodeId((view % self.n as u64) as usize)
    }

    /// The current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    fn i_am_leader(&self) -> bool {
        self.leader_of(self.view) == self.core.id
    }

    fn send_all(&self, msg: PbftMsg, ctx: &mut Ctx<'_, WireMsg>) {
        let wrapped = WireMsg::Pbft(msg);
        let size = crate::wire_size(&wrapped);
        for i in 0..self.n {
            let to = NodeId(i);
            if to != self.core.id {
                ctx.send(to, wrapped.clone(), size);
            }
        }
    }

    fn next_seq(&self) -> u64 {
        self.core.chain.height() + 1
    }

    fn try_propose(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        if !self.i_am_leader() || self.in_flight.is_some() || self.core.mempool.is_empty() {
            return;
        }
        let seq = self.next_seq();
        let seal = Seal::Authority {
            view: self.view,
            sequence: seq,
            votes: self.quorum() as u32,
        };
        let block = self.core.build_block(seal, ctx.now);
        self.in_flight = Some(seq);
        self.record_phase(PbftPhase::PrePrepare);
        self.core.tracer.emit(
            ctx.now.as_micros(),
            TraceEvent::Pbft {
                phase: PbftPhase::PrePrepare,
                view: self.view,
                seq,
            },
        );
        // The leader is its own first prepare voter.
        let digest = block.hash();
        let entry = self.state.entry(seq).or_default();
        entry.candidate = Some(block.clone());
        entry.prepares.insert(self.core.id);
        entry.sent_prepare = true;
        self.send_all(
            PbftMsg::PrePrepare {
                view: self.view,
                seq,
                block,
            },
            ctx,
        );
        let view = self.view;
        self.send_all(PbftMsg::Prepare { view, seq, digest }, ctx);
        self.check_quorums(seq, ctx);
    }

    fn check_quorums(&mut self, seq: u64, ctx: &mut Ctx<'_, WireMsg>) {
        let quorum = self.quorum();
        let view = self.view;
        let Some(entry) = self.state.get_mut(&seq) else {
            return;
        };
        let Some(block) = entry.candidate.clone() else {
            return;
        };
        let digest = block.hash();

        if entry.prepares.len() >= quorum && !entry.sent_commit {
            entry.sent_commit = true;
            entry.commits.insert(self.core.id);
            if let Some(m) = &self.metrics {
                m.record_phase(PbftPhase::Commit, view);
            }
            self.core.tracer.emit(
                ctx.now.as_micros(),
                TraceEvent::Pbft {
                    phase: PbftPhase::Commit,
                    view,
                    seq,
                },
            );
            self.send_all(PbftMsg::Commit { view, seq, digest }, ctx);
        }

        let Some(entry) = self.state.get_mut(&seq) else {
            return;
        };
        if entry.commits.len() >= quorum && seq == self.next_seq() {
            // Commit-time linkage check: the proposal must extend our tip
            // (it always does under an honest leader; a stale cross-view
            // remnant is dropped here).
            if block.header.parent != self.core.chain.tip_hash() {
                self.state.remove(&seq);
                return;
            }
            // Committed: apply to the chain and move on.
            self.state.remove(&seq);
            if self.in_flight == Some(seq) {
                self.in_flight = None;
            }
            self.core.handle_block(block, None, ctx);
            // Progress achieved: reset the view-change timer.
            self.arm_view_timer(ctx);
            self.try_propose(ctx);
            // A buffered out-of-order proposal may now be committable.
            self.check_quorums(seq + 1, ctx);
        }
    }

    fn arm_view_timer(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        self.view_timer_epoch += 1;
        ctx.set_timer(
            SimDuration::from_micros(self.view_timeout_us),
            TAG_VIEW | self.view_timer_epoch,
        );
    }

    fn enter_view(&mut self, new_view: u64, ctx: &mut Ctx<'_, WireMsg>) {
        self.view = new_view;
        self.view_changes += 1;
        self.record_phase(PbftPhase::ViewChange);
        self.core.tracer.emit(
            ctx.now.as_micros(),
            TraceEvent::Pbft {
                phase: PbftPhase::ViewChange,
                view: new_view,
                seq: 0,
            },
        );
        self.in_flight = None;
        self.state.clear();
        self.view_votes.retain(|v, _| *v > new_view);
        self.arm_view_timer(ctx);
        self.try_propose(ctx);
    }
}

impl<M: StateMachine> Protocol for PbftNode<M> {
    type Msg = WireMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        if self.crashed {
            return;
        }
        ctx.set_timer(SimDuration::from_micros(self.batch_timeout_us), TAG_BATCH);
        self.arm_view_timer(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: WireMsg, ctx: &mut Ctx<'_, WireMsg>) {
        if self.crashed {
            return;
        }
        match msg {
            WireMsg::Tx(tx) => {
                self.core.handle_tx(tx, Some(from), ctx);
                self.try_propose(ctx);
            }
            WireMsg::Block(block) => {
                // Fallback sync path: peers whose commit quorum completed
                // first gossip the committed block; accept it and catch up.
                // Without this reconciliation the leader can wedge — its
                // own quorum never completes because the chain already
                // moved underneath it.
                if self.core.handle_block(block, Some(from), ctx).is_some() {
                    let height = self.core.chain.height();
                    self.state.retain(|&s, _| s > height);
                    if self.in_flight.is_some_and(|s| s <= height) {
                        self.in_flight = None;
                    }
                    self.arm_view_timer(ctx);
                    self.try_propose(ctx);
                }
            }
            WireMsg::BlockRequest(hash) => {
                self.core.handle_block_request(hash, from, ctx);
            }
            WireMsg::BlockNotFound(hash) => {
                self.core.handle_block_not_found(hash, from, ctx);
            }
            WireMsg::SyncRequest { locator } => {
                self.core.handle_sync_request(&locator, from, ctx);
            }
            WireMsg::SyncResponse { blocks, tip_height } => {
                if self
                    .core
                    .handle_sync_response(blocks, tip_height, from, ctx)
                {
                    // Caught up past buffered per-seq state: drop anything at
                    // or below the new tip, same as the gossip fallback path.
                    let height = self.core.chain.height();
                    self.state.retain(|&s, _| s > height);
                    if self.in_flight.is_some_and(|s| s <= height) {
                        self.in_flight = None;
                    }
                    self.arm_view_timer(ctx);
                    self.try_propose(ctx);
                }
            }
            WireMsg::Pbft(pbft) => match pbft {
                PbftMsg::PrePrepare { view, seq, block } => {
                    // A replica that was down across view changes adopts the
                    // higher view when the (alleged) leader of that view
                    // proposes in it — this is how a restarted replica
                    // rejoins the working view without a full view-change
                    // certificate exchange.
                    if view > self.view && from == self.leader_of(view) {
                        self.enter_view(view, ctx);
                    }
                    if view != self.view || from != self.leader_of(view) {
                        return;
                    }
                    // Accept current *and future* sequences: a fast leader
                    // may propose seq+1 before our commit for seq lands.
                    // Buffered proposals commit in order (linkage is checked
                    // at commit time in `check_quorums`).
                    if seq < self.next_seq() {
                        return;
                    }
                    let digest = block.hash();
                    let entry = self.state.entry(seq).or_default();
                    if entry.candidate.is_none() {
                        entry.candidate = Some(block);
                    }
                    if !entry.sent_prepare {
                        entry.sent_prepare = true;
                        entry.prepares.insert(self.core.id);
                        if let Some(m) = &self.metrics {
                            m.record_phase(PbftPhase::Prepare, view);
                        }
                        self.core.tracer.emit(
                            ctx.now.as_micros(),
                            TraceEvent::Pbft {
                                phase: PbftPhase::Prepare,
                                view,
                                seq,
                            },
                        );
                        self.send_all(PbftMsg::Prepare { view, seq, digest }, ctx);
                    }
                    self.check_quorums(seq, ctx);
                }
                PbftMsg::Prepare { view, seq, digest } => {
                    if view != self.view {
                        return;
                    }
                    let entry = self.state.entry(seq).or_default();
                    if entry.candidate.as_ref().is_some_and(|b| b.hash() != digest) {
                        return; // conflicting digest: ignore
                    }
                    entry.prepares.insert(from);
                    self.check_quorums(seq, ctx);
                }
                PbftMsg::Commit { view, seq, digest } => {
                    if view != self.view {
                        return;
                    }
                    let entry = self.state.entry(seq).or_default();
                    if entry.candidate.as_ref().is_some_and(|b| b.hash() != digest) {
                        return;
                    }
                    entry.commits.insert(from);
                    self.check_quorums(seq, ctx);
                }
                PbftMsg::ViewChange { new_view } => {
                    if new_view <= self.view {
                        return;
                    }
                    let votes = self.view_votes.entry(new_view).or_default();
                    votes.insert(from);
                    if votes.len() + 1 >= self.quorum() {
                        // +1 counts our own (implicit or explicit) vote.
                        self.enter_view(new_view, ctx);
                    }
                }
            },
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, WireMsg>) {
        if self.crashed {
            return;
        }
        if is_sync_tag(tag) {
            self.core.handle_sync_timer(tag, ctx);
            return;
        }
        let kind = tag & (0xff << 40);
        let counter = tag & !(0xff << 40);
        match kind {
            TAG_BATCH => {
                self.try_propose(ctx);
                ctx.set_timer(SimDuration::from_micros(self.batch_timeout_us), TAG_BATCH);
            }
            TAG_VIEW => {
                if counter != self.view_timer_epoch {
                    return;
                }
                // No progress: demand a view change if there is work to do.
                if !self.core.mempool.is_empty() {
                    let new_view = self.view + 1;
                    self.send_all(PbftMsg::ViewChange { new_view }, ctx);
                    let votes = self.view_votes.entry(new_view).or_default();
                    if votes.len() + 1 >= self.quorum() {
                        self.enter_view(new_view, ctx);
                        return;
                    }
                }
                self.arm_view_timer(ctx);
            }
            _ => {}
        }
    }
}

impl<M: StateMachine + Default> Recoverable for PbftNode<M> {
    fn on_crash(&mut self, _ctx: &mut Ctx<'_, WireMsg>) {
        // Fail-stop: the flag gates every callback until restart, so even
        // events already in flight toward this replica are ignored.
        self.crashed = true;
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, WireMsg>) {
        self.crashed = false;
        // All per-view and per-sequence protocol state is volatile; a
        // restarted replica rediscovers the working view from the next
        // PrePrepare it hears (view adoption in `on_message`).
        self.view = 0;
        self.state.clear();
        self.view_votes.clear();
        self.in_flight = None;
        self.core.rebuild_from_store(M::default());
        ctx.set_timer(SimDuration::from_micros(self.batch_timeout_us), TAG_BATCH);
        self.arm_view_timer(ctx);
        self.core.begin_catchup(ctx);
    }
}
