//! Bounded model-checking of sharded mempool admission (DESIGN.md §15).
//!
//! `Mempool` is `&mut self` — the engine serializes calls — but admission
//! streams from different senders interleave in an order the scheduler
//! picks, and PR 7's sharding must keep every *structural* property
//! independent of that order: `len` equals the sum of shard occupancy,
//! duplicates are admitted exactly once no matter which racer wins,
//! removal composes with in-flight admission, and selection remains a
//! duplicate-free global-FIFO merge that preserves each sender's program
//! order. `dcs-conc` explores every interleaving of the admission threads
//! and checks those invariants after every single operation.

use dcs_conc::{Model, Op};
use dcs_consensus::Mempool;
use dcs_crypto::{Address, Hash256};
use dcs_primitives::{AccountTx, SealedTx, Transaction};
use std::collections::BTreeSet;
use std::sync::Arc;

fn tx(from: u8, nonce: u64) -> SealedTx {
    SealedTx::new(Arc::new(Transaction::Account(AccountTx::transfer(
        Address::from_index(from as u64),
        Address::from_index(200),
        1 + nonce,
        nonce,
    ))))
}

/// Shared state: the pool plus ground truth for the occupancy equation.
struct St {
    pool: Mempool,
    inserted: i64,
    removed: i64,
    dup_added: u32,
}

fn insert_op(t: SealedTx) -> Op<St> {
    Box::new(move |s: &mut St| {
        if s.pool.insert(t.clone()) {
            s.inserted += 1;
        }
    })
}

/// Insert of a transaction two threads contend on: counts Added outcomes.
fn insert_contended_op(t: SealedTx) -> Op<St> {
    Box::new(move |s: &mut St| {
        if s.pool.insert(t.clone()) {
            s.inserted += 1;
            s.dup_added += 1;
        }
    })
}

fn remove_op(id: Hash256) -> Op<St> {
    Box::new(move |s: &mut St| {
        if s.pool.remove(&id).is_some() {
            s.removed += 1;
        }
    })
}

/// Structural invariants, checked after every operation of every schedule.
fn invariant(s: &St) -> Result<(), String> {
    let shard_sum: usize = s.pool.shard_lens().iter().sum();
    if s.pool.len() != shard_sum {
        return Err(format!("len {} != shard sum {shard_sum}", s.pool.len()));
    }
    if s.pool.len() as i64 != s.inserted - s.removed {
        return Err(format!(
            "occupancy drift: len {} != inserted {} - removed {}",
            s.pool.len(),
            s.inserted,
            s.removed
        ));
    }
    // Selection: duplicate-free, covers the whole pool, FIFO-merged.
    let mut probe = s.pool.clone();
    let selected = probe.select(usize::MAX, &BTreeSet::new());
    if selected.len() != s.pool.len() {
        return Err(format!(
            "select returned {} of {} pooled",
            selected.len(),
            s.pool.len()
        ));
    }
    let ids: BTreeSet<Hash256> = selected.iter().map(|t| t.id()).collect();
    if ids.len() != selected.len() {
        return Err("select returned a duplicate".to_string());
    }
    Ok(())
}

/// Position of `id` in a selection, if present.
fn pos(selected: &[SealedTx], id: &Hash256) -> Option<usize> {
    selected.iter().position(|t| t.id() == *id)
}

/// Two admission streams from different senders, racing a duplicate and a
/// removal. Every interleaving must admit the contended transaction
/// exactly once and keep the occupancy equation exact.
#[test]
fn racing_admission_streams_stay_consistent() {
    let a1 = tx(1, 0);
    let a2 = tx(1, 1);
    let b1 = tx(9, 0);
    let contended = tx(42, 7);
    let (a1c, a2c, b1c, c1, c2) = (
        a1.clone(),
        a2.clone(),
        b1.clone(),
        contended.clone(),
        contended.clone(),
    );
    let model: Model<St> = Model::new()
        .thread(vec![
            insert_op(a1c),
            insert_op(a2c),
            insert_contended_op(c1),
        ])
        .thread(vec![insert_op(b1c), insert_contended_op(c2)])
        .thread(vec![remove_op(b1.id())]);
    let explored = model
        .check(
            || St {
                pool: Mempool::new(64),
                inserted: 0,
                removed: 0,
                dup_added: 0,
            },
            |s| {
                invariant(s)?;
                if s.dup_added > 1 {
                    return Err(format!("contended tx admitted {} times", s.dup_added));
                }
                // Once both of sender 1's admissions landed, their relative
                // order in the selection must match program order.
                if s.dup_added == 1 && s.inserted >= 4 {
                    let mut probe = s.pool.clone();
                    let sel = probe.select(usize::MAX, &BTreeSet::new());
                    if let (Some(p1), Some(p2)) = (pos(&sel, &a1.id()), pos(&sel, &a2.id())) {
                        if p1 >= p2 {
                            return Err(format!("sender FIFO violated: a1 at {p1}, a2 at {p2}"));
                        }
                    }
                }
                Ok(())
            },
        )
        .unwrap_or_else(|v| panic!("{v}"));
    assert_eq!(explored.schedules, 60); // 6!/(3!2!1!)
}

/// Admission racing selection-relevant removal across shards: removing a
/// transaction that may not have been admitted yet is a no-op, never a
/// corruption, in every schedule.
#[test]
fn remove_before_or_after_admission_is_safe() {
    let x = tx(3, 0);
    let y = tx(130, 0); // different sender byte → different shard
    let (xc, yc) = (x.clone(), y.clone());
    let model: Model<St> = Model::new()
        .thread(vec![insert_op(xc), remove_op(y.id())])
        .thread(vec![insert_op(yc), remove_op(x.id())]);
    let explored = model
        .check(
            || St {
                pool: Mempool::new(64),
                inserted: 0,
                removed: 0,
                dup_added: 0,
            },
            invariant,
        )
        .unwrap_or_else(|v| panic!("{v}"));
    assert_eq!(explored.schedules, 6); // C(4,2)
}

/// Capacity backpressure under interleaving: with room for two, any order
/// of three admissions admits exactly two, and the pool never overfills.
#[test]
fn capacity_is_respected_in_every_schedule() {
    let t1 = tx(5, 0);
    let t2 = tx(6, 0);
    let t3 = tx(7, 0);
    let model: Model<St> = Model::new()
        .thread(vec![insert_op(t1.clone()), insert_op(t2.clone())])
        .thread(vec![insert_op(t3.clone())]);
    let explored = model
        .check(
            || St {
                pool: Mempool::new(2),
                inserted: 0,
                removed: 0,
                dup_added: 0,
            },
            |s| {
                invariant(s)?;
                if s.pool.len() > 2 {
                    return Err(format!("over capacity: {}", s.pool.len()));
                }
                if s.inserted == 3 {
                    return Err("three admissions into a pool of two".to_string());
                }
                Ok(())
            },
        )
        .unwrap_or_else(|v| panic!("{v}"));
    assert_eq!(explored.schedules, 3); // C(3,1)
}
