//! Fixture: relaxed atomic loads feeding decisions vs. metrics snapshots.

pub struct Gate {
    pending: AtomicU64,
}

/// Metrics snapshot struct — relaxed reads into it are the exemption.
pub struct GateStats {
    pub pending: u64,
}

impl Gate {
    /// FINDING: a relaxed load gating a branch.
    pub fn open(&self) -> bool {
        if self.pending.load(Ordering::Relaxed) > 0 {
            return true;
        }
        false
    }

    /// Suppressed twin: audited inline on the load line.
    pub fn open_audited(&self) -> bool {
        if self.pending.load(Ordering::Relaxed) > 0 { // dcs-lint: allow(atomic-ordering)
            return true;
        }
        false
    }

    /// Exempt: returns a `*Stats` struct — metrics plumbing by contract.
    pub fn stats(&self) -> GateStats {
        GateStats {
            pending: self.pending.load(Ordering::Relaxed),
        }
    }
}
