//! Fixture: violates `float-consensus` when linted under a consensus
//! decision path (e.g. `crates/consensus/src/difficulty.rs`).

pub fn retarget(prev: u64, ratio_num: u64, ratio_den: u64) -> u64 {
    let scale = ratio_num as f64 / ratio_den as f64;
    (prev as f64 * scale * 1.5) as u64
}
