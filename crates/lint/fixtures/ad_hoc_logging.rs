//! Fixture: violates `ad-hoc-logging` in any library crate (bench and lint
//! binaries are exempt).

pub fn noisy(height: u64) {
    println!("imported block at height {height}");
    eprintln!("warning: slow import at height {height}");
    let _ = dbg!(height);
}
