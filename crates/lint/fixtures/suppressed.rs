//! Fixture: every violation below carries a suppression, so the file must
//! lint clean even under a determinism-critical virtual path.

use std::collections::HashMap; // dcs-lint: allow(hash-collections)

pub fn lookup_only(map: &HashMap<u32, u32>, k: u32) -> Option<u32> { // dcs-lint: allow(hash-collections)
    // dcs-lint: allow(hash-collections)
    let probe: Option<&HashMap<u32, u32>> = Some(map);
    // dcs-lint: allow(all)
    probe.unwrap().get(&k).copied()
}
