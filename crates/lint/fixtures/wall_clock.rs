//! Fixture: violates `wall-clock` anywhere outside `crates/bench/`.

use std::time::Instant;

pub fn elapsed_wall_time() -> std::time::Duration {
    let start = Instant::now();
    start.elapsed()
}
