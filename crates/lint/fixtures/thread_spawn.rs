//! Fixture: violates `thread-spawn` anywhere except the crypto batch pool.

pub fn fire_and_forget() {
    std::thread::spawn(|| {
        // scheduling of this closure is nondeterministic
    });
}
