//! Fixture: violates `unseeded-rng` — OS-entropy randomness breaks replay.

pub fn os_entropy_coin_flip() -> bool {
    rand::random()
}

pub fn thread_local_rng_value() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
