//! Fixture: violates `panic-path` when linted under a protocol-message
//! handling crate (e.g. `crates/chain/src/peer.rs`).

pub fn decode_height(raw: Option<u64>) -> u64 {
    raw.unwrap()
}

pub fn decode_tag(raw: Option<u8>) -> u8 {
    match raw {
        Some(t) => t,
        None => panic!("missing tag"),
    }
}
