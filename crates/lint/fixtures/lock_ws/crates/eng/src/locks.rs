//! Fixture: inconsistent pairwise lock ordering (potential deadlock).

pub struct Pair {
    a: Mutex<u64>,
    b: Mutex<u64>,
}

impl Pair {
    /// Takes `a` then `b`.
    pub fn forward(&self) {
        let ga = self.a.lock();
        let gb = self.b.lock();
        let _ = (ga, gb);
    }

    /// FINDING: takes `b` then `a` — inverted against `forward`.
    pub fn backward(&self) {
        let gb = self.b.lock();
        let ga = self.a.lock();
        let _ = (ga, gb);
    }

    /// Clean: sequential (non-nested) acquisitions — the temporary guard
    /// dies with its statement, so no pair is formed.
    pub fn sequential(&self) -> u64 {
        let x = *self.a.lock();
        let y = *self.b.lock();
        x + y
    }
}
