//! Fixture: a determinism-critical crate importing tainted helpers.

use dcs_util::{clamp, env_profile, host_threads};

/// FINDING: tainted through `host_threads` (host parallelism).
pub fn workers() -> usize {
    clamp(host_threads())
}

/// FINDING: tainted through `env_profile` (environment read).
pub fn profile_name() -> String {
    env_profile()
}

/// Suppressed twin: audited inline, must NOT be a finding (and the
/// suppression must not be reported stale).
pub fn audited_workers() -> usize { // dcs-lint: allow(nondet-taint)
    host_threads()
}

/// Clean: calls only the untainted helper.
pub fn bounded(v: usize) -> usize {
    clamp(v)
}
