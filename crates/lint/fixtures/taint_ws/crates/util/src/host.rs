//! Fixture: nondeterminism sources in a crate *outside* the determinism
//! boundary. Nothing here is a finding on its own — the taint rule fires
//! only where a call path carries these values into a critical crate.

use std::collections::HashMap;

/// Host-parallelism probe (SourceKind::HostParallelism).
pub fn host_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |c| c.get())
}

/// Environment read (SourceKind::EnvRead).
pub fn env_profile() -> String {
    std::env::var("DCS_PROFILE").unwrap_or_default()
}

/// Hash-iteration order leak (SourceKind::HashIteration).
pub fn first_key(m: &HashMap<u64, u64>) -> Option<u64> {
    m.keys().next().copied()
}

/// A clean helper: calling this from a critical crate is fine.
pub fn clamp(v: usize) -> usize {
    v.min(64)
}
