//! Fixture: violates `hash-collections` when linted under a
//! determinism-critical crate path (e.g. `crates/sim/src/bad.rs`).

use std::collections::HashMap;

pub fn tally(xs: &[u32]) -> HashMap<u32, u32> {
    let mut counts = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts
}
