//! End-to-end tests for the rule catalogue: every rule fires on a violating
//! fixture, every suppression mechanism silences it, and path scoping
//! exempts the places the platform legitimately uses the flagged constructs.

use dcs_lint::allow::Allowlist;
use dcs_lint::check_source;
use std::path::Path;
use std::process::Command;

fn findings(rel_path: &str, source: &str) -> Vec<&'static str> {
    check_source(rel_path, source, &Allowlist::default())
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

// --- each rule fires on its fixture under an in-scope virtual path ---

#[test]
fn wall_clock_fires() {
    let hits = findings("crates/sim/src/bad.rs", &fixture("wall_clock.rs"));
    assert!(hits.contains(&"wall-clock"), "{hits:?}");
}

#[test]
fn unseeded_rng_fires() {
    let hits = findings("crates/crypto/src/bad.rs", &fixture("unseeded_rng.rs"));
    assert_eq!(
        hits.iter().filter(|r| **r == "unseeded-rng").count(),
        2,
        "rand::random and thread_rng must both fire: {hits:?}"
    );
}

#[test]
fn hash_collections_fires_in_determinism_crates() {
    let src = fixture("hash_collections.rs");
    for path in [
        "crates/sim/src/bad.rs",
        "crates/net/src/bad.rs",
        "crates/consensus/src/bad.rs",
        "crates/chain/src/bad.rs",
        "crates/state/src/bad.rs",
    ] {
        let hits = findings(path, &src);
        assert!(hits.contains(&"hash-collections"), "{path}: {hits:?}");
    }
}

#[test]
fn float_consensus_fires() {
    let hits = findings(
        "crates/consensus/src/difficulty.rs",
        &fixture("float_consensus.rs"),
    );
    assert!(hits.contains(&"float-consensus"), "{hits:?}");
}

#[test]
fn panic_path_fires() {
    let hits = findings("crates/chain/src/peer.rs", &fixture("panic_path.rs"));
    assert_eq!(
        hits.iter().filter(|r| **r == "panic-path").count(),
        2,
        "unwrap() and panic! must both fire: {hits:?}"
    );
}

#[test]
fn thread_spawn_fires() {
    let hits = findings("crates/sim/src/bad.rs", &fixture("thread_spawn.rs"));
    assert!(hits.contains(&"thread-spawn"), "{hits:?}");
}

#[test]
fn ad_hoc_logging_fires() {
    let hits = findings("crates/net/src/bad.rs", &fixture("ad_hoc_logging.rs"));
    assert_eq!(
        hits.iter().filter(|r| **r == "ad-hoc-logging").count(),
        3,
        "println!, eprintln! and dbg! must all fire: {hits:?}"
    );
}

// --- path scoping: sanctioned locations stay clean ---

#[test]
fn wall_clock_allowed_in_bench() {
    let hits = findings("crates/bench/src/bad.rs", &fixture("wall_clock.rs"));
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn hash_collections_allowed_outside_determinism_crates() {
    let hits = findings("crates/ledger/src/ok.rs", &fixture("hash_collections.rs"));
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn float_allowed_in_sampling_paths() {
    // PoW/PoET/NG solve-time sampling legitimately uses f64.
    let hits = findings(
        "crates/consensus/src/pow.rs",
        &fixture("float_consensus.rs"),
    );
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn panic_allowed_outside_protocol_crates() {
    let hits = findings("crates/state/src/ok.rs", &fixture("panic_path.rs"));
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn thread_spawn_has_no_hardcoded_exemptions() {
    // The audited pools are exempted through lint-allow.toml entries, not
    // path scoping — without the allowlist, even the pool files fire.
    for path in ["crates/crypto/src/batch.rs", "crates/net/src/engine.rs"] {
        let hits = findings(path, &fixture("thread_spawn.rs"));
        assert!(hits.contains(&"thread-spawn"), "{path}: {hits:?}");
    }
}

#[test]
fn thread_scope_fires_like_spawn() {
    let src = "pub fn f() { std::thread::scope(|s| { let _ = s; }); }\n";
    let hits = findings("crates/sim/src/bad.rs", src);
    assert_eq!(hits, vec!["thread-spawn"], "thread::scope is ad-hoc too");
}

#[test]
fn workspace_allowlist_covers_the_audited_pools() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let allow = Allowlist::parse(&std::fs::read_to_string(root.join("lint-allow.toml")).unwrap())
        .expect("workspace allowlist parses");
    for path in ["crates/crypto/src/batch.rs", "crates/net/src/engine.rs"] {
        assert!(
            allow.covers("thread-spawn", path),
            "{path} must carry an audited thread-spawn entry"
        );
    }
    assert!(
        !allow.covers("thread-spawn", "crates/sim/src/event.rs"),
        "the entries must stay confined to the worker-pool modules"
    );
}

#[test]
fn ad_hoc_logging_allowed_in_experiment_printers_and_lint() {
    let src = fixture("ad_hoc_logging.rs");
    // The experiment printers and the lint binary's diagnostics are exempt;
    // the rest of the bench crate (macrobench, heartbeat, rss) is in scope
    // and relies on audited lint-allow.toml entries instead.
    for path in [
        "crates/bench/src/experiments/scaling.rs",
        "crates/bench/src/table.rs",
        "crates/bench/src/bin/expt.rs",
        "crates/lint/src/bad.rs",
    ] {
        let hits = findings(path, &src);
        assert!(hits.is_empty(), "{path}: {hits:?}");
    }
    for path in [
        "crates/bench/src/bin/macrobench.rs",
        "crates/bench/src/heartbeat.rs",
        "crates/bench/src/rss.rs",
    ] {
        let hits = findings(path, &src);
        assert!(!hits.is_empty(), "{path} must be in ad-hoc-logging scope");
    }
}

#[test]
fn ad_hoc_logging_suppression_applies() {
    let src = "pub fn f() { println!(\"x\"); } // dcs-lint: allow(ad-hoc-logging)\n";
    let hits = findings("crates/chain/src/bad.rs", src);
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn print_lookalikes_never_fire() {
    // A method or function named `println` without the `!` is not the macro.
    let src = "pub fn f(w: &mut impl Printer) { w.println(\"x\"); }\n\
               pub trait Printer { fn println(&mut self, s: &str); }\n";
    let hits = findings("crates/chain/src/ok.rs", src);
    assert!(hits.is_empty(), "{hits:?}");
}

// --- lexical precision: comments, strings, and lookalikes stay clean ---

#[test]
fn comments_and_strings_never_fire() {
    let src = r#"
// HashMap, Instant::now(), .unwrap(), panic!("x") in a comment
/* thread_rng() in /* a nested */ block comment */
pub fn msg() -> &'static str {
    "HashMap panic! .unwrap() Instant rand::random thread::spawn"
}
"#;
    let hits = findings("crates/sim/src/ok.rs", src);
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn lookalike_identifiers_never_fire() {
    // `unwrap_or` is not `unwrap`; `as_secs_f64` is not `f64`; a bare
    // `random` without a `rand::` path is some other function; `spawn`
    // without `thread::` is e.g. an async task spawn wrapper.
    let src = r#"
pub fn ok(v: Option<u64>, d: std::time::Duration) -> u64 {
    let _ = d.as_secs();
    let _ = random();
    spawn(|| {});
    v.unwrap_or(0)
}
"#;
    let hits = findings("crates/chain/src/ok.rs", src);
    assert!(hits.is_empty(), "{hits:?}");
}

// --- suppression mechanisms ---

#[test]
fn trailing_suppression_silences_its_line_only() {
    let src = "use std::collections::HashMap; // dcs-lint: allow(hash-collections)\n\
               pub type Bad = HashMap<u8, u8>;\n";
    let hits = findings("crates/sim/src/bad.rs", src);
    assert_eq!(hits, vec!["hash-collections"], "second line still fires");
}

#[test]
fn standalone_suppression_covers_next_line() {
    let src = "// dcs-lint: allow(hash-collections)\n\
               use std::collections::HashMap;\n\
               pub type Ok2 = std::marker::PhantomData<HashMap<u8, u8>>;\n";
    let hits = findings("crates/sim/src/bad.rs", src);
    assert_eq!(hits.len(), 1, "only the third line fires: {hits:?}");
}

#[test]
fn allow_all_suppresses_every_rule_on_the_line() {
    let src = "pub fn f(v: Option<std::collections::HashMap<u8, u8>>) { v.unwrap(); } // dcs-lint: allow(all)\n";
    let hits = findings("crates/chain/src/bad.rs", src);
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn suppression_for_a_different_rule_does_not_apply() {
    let src = "use std::collections::HashMap; // dcs-lint: allow(wall-clock)\n";
    let hits = findings("crates/sim/src/bad.rs", src);
    assert_eq!(hits, vec!["hash-collections"]);
}

#[test]
fn suppressed_fixture_is_fully_clean() {
    let hits = findings("crates/sim/src/bad.rs", &fixture("suppressed.rs"));
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn cfg_test_regions_are_exempt() {
    let src = r#"
pub fn prod() -> u64 { 1 }

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn helper() {
        let m: HashMap<u8, u8> = HashMap::new();
        assert!(m.get(&0).is_none());
        m.get(&1).copied().unwrap_or(0);
    }
}
"#;
    let hits = findings("crates/consensus/src/bad.rs", src);
    assert!(hits.is_empty(), "{hits:?}");
}

#[test]
fn allowlist_entry_silences_matching_rule_and_path() {
    let allow = Allowlist::parse(&fixture("allow-panic.toml")).unwrap();
    let hits = check_source(
        "crates/chain/src/peer.rs",
        &fixture("panic_path.rs"),
        &allow,
    );
    assert!(hits.is_empty(), "{hits:?}");
    // The same allowlist does not cover a different path.
    let other = check_source(
        "crates/chain/src/other.rs",
        &fixture("panic_path.rs"),
        &allow,
    );
    assert!(!other.is_empty());
}

// --- CLI: the shipped binary exits non-zero on each violating fixture ---

fn lint_fixture(name: &str, virtual_path: &str, extra: &[&str]) -> std::process::ExitStatus {
    let file = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    Command::new(env!("CARGO_BIN_EXE_dcs-lint"))
        .arg("--file")
        .arg(&file)
        .arg("--as")
        .arg(virtual_path)
        .args(extra)
        .output()
        .expect("spawn dcs-lint")
        .status
}

#[test]
fn cli_rejects_every_violating_fixture() {
    let cases = [
        ("wall_clock.rs", "crates/sim/src/bad.rs"),
        ("unseeded_rng.rs", "crates/crypto/src/bad.rs"),
        ("hash_collections.rs", "crates/sim/src/bad.rs"),
        ("float_consensus.rs", "crates/consensus/src/difficulty.rs"),
        ("panic_path.rs", "crates/chain/src/peer.rs"),
        ("thread_spawn.rs", "crates/sim/src/bad.rs"),
        ("ad_hoc_logging.rs", "crates/net/src/bad.rs"),
    ];
    for (name, vpath) in cases {
        let status = lint_fixture(name, vpath, &[]);
        assert_eq!(status.code(), Some(1), "{name} as {vpath} must fail lint");
    }
}

#[test]
fn cli_accepts_suppressed_fixture() {
    let status = lint_fixture("suppressed.rs", "crates/sim/src/bad.rs", &[]);
    assert_eq!(status.code(), Some(0));
}

#[test]
fn cli_accepts_allowlisted_fixture() {
    let allow = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("allow-panic.toml");
    let status = lint_fixture(
        "panic_path.rs",
        "crates/chain/src/peer.rs",
        &["--allow", allow.to_str().unwrap()],
    );
    assert_eq!(status.code(), Some(0));
}

#[test]
fn cli_lists_the_full_catalogue() {
    let out = Command::new(env!("CARGO_BIN_EXE_dcs-lint"))
        .arg("--list-rules")
        .output()
        .expect("spawn dcs-lint");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "wall-clock",
        "unseeded-rng",
        "hash-collections",
        "float-consensus",
        "panic-path",
        "thread-spawn",
        "ad-hoc-logging",
    ] {
        assert!(text.contains(rule), "missing {rule} in:\n{text}");
    }
}
