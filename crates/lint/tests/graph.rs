//! End-to-end tests for the v2 graph rules over fixture mini-workspaces:
//! each rule fires with its call-chain diagnostics, each suppression
//! mechanism silences it, stale suppressions are detected, and the SARIF
//! output round-trips through the CLI.

use dcs_lint::allow::Allowlist;
use dcs_lint::{check_workspace_report, StaleSuppression, WorkspaceReport};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture_ws(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn report(ws: &str, allow: &Allowlist) -> WorkspaceReport {
    check_workspace_report(&fixture_ws(ws), allow).expect("fixture workspace readable")
}

// --- nondet-taint --------------------------------------------------------

#[test]
fn nondet_taint_fires_across_files_with_chain() {
    let r = report("taint_ws", &Allowlist::default());
    let taint: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == "nondet-taint")
        .collect();
    assert_eq!(taint.len(), 2, "{:?}", r.findings);
    // Both findings anchor in the determinism-critical crate, not the
    // source crate, and carry the full chain down to the source.
    for f in &taint {
        assert_eq!(f.path, "crates/consensus/src/sched.rs", "{f:?}");
        assert!(!f.notes.is_empty(), "chain notes missing: {f:?}");
    }
    let workers = taint
        .iter()
        .find(|f| f.snippet.contains("fn workers"))
        .expect("workers finding");
    assert!(
        workers.notes.iter().any(|n| n.contains("host_threads")),
        "{:?}",
        workers.notes
    );
    assert!(
        workers
            .notes
            .iter()
            .any(|n| n.contains("host parallelism") && n.contains("crates/util/src/host.rs")),
        "{:?}",
        workers.notes
    );
}

#[test]
fn nondet_taint_inline_suppression_holds_and_is_not_stale() {
    let r = report("taint_ws", &Allowlist::default());
    assert!(
        !r.findings
            .iter()
            .any(|f| f.snippet.contains("audited_workers")),
        "suppressed fn reported: {:?}",
        r.findings
    );
    assert!(
        r.stale.is_empty(),
        "used suppression reported stale: {:?}",
        r.stale
    );
}

#[test]
fn nondet_taint_allowlist_entry_covers_the_file() {
    let allow = Allowlist::parse(
        "[[allow]]\nrule = \"nondet-taint\"\npath = \"crates/consensus/src/sched.rs\"\nreason = \"fixture audit\"\n",
    )
    .unwrap();
    let r = report("taint_ws", &allow);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert!(r.stale.is_empty(), "entry was used: {:?}", r.stale);
}

// --- lock-order ----------------------------------------------------------

#[test]
fn lock_order_flags_the_inversion_once() {
    let r = report("lock_ws", &Allowlist::default());
    let locks: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == "lock-order")
        .collect();
    assert_eq!(locks.len(), 1, "{:?}", r.findings);
    let f = locks[0];
    assert_eq!(f.path, "crates/eng/src/locks.rs");
    assert!(
        f.notes
            .iter()
            .any(|n| n.contains("Pair.a") && n.contains("Pair.b")),
        "{:?}",
        f.notes
    );
    assert!(
        f.notes.iter().any(|n| n.contains("deadlock")),
        "{:?}",
        f.notes
    );
}

#[test]
fn lock_order_allowlist_suppression_holds() {
    let allow = Allowlist::parse(
        "[[allow]]\nrule = \"lock-order\"\npath = \"crates/eng/src/locks.rs\"\nreason = \"fixture audit\"\n",
    )
    .unwrap();
    let r = report("lock_ws", &allow);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert!(r.stale.is_empty(), "{:?}", r.stale);
}

// --- atomic-ordering -----------------------------------------------------

#[test]
fn atomic_ordering_flags_branch_not_stats_and_honours_inline() {
    let r = report("atomic_ws", &Allowlist::default());
    let atomics: Vec<_> = r
        .findings
        .iter()
        .filter(|f| f.rule == "atomic-ordering")
        .collect();
    // `open` fires; `open_audited` is inline-suppressed; `stats` is exempt.
    assert_eq!(atomics.len(), 1, "{:?}", r.findings);
    assert!(
        atomics[0]
            .notes
            .iter()
            .any(|n| n.contains("branch-condition")),
        "{:?}",
        atomics[0].notes
    );
    assert!(r.stale.is_empty(), "{:?}", r.stale);
}

// --- stale suppressions --------------------------------------------------

#[test]
fn unused_allowlist_entry_is_reported_stale() {
    let allow = Allowlist::parse(
        "[[allow]]\nrule = \"wall-clock\"\npath = \"crates/eng/src/locks.rs\"\nreason = \"nothing here reads a clock\"\n",
    )
    .unwrap();
    let r = report("lock_ws", &allow);
    assert_eq!(r.stale.len(), 1, "{:?}", r.stale);
    match &r.stale[0] {
        StaleSuppression::AllowEntry(0, e) => assert_eq!(e.rule, "wall-clock"),
        other => panic!("expected stale allow entry, got {other:?}"),
    }
}

#[test]
fn unused_inline_suppression_is_reported_stale() {
    // lock_ws has no inline suppressions; write one into a temp copy? Not
    // needed — taint_ws's suppression is used, so instead assert the
    // accounting distinguishes: an allowlist entry that *would* cover the
    // suppressed fn is stale because the inline suppression claims the
    // finding first.
    let allow = Allowlist::parse(
        "[[allow]]\nrule = \"nondet-taint\"\npath = \"crates/consensus/src/profile_only.rs\"\nreason = \"points at nothing\"\n",
    )
    .unwrap();
    let r = report("taint_ws", &allow);
    assert!(
        r.stale
            .iter()
            .any(|s| matches!(s, StaleSuppression::AllowEntry(..))),
        "{:?}",
        r.stale
    );
}

// --- model statistics ----------------------------------------------------

#[test]
fn report_counts_files_and_functions() {
    let r = report("taint_ws", &Allowlist::default());
    assert_eq!(r.files_scanned, 2);
    // host.rs has 4 fns, sched.rs has 4.
    assert_eq!(r.fns_modeled, 8);
}

// --- CLI: SARIF output and the stale gate --------------------------------

fn run_cli(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_dcs-lint"))
        .args(args)
        .output()
        .expect("run dcs-lint");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn cli_sarif_output_lists_graph_findings() {
    let ws = fixture_ws("taint_ws");
    let empty_allow = ws.join("..").join("allow-panic.toml"); // unrelated entry
    let (stdout, _stderr, code) = run_cli(&[
        "--workspace",
        "--root",
        ws.to_str().unwrap(),
        "--allow",
        empty_allow.to_str().unwrap(),
        "--format",
        "json",
    ]);
    assert_eq!(code, Some(1), "findings must fail the run");
    assert!(stdout.contains("\"version\": \"2.1.0\""), "{stdout}");
    assert!(stdout.contains("\"ruleId\": \"nondet-taint\""), "{stdout}");
    assert!(stdout.contains("crates/consensus/src/sched.rs"), "{stdout}");
    // The machine output must be pure JSON: first byte is the brace.
    assert!(stdout.starts_with('{'), "{stdout}");
}

#[test]
fn cli_stale_gate_fails_only_with_flag() {
    let ws = fixture_ws("lock_ws");
    let stale_allow = fixture_ws("stale-allow.toml");
    // Covers the lock-order finding AND carries one dead entry.
    let (_out, stderr, code) = run_cli(&[
        "--workspace",
        "--root",
        ws.to_str().unwrap(),
        "--allow",
        stale_allow.to_str().unwrap(),
    ]);
    assert_eq!(
        code,
        Some(0),
        "without the gate stale is a warning: {stderr}"
    );
    assert!(stderr.contains("stale"), "{stderr}");

    let (_out, stderr, code) = run_cli(&[
        "--workspace",
        "--root",
        ws.to_str().unwrap(),
        "--allow",
        stale_allow.to_str().unwrap(),
        "--stale-suppressions",
    ]);
    assert_eq!(code, Some(1), "gate must fail on stale entries: {stderr}");
}

#[test]
fn cli_list_rules_shows_at_least_ten() {
    let (stdout, _stderr, code) = run_cli(&["--list-rules"]);
    assert_eq!(code, Some(0));
    let rules: Vec<&str> = stdout.lines().collect();
    assert!(rules.len() >= 10, "{} rules: {stdout}", rules.len());
    for id in ["nondet-taint", "lock-order", "atomic-ordering"] {
        assert!(stdout.contains(id), "missing {id}: {stdout}");
    }
}
