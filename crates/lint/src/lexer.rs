//! A minimal comment/string-aware Rust lexer — just enough structure to
//! support token-sequence lint rules without a full parser (the build is
//! offline-vendored, so no external parsing crates).
//!
//! The lexer produces identifier/punctuation/literal tokens with 1-based
//! line:col positions, collects `// dcs-lint: allow(<rules>)` suppression
//! comments, and marks `#[cfg(test)]` regions so rules can skip test code.
//! Comments (including doc comments, and therefore doctest bodies), string
//! literals, char literals, and lifetimes never produce rule-visible
//! identifier tokens — `"HashMap"` in a string is not a finding.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok<'a> {
    /// What kind of token, with its text where relevant.
    pub kind: TokKind<'a>,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column (in characters).
    pub col: u32,
}

/// Token classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind<'a> {
    /// An identifier or keyword.
    Ident(&'a str),
    /// A single punctuation character (`::` arrives as two `:`).
    Punct(char),
    /// A numeric literal, verbatim (e.g. `4.0`, `1_000u64`, `0xff`).
    Number(&'a str),
    /// A string/char/lifetime token; contents are never rule-visible.
    Opaque,
}

/// A `// dcs-lint: allow(...)` suppression comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Line the comment appears on.
    pub line: u32,
    /// Rule names inside `allow(...)`; `all` suppresses every rule.
    pub rules: Vec<String>,
    /// True when the comment is alone on its line — it then applies to the
    /// next line that carries code, not its own (empty) line.
    pub standalone: bool,
}

/// Full lexer output for one file.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    /// Tokens in source order.
    pub toks: Vec<Tok<'a>>,
    /// Suppression comments found anywhere in the file.
    pub suppressions: Vec<Suppression>,
}

impl Lexed<'_> {
    /// The set of lines each suppression effectively covers: its own line
    /// for trailing comments, the next token-bearing line for standalone
    /// comment lines.
    pub fn suppressed_lines(&self) -> Vec<(u32, Vec<String>)> {
        let mut out = Vec::new();
        for s in &self.suppressions {
            let line = if s.standalone {
                self.toks
                    .iter()
                    .map(|t| t.line)
                    .find(|&l| l > s.line)
                    .unwrap_or(s.line)
            } else {
                s.line
            };
            out.push((line, s.rules.clone()));
        }
        out
    }

    /// Token index ranges lying inside `#[cfg(test)]` items (the attribute's
    /// following brace-delimited block). Rules skip these regions: `unwrap`
    /// in a unit test is idiomatic, not a protocol-safety hazard.
    pub fn test_regions(&self) -> Vec<(usize, usize)> {
        let t = &self.toks;
        let mut regions: Vec<(usize, usize)> = Vec::new();
        let mut i = 0;
        while i < t.len() {
            if !is_cfg_test_attr(t, i) {
                i += 1;
                continue;
            }
            // Skip past the closing `]` of the attribute.
            let mut j = i;
            let mut depth = 0i32;
            while j < t.len() {
                match t[j].kind {
                    TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            // Find the start of the annotated item's block. A `;` first
            // (e.g. `#[cfg(test)] mod tests;`) means no inline block.
            let mut k = j + 1;
            let mut open = None;
            while k < t.len() {
                match t[k].kind {
                    TokKind::Punct('{') => {
                        open = Some(k);
                        break;
                    }
                    TokKind::Punct(';') => break,
                    _ => {}
                }
                k += 1;
            }
            let Some(open) = open else {
                i = k + 1;
                continue;
            };
            // Match braces to the end of the item.
            let mut braces = 0i32;
            let mut end = open;
            while end < t.len() {
                match t[end].kind {
                    TokKind::Punct('{') => braces += 1,
                    TokKind::Punct('}') => {
                        braces -= 1;
                        if braces == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                end += 1;
            }
            regions.push((i, end.min(t.len().saturating_sub(1))));
            i = end + 1;
        }
        regions
    }
}

/// True if tokens at `i` begin a `#[cfg(test)]` attribute (also matches
/// `#[cfg(all(test, ...))]` by looking for a bare `test` identifier anywhere
/// inside the attribute brackets).
fn is_cfg_test_attr(t: &[Tok<'_>], i: usize) -> bool {
    if !matches!(t.get(i).map(|x| &x.kind), Some(TokKind::Punct('#'))) {
        return false;
    }
    if !matches!(t.get(i + 1).map(|x| &x.kind), Some(TokKind::Punct('['))) {
        return false;
    }
    if !matches!(t.get(i + 2).map(|x| &x.kind), Some(TokKind::Ident("cfg"))) {
        return false;
    }
    // Scan to the closing `]`, looking for `test`.
    let mut depth = 1i32;
    let mut j = i + 2;
    while j < t.len() && depth > 0 {
        match t[j].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => depth -= 1,
            TokKind::Ident("test") => return true,
            _ => {}
        }
        j += 1;
    }
    false
}

/// Lexes `source` into tokens plus suppression comments.
// `line_has_tokens` is reset inside the advance! macro on every newline;
// some expansions overwrite it again before the next read, which is fine.
#[allow(unused_assignments)]
pub fn lex(source: &str) -> Lexed<'_> {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    // Tracks whether any token has been emitted on the current line (to
    // classify suppression comments as trailing vs standalone).
    let mut line_has_tokens = false;

    macro_rules! advance {
        ($n:expr) => {{
            for _ in 0..$n {
                if bytes[i] == b'\n' {
                    line += 1;
                    col = 1;
                    line_has_tokens = false;
                } else {
                    col += 1;
                }
                i += 1;
            }
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        // Line comments (incl. doc comments) — scan for suppressions.
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            let start = i;
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            let text = &source[start..i];
            if let Some(rules) = parse_suppression(text) {
                out.suppressions.push(Suppression {
                    line,
                    rules,
                    standalone: !line_has_tokens,
                });
            }
            col += (text.chars().count()) as u32;
            continue;
        }
        // Block comments, nested.
        if c == '/' && bytes.get(i + 1) == Some(&b'*') {
            let mut depth = 1;
            advance!(2);
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    advance!(2);
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    advance!(2);
                } else {
                    advance!(1);
                }
            }
            continue;
        }
        // Raw strings: r"..." / r#"..."# / br##"..."## etc.
        if (c == 'r' || c == 'b') && is_raw_string_start(bytes, i) {
            let (tline, tcol) = (line, col);
            let mut j = i;
            while bytes[j] == b'b' || bytes[j] == b'r' {
                j += 1;
            }
            let mut hashes = 0usize;
            while bytes.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            // Opening quote at j.
            let consumed_prefix = j + 1 - i;
            advance!(consumed_prefix);
            let closer: Vec<u8> = std::iter::once(b'"')
                .chain(std::iter::repeat_n(b'#', hashes))
                .collect();
            while i < bytes.len() {
                if bytes[i] == b'"' && bytes[i..].starts_with(&closer) {
                    advance!(closer.len());
                    break;
                }
                advance!(1);
            }
            out.toks.push(Tok {
                kind: TokKind::Opaque,
                line: tline,
                col: tcol,
            });
            line_has_tokens = true;
            continue;
        }
        // Ordinary strings (and byte strings; the `b` prefix lexes as part
        // of a preceding identifier only if separated — handle `b"..."`).
        if c == '"' || (c == 'b' && bytes.get(i + 1) == Some(&b'"')) {
            let (tline, tcol) = (line, col);
            if c == 'b' {
                advance!(1);
            }
            advance!(1); // opening quote
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' if i + 1 < bytes.len() => advance!(2),
                    b'"' => {
                        advance!(1);
                        break;
                    }
                    _ => advance!(1),
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Opaque,
                line: tline,
                col: tcol,
            });
            line_has_tokens = true;
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let (tline, tcol) = (line, col);
            let next = bytes.get(i + 1).copied();
            let after = bytes.get(i + 2).copied();
            let is_lifetime = matches!(next, Some(n) if (n as char).is_alphabetic() || n == b'_')
                && after != Some(b'\'');
            if is_lifetime {
                advance!(1);
                while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_')
                {
                    advance!(1);
                }
            } else {
                advance!(1); // opening quote
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' if i + 1 < bytes.len() => advance!(2),
                        b'\'' => {
                            advance!(1);
                            break;
                        }
                        _ => advance!(1),
                    }
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Opaque,
                line: tline,
                col: tcol,
            });
            line_has_tokens = true;
            continue;
        }
        // Identifiers and keywords.
        if c.is_alphabetic() || c == '_' {
            let (tline, tcol) = (line, col);
            let start = i;
            while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_') {
                advance!(1);
            }
            out.toks.push(Tok {
                kind: TokKind::Ident(&source[start..i]),
                line: tline,
                col: tcol,
            });
            line_has_tokens = true;
            continue;
        }
        // Numbers: integer part, optional `.digits` fraction (so `0..1`
        // stays two integers), optional exponent, optional suffix.
        if c.is_ascii_digit() {
            let (tline, tcol) = (line, col);
            let start = i;
            advance!(1);
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                advance!(1);
            }
            // Fraction: a dot followed by a digit.
            if i < bytes.len()
                && bytes[i] == b'.'
                && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit())
            {
                advance!(1);
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    advance!(1);
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Number(&source[start..i]),
                line: tline,
                col: tcol,
            });
            line_has_tokens = true;
            continue;
        }
        // Whitespace.
        if c.is_whitespace() {
            advance!(1);
            continue;
        }
        // Everything else: single punctuation character.
        let (tline, tcol) = (line, col);
        let ch_len = c.len_utf8();
        advance!(ch_len);
        out.toks.push(Tok {
            kind: TokKind::Punct(c),
            line: tline,
            col: tcol,
        });
        line_has_tokens = true;
    }
    out
}

/// True when `r`/`br`/`rb` at `i` opens a raw string.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    let mut seen_r = false;
    while j < bytes.len() && (bytes[j] == b'b' || bytes[j] == b'r') && j - i < 2 {
        seen_r |= bytes[j] == b'r';
        j += 1;
    }
    if !seen_r {
        return false;
    }
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Extracts rule names from a `dcs-lint: allow(a, b)` comment, if present.
fn parse_suppression(comment: &str) -> Option<Vec<String>> {
    let idx = comment.find("dcs-lint:")?;
    let rest = comment[idx + "dcs-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let inner = rest.strip_prefix('(')?;
    let end = inner.find(')')?;
    let rules: Vec<String> = inner[..end]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    (!rules.is_empty()).then_some(rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s.to_string()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_tokens() {
        let src = r##"
            // HashMap in a comment
            /* HashSet in /* nested */ block */
            let s = "HashMap inside";
            let r = r#"HashSet raw"#;
            let real = HashMap_actual;
        "##;
        let ids = idents(src);
        assert_eq!(
            ids,
            vec!["let", "s", "let", "r", "let", "real", "HashMap_actual"]
        );
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let l = lex("for i in 0..10 { x += 4.0f64; }");
        let nums: Vec<&str> = l
            .toks
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Number(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["0", "10", "4.0f64"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        // Should lex without treating `'a>(x...` as an unterminated char.
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Ident("str")));
    }

    #[test]
    fn suppressions_trailing_and_standalone() {
        let src = "let m = HashMap::new(); // dcs-lint: allow(hash-collections)\n\
                   // dcs-lint: allow(panic-path, wall-clock)\n\
                   x.unwrap();\n";
        let l = lex(src);
        let lines = l.suppressed_lines();
        assert_eq!(lines[0], (1, vec!["hash-collections".to_string()]));
        assert_eq!(
            lines[1],
            (3, vec!["panic-path".to_string(), "wall-clock".to_string()])
        );
    }

    #[test]
    fn cfg_test_regions_cover_mod_blocks() {
        let src = "fn prod() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n    fn t() { y.unwrap(); }\n}\n\
                   fn prod2() {}\n";
        let l = lex(src);
        let regions = l.test_regions();
        assert_eq!(regions.len(), 1);
        let (a, b) = regions[0];
        let in_region: Vec<&TokKind<'_>> = l.toks[a..=b].iter().map(|t| &t.kind).collect();
        assert!(in_region.contains(&&TokKind::Ident("tests")));
        assert!(in_region.contains(&&TokKind::Ident("y")));
        assert!(!in_region.contains(&&TokKind::Ident("prod2")));
    }

    #[test]
    fn nested_raw_strings_stay_opaque() {
        // The inner `"#` must not close an `r##"..."##` string; idents and
        // rule-visible tokens inside stay hidden.
        let src = "let s = r##\"outer r#\"inner HashMap\"# still raw\"##; let t = done;";
        let l = lex(src);
        let idents: Vec<&str> = l
            .toks
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect();
        assert!(!idents.contains(&"HashMap"), "{idents:?}");
        assert!(idents.contains(&"done"), "{idents:?}");
    }

    #[test]
    fn lifetime_r_is_not_a_raw_string_prefix() {
        // `'r` is a lifetime; the `r` must not start a raw string and eat
        // the rest of the file. The real raw string after it still lexes.
        let src =
            "fn f<'r>(x: &'r str) -> &'r str { x }\nlet y = r\"Instant::now()\";\nlet z = end;";
        let l = lex(src);
        let idents: Vec<&str> = l
            .toks
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect();
        assert!(idents.contains(&"end"), "{idents:?}");
        assert!(
            !idents.contains(&"Instant"),
            "raw string leaked: {idents:?}"
        );
        // Both lifetime mentions and the raw string arrive as opaque tokens.
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Opaque));
    }

    #[test]
    fn raw_byte_strings_and_plain_r_ident() {
        // `br#"..."#` is opaque; a bare `r` identifier stays an identifier.
        let src = "let r = 1; let b = br#\"SystemTime\"#; let q = r;";
        let l = lex(src);
        let idents: Vec<&str> = l
            .toks
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect();
        assert!(!idents.contains(&"SystemTime"), "{idents:?}");
        assert_eq!(
            idents.iter().filter(|s| **s == "r").count(),
            2,
            "{idents:?}"
        );
    }
}
