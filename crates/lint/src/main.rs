//! CLI entry point for `dcs-lint`.
//!
//! ```text
//! cargo run -p dcs-lint -- --workspace            # lint the whole tree
//! cargo run -p dcs-lint -- --workspace --stale-suppressions
//! cargo run -p dcs-lint -- --workspace --format json > lint.sarif
//! cargo run -p dcs-lint -- --list-rules           # print the catalogue
//! cargo run -p dcs-lint -- --file F --as REL      # lint one file as if at REL
//! ```
//!
//! Exit codes: 0 clean, 1 findings (or stale suppressions when the gate is
//! on), 2 usage or I/O error.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use dcs_lint::{
    allow::Allowlist, check_source, check_workspace_report, find_workspace_root, load_allowlist,
    rules, sarif,
};

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("dcs-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut args = env::args().skip(1);
    let mut workspace = false;
    let mut list_rules = false;
    let mut stale_gate = false;
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut file: Option<PathBuf> = None;
    let mut virtual_path: Option<String> = None;
    let mut allow_path: Option<PathBuf> = None;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--list-rules" => list_rules = true,
            "--stale-suppressions" => stale_gate = true,
            "--format" => {
                format = match next_value(&mut args, "--format")?.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (text|json)")),
                }
            }
            "--root" => root = Some(next_value(&mut args, "--root")?.into()),
            "--file" => file = Some(next_value(&mut args, "--file")?.into()),
            "--as" => virtual_path = Some(next_value(&mut args, "--as")?),
            "--allow" => allow_path = Some(next_value(&mut args, "--allow")?.into()),
            "--help" | "-h" => {
                print_usage();
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }

    if list_rules {
        for r in rules::RULES {
            println!("{:<18} {}", r.id, r.summary);
        }
        return Ok(ExitCode::SUCCESS);
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = env::current_dir().map_err(|e| e.to_string())?;
            find_workspace_root(&cwd).unwrap_or(cwd)
        }
    };

    let allow = match allow_path {
        Some(p) => {
            let text = fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
            Allowlist::parse(&text).map_err(|e| format!("{}: {e}", p.display()))?
        }
        None => load_allowlist(&root)?,
    };

    if let Some(file) = file {
        // Single-file mode: lexical rules only (the call graph needs the
        // whole workspace).
        let rel = virtual_path
            .or_else(|| {
                file.strip_prefix(&root)
                    .ok()
                    .map(|p| p.to_string_lossy().replace('\\', "/"))
            })
            .ok_or("--file outside the workspace root needs --as <workspace-relative-path>")?;
        let source = fs::read_to_string(&file).map_err(|e| format!("{}: {e}", file.display()))?;
        let findings = check_source(&rel, &source, &allow);
        return Ok(report(&findings, &[], format, false));
    }

    if !workspace {
        print_usage();
        return Ok(ExitCode::from(2));
    }

    let ws = check_workspace_report(&root, &allow).map_err(|e| e.to_string())?;
    let stale: Vec<String> = ws.stale.iter().map(|s| s.to_string()).collect();
    eprintln!(
        "dcs-lint: scanned {} files, modeled {} functions",
        ws.files_scanned, ws.fns_modeled
    );
    Ok(report(&ws.findings, &stale, format, stale_gate))
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
}

fn report(
    findings: &[dcs_lint::diag::Finding],
    stale: &[String],
    format: Format,
    stale_gate: bool,
) -> ExitCode {
    match format {
        Format::Text => {
            for f in findings {
                println!("{f}");
            }
        }
        Format::Json => print!("{}", sarif::render(findings)),
    }
    // Stale-suppression report always goes to stderr (never into SARIF).
    for s in stale {
        eprintln!("dcs-lint: {s}");
    }
    let fail = !findings.is_empty() || (stale_gate && !stale.is_empty());
    if !fail {
        eprintln!("dcs-lint: clean ({} rules)", rules::RULES.len());
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "dcs-lint: {} finding(s), {} stale suppression(s)",
            findings.len(),
            stale.len()
        );
        ExitCode::FAILURE
    }
}

fn next_value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn print_usage() {
    eprintln!(
        "usage: dcs-lint [--workspace] [--root DIR] [--allow FILE] \
         [--file F [--as REL]] [--format text|json] [--stale-suppressions] \
         [--list-rules]"
    );
}
