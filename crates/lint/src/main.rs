//! CLI entry point for `dcs-lint`.
//!
//! ```text
//! cargo run -p dcs-lint -- --workspace            # lint the whole tree
//! cargo run -p dcs-lint -- --list-rules           # print the catalogue
//! cargo run -p dcs-lint -- --file F --as REL      # lint one file as if at REL
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use dcs_lint::{
    allow::Allowlist, check_source, check_workspace, find_workspace_root, load_allowlist, rules,
};

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("dcs-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut args = env::args().skip(1);
    let mut workspace = false;
    let mut list_rules = false;
    let mut root: Option<PathBuf> = None;
    let mut file: Option<PathBuf> = None;
    let mut virtual_path: Option<String> = None;
    let mut allow_path: Option<PathBuf> = None;

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--list-rules" => list_rules = true,
            "--root" => root = Some(next_value(&mut args, "--root")?.into()),
            "--file" => file = Some(next_value(&mut args, "--file")?.into()),
            "--as" => virtual_path = Some(next_value(&mut args, "--as")?),
            "--allow" => allow_path = Some(next_value(&mut args, "--allow")?.into()),
            "--help" | "-h" => {
                print_usage();
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }

    if list_rules {
        for r in rules::RULES {
            println!("{:<18} {}", r.id, r.summary);
        }
        return Ok(ExitCode::SUCCESS);
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = env::current_dir().map_err(|e| e.to_string())?;
            find_workspace_root(&cwd).unwrap_or(cwd)
        }
    };

    let allow = match allow_path {
        Some(p) => {
            let text = fs::read_to_string(&p).map_err(|e| format!("{}: {e}", p.display()))?;
            Allowlist::parse(&text).map_err(|e| format!("{}: {e}", p.display()))?
        }
        None => load_allowlist(&root)?,
    };

    let findings = if let Some(file) = file {
        let rel = virtual_path
            .or_else(|| {
                file.strip_prefix(&root)
                    .ok()
                    .map(|p| p.to_string_lossy().replace('\\', "/"))
            })
            .ok_or("--file outside the workspace root needs --as <workspace-relative-path>")?;
        let source = fs::read_to_string(&file).map_err(|e| format!("{}: {e}", file.display()))?;
        check_source(&rel, &source, &allow)
    } else if workspace {
        check_workspace(&root, &allow).map_err(|e| e.to_string())?
    } else {
        print_usage();
        return Ok(ExitCode::from(2));
    };

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        eprintln!("dcs-lint: clean ({} rules)", rules::RULES.len());
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("dcs-lint: {} finding(s)", findings.len());
        Ok(ExitCode::FAILURE)
    }
}

fn next_value(args: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    args.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn print_usage() {
    eprintln!(
        "usage: dcs-lint [--workspace] [--root DIR] [--allow FILE] \
         [--file F [--as REL]] [--list-rules]"
    );
}
