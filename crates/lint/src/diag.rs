//! Rustc-style diagnostics for lint findings.

use std::fmt;

/// One lint finding at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier, e.g. `hash-collections`.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The offending source line, verbatim (trimmed of trailing whitespace).
    pub snippet: String,
    /// A short fix hint.
    pub hint: &'static str,
    /// Optional call-chain / explanation notes (graph rules), printed as
    /// `note:` lines after the snippet.
    pub notes: Vec<String>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[{}]: {}", self.rule, self.hint)?;
        writeln!(f, "  --> {}:{}:{}", self.path, self.line, self.col)?;
        let gutter = format!("{}", self.line);
        writeln!(f, "{:width$} |", "", width = gutter.len())?;
        writeln!(f, "{} | {}", gutter, self.snippet)?;
        let caret_pad = (self.col as usize).saturating_sub(1);
        writeln!(
            f,
            "{:width$} | {:pad$}^",
            "",
            "",
            width = gutter.len(),
            pad = caret_pad
        )?;
        for note in &self.notes {
            writeln!(f, "{:width$} = note: {}", "", note, width = gutter.len())?;
        }
        writeln!(
            f,
            "{:width$} = help: suppress with `// dcs-lint: allow({})` or a lint-allow.toml entry",
            "",
            self.rule,
            width = gutter.len()
        )
    }
}

/// Extracts (line, trimmed text) for a 1-based line number.
pub fn line_snippet(source: &str, line: u32) -> String {
    source
        .lines()
        .nth(line.saturating_sub(1) as usize)
        .unwrap_or("")
        .trim_end()
        .to_string()
}
