//! Pass 1 of the two-pass analyzer: a lightweight per-file item model.
//!
//! The lexer ([`crate::lexer`]) gives a comment/string-aware token stream;
//! this module shapes it into the structure the graph rules need — the
//! `mod` tree, `use` aliases, every `fn` (with its impl type and body token
//! range), the call sites inside each body, and three kinds of per-function
//! facts: nondeterminism sources (`nondet-taint`), lock acquisitions with
//! the guards held at each point (`lock-order`), and `Ordering::Relaxed`
//! atomic loads whose result feeds a decision (`atomic-ordering`).
//!
//! Everything here is a deliberate approximation: there is no type
//! inference and no macro expansion. The invariants the rules lean on are
//! documented inline; fixture tests in `tests/graph.rs` pin the behaviour.

use crate::lexer::{Lexed, Tok, TokKind};

/// Kinds of nondeterminism a function can introduce directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// `Instant::now` / `SystemTime::now` — wall-clock reads.
    WallClock,
    /// `thread_rng` / `from_entropy` / `rand::random` — OS entropy.
    UnseededRng,
    /// Iteration over a `HashMap`/`HashSet`-typed binding — RandomState
    /// order varies per process.
    HashIteration,
    /// `std::thread::available_parallelism` — host-shape dependence.
    HostParallelism,
    /// `std::env::var` — environment dependence.
    EnvRead,
}

impl SourceKind {
    /// Human label used in diagnostics chains.
    pub fn label(self) -> &'static str {
        match self {
            SourceKind::WallClock => "wall-clock read",
            SourceKind::UnseededRng => "unseeded OS randomness",
            SourceKind::HashIteration => "HashMap/HashSet iteration order",
            SourceKind::HostParallelism => "host parallelism probe",
            SourceKind::EnvRead => "environment variable read",
        }
    }
}

/// One direct nondeterminism source inside a function body.
#[derive(Debug, Clone)]
pub struct NondetSource {
    /// What kind of source.
    pub kind: SourceKind,
    /// The offending token text (e.g. `available_parallelism`).
    pub what: String,
    /// 1-based source line.
    pub line: u32,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (last path segment before the `(`).
    pub name: String,
    /// `Foo` for `Foo::bar(..)`, `a::b` flattened to its last segment.
    pub qualifier: Option<String>,
    /// True for `.name(..)` method-call syntax.
    pub is_method: bool,
    /// True for `self.name(..)` — resolvable against the enclosing impl.
    pub recv_self: bool,
    /// 1-based source line.
    pub line: u32,
    /// Lock identities held (let-bound guards in scope) at this call.
    pub holding: Vec<String>,
}

/// One lock acquisition (`.lock()` / zero-arg `.read()` / `.write()`).
#[derive(Debug, Clone)]
pub struct LockAcq {
    /// Normalized lock identity, e.g. `SigCache.shards` or `self.inner`.
    pub lock: String,
    /// The acquiring method: `lock`, `read`, or `write`.
    pub op: String,
    /// 1-based source line.
    pub line: u32,
    /// Identities of let-bound guards still in scope at this acquisition.
    pub held: Vec<String>,
}

/// A `.load(Ordering::Relaxed)` whose result reaches a decision point.
#[derive(Debug, Clone)]
pub struct RelaxedLoad {
    /// Why it was flagged: `branch-condition`, `comparison`, or `return`.
    pub context: &'static str,
    /// 1-based source line.
    pub line: u32,
}

/// One `fn` item: identity, location, and the facts pass 2 consumes.
#[derive(Debug, Clone)]
pub struct FnModel {
    /// Workspace-relative file path.
    pub file: String,
    /// Module path within the file (nested `mod` blocks).
    pub module: Vec<String>,
    /// Enclosing `impl`/`trait` type name, if any.
    pub self_ty: Option<String>,
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// True when the item sits inside a `#[cfg(test)]` region.
    pub in_cfg_test: bool,
    /// Idents appearing in the return type (for the `*Stats` exemption).
    pub ret_idents: Vec<String>,
    /// Call sites in body order.
    pub calls: Vec<CallSite>,
    /// Direct nondeterminism sources.
    pub sources: Vec<NondetSource>,
    /// Lock acquisitions in body order.
    pub locks: Vec<LockAcq>,
    /// Flagged relaxed atomic loads.
    pub relaxed: Vec<RelaxedLoad>,
}

impl FnModel {
    /// `Type::name` when inside an impl, else the bare name.
    pub fn qual(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{}::{}", ty, self.name),
            None => self.name.clone(),
        }
    }
}

/// One parsed file: its `use` aliases and its functions.
#[derive(Debug, Default)]
pub struct FileModel {
    /// Workspace-relative path.
    pub path: String,
    /// `use` aliases: visible name → full `::`-joined path.
    pub uses: Vec<(String, String)>,
    /// Every function in the file, in source order.
    pub fns: Vec<FnModel>,
}

impl FileModel {
    /// Resolves a visible name through this file's `use` aliases.
    pub fn resolve_use(&self, name: &str) -> Option<&str> {
        self.uses
            .iter()
            .rev()
            .find(|(alias, _)| alias == name)
            .map(|(_, full)| full.as_str())
    }
}

/// Rust keywords that look like calls when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "let", "fn", "impl", "struct", "enum",
    "trait", "mod", "use", "pub", "move", "unsafe", "as", "in", "else", "break", "continue",
    "where", "ref", "mut", "dyn", "async", "await", "const", "static", "type", "crate", "super",
    "self", "Self",
];

/// Parses one lexed file into its item model.
pub fn parse_file(path: &str, lexed: &Lexed<'_>) -> FileModel {
    let toks = &lexed.toks;
    let test_regions = lexed.test_regions();
    let hash_names = collect_hash_names(toks);
    let mut out = FileModel {
        path: path.to_string(),
        ..FileModel::default()
    };

    // Context stack: (kind, name, brace depth at which the block opened).
    enum Ctx {
        Module(String),
        Type(String),
    }
    let mut ctxs: Vec<(Ctx, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('{') => {
                depth += 1;
                i += 1;
            }
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                while matches!(ctxs.last(), Some((_, d)) if *d > depth) {
                    ctxs.pop();
                }
                i += 1;
            }
            TokKind::Ident("use") => {
                let end = parse_use(toks, i + 1, &mut out.uses);
                i = end;
            }
            TokKind::Ident("mod") => {
                // `mod name {` opens a module scope; `mod name;` does not.
                if let Some(TokKind::Ident(name)) = toks.get(i + 1).map(|t| &t.kind) {
                    if matches!(toks.get(i + 2).map(|t| &t.kind), Some(TokKind::Punct('{'))) {
                        ctxs.push((Ctx::Module(name.to_string()), depth + 1));
                        depth += 1;
                        i += 3;
                        continue;
                    }
                }
                i += 1;
            }
            TokKind::Ident("impl") | TokKind::Ident("trait") => {
                let is_trait = matches!(&toks[i].kind, TokKind::Ident("trait"));
                if let Some((ty, body_open)) = parse_impl_header(toks, i, is_trait) {
                    ctxs.push((Ctx::Type(ty), depth + 1));
                    depth += 1;
                    i = body_open + 1;
                } else {
                    i += 1;
                }
            }
            TokKind::Ident("fn") => {
                let module: Vec<String> = ctxs
                    .iter()
                    .filter_map(|(c, _)| match c {
                        Ctx::Module(m) => Some(m.clone()),
                        _ => None,
                    })
                    .collect();
                let self_ty = ctxs.iter().rev().find_map(|(c, _)| match c {
                    Ctx::Type(t) => Some(t.clone()),
                    _ => None,
                });
                let in_test = test_regions.iter().any(|&(a, b)| i >= a && i <= b);
                match parse_fn(
                    path,
                    toks,
                    i,
                    module,
                    self_ty,
                    in_test,
                    &hash_names,
                    &mut out.fns,
                ) {
                    Some(after) => i = after,
                    None => i += 1,
                }
            }
            _ => i += 1,
        }
    }
    out
}

/// Collects identifiers bound to `HashMap`/`HashSet` types anywhere in the
/// file: `name: HashMap<..>` annotations (incl. struct fields) and
/// `name = HashMap::new()`-style initializations. Iterating one of these is
/// a nondeterminism source.
fn collect_hash_names(toks: &[Tok<'_>]) -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..toks.len() {
        let TokKind::Ident(h) = &toks[i].kind else {
            continue;
        };
        if *h != "HashMap" && *h != "HashSet" {
            continue;
        }
        // Walk back over `&` / `mut` so `name: &mut HashMap<..>` binds too.
        let mut j = i;
        while j >= 1
            && (toks[j - 1].kind == TokKind::Punct('&')
                || toks[j - 1].kind == TokKind::Ident("mut"))
        {
            j -= 1;
        }
        // `name : HashMap` (annotation) but not `path :: HashMap`.
        if j >= 2
            && toks[j - 1].kind == TokKind::Punct(':')
            && toks[j - 2].kind != TokKind::Punct(':')
        {
            if let TokKind::Ident(name) = &toks[j - 2].kind {
                names.push(name.to_string());
            }
        }
        // `name = HashMap` (initialization).
        if j >= 2 && toks[j - 1].kind == TokKind::Punct('=') {
            if let TokKind::Ident(name) = &toks[j - 2].kind {
                names.push(name.to_string());
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Parses a `use` declaration starting after the `use` keyword, appending
/// `(alias, full path)` pairs. Handles `a::b::C`, `as` renames, and one
/// level of `{...}` groups; `*` globs are skipped. Returns the index past
/// the terminating `;`.
fn parse_use(toks: &[Tok<'_>], start: usize, uses: &mut Vec<(String, String)>) -> usize {
    let mut prefix: Vec<String> = Vec::new();
    let mut i = start;
    while i < toks.len() {
        match &toks[i].kind {
            // `as` rename of a plain path: `use a::B as C;`
            TokKind::Ident("as") => {
                if let Some(TokKind::Ident(alias)) = toks.get(i + 1).map(|t| &t.kind) {
                    uses.push((alias.to_string(), prefix.join("::")));
                }
                let mut j = i + 1;
                while j < toks.len() && toks[j].kind != TokKind::Punct(';') {
                    j += 1;
                }
                return j + 1;
            }
            TokKind::Ident(s) => {
                prefix.push(s.to_string());
                i += 1;
            }
            TokKind::Punct(':') => {
                i += 1;
            }
            TokKind::Punct('{') => {
                // Group: each comma-separated leaf extends the prefix.
                let mut leaf: Vec<String> = Vec::new();
                let mut alias: Option<String> = None;
                let mut after_as = false;
                let mut gdepth = 1usize;
                i += 1;
                while i < toks.len() && gdepth > 0 {
                    match &toks[i].kind {
                        TokKind::Punct('{') => gdepth += 1,
                        TokKind::Punct('}') => {
                            gdepth -= 1;
                            if gdepth == 0 {
                                flush_use_leaf(&prefix, &mut leaf, &mut alias, uses);
                            }
                        }
                        TokKind::Punct(',') if gdepth == 1 => {
                            flush_use_leaf(&prefix, &mut leaf, &mut alias, uses);
                            after_as = false;
                        }
                        TokKind::Ident("as") => after_as = true,
                        TokKind::Ident(s) => {
                            if after_as {
                                alias = Some(s.to_string());
                                after_as = false;
                            } else {
                                leaf.push(s.to_string());
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            TokKind::Punct(';') => {
                if !prefix.is_empty() {
                    let alias = prefix.last().cloned().unwrap_or_default();
                    uses.push((alias, prefix.join("::")));
                }
                return i + 1;
            }
            _ => {
                // Glob or unexpected token: skip to `;`.
                while i < toks.len() && toks[i].kind != TokKind::Punct(';') {
                    i += 1;
                }
                return i + 1;
            }
        }
    }
    i
}

/// Records one leaf of a `use` group against the accumulated prefix.
fn flush_use_leaf(
    prefix: &[String],
    leaf: &mut Vec<String>,
    alias: &mut Option<String>,
    uses: &mut Vec<(String, String)>,
) {
    if leaf.is_empty() {
        *alias = None;
        return;
    }
    let mut full: Vec<String> = prefix.to_vec();
    full.extend(leaf.iter().cloned());
    let name = alias
        .take()
        .unwrap_or_else(|| leaf.last().cloned().unwrap_or_default());
    if name != "self" {
        uses.push((name, full.join("::")));
    } else if let Some(last) = prefix.last() {
        // `use a::b::{self, C}` makes `b` visible.
        uses.push((last.clone(), prefix.join("::")));
    }
    leaf.clear();
}

/// Parses an `impl`/`trait` header at `i`, returning the self-type name and
/// the index of the opening `{`. `impl Trait for Type` yields `Type`.
fn parse_impl_header(toks: &[Tok<'_>], i: usize, is_trait: bool) -> Option<(String, usize)> {
    let mut j = i + 1;
    // Skip `<...>` generic params (a `-` before `>` is `->`, not a closer).
    j = skip_generics(toks, j);
    let mut first: Vec<&str> = Vec::new();
    let mut second: Vec<&str> = Vec::new();
    let mut cur = &mut first;
    let mut angle = 0i32;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('{') if angle == 0 => {
                let picked = if second.is_empty() { &first } else { &second };
                // A trait's name is its first path segment (`trait X: Y`);
                // an impl target is the last (`impl fmt::Display for T`).
                let ty = if is_trait {
                    picked.first()
                } else {
                    picked.last()
                };
                return Some((ty?.to_string(), j));
            }
            TokKind::Punct(';') => return None, // e.g. trait alias
            TokKind::Ident("for") if angle == 0 && !is_trait => {
                cur = &mut second;
            }
            TokKind::Ident("where") if angle == 0 => {
                // Type is settled; scan on to the `{`.
                let picked = if second.is_empty() { &first } else { &second };
                let ty = if is_trait {
                    picked.first()?.to_string()
                } else {
                    picked.last()?.to_string()
                };
                let mut k = j;
                let mut ang = 0i32;
                while k < toks.len() {
                    match &toks[k].kind {
                        TokKind::Punct('<') => ang += 1,
                        TokKind::Punct('>') if !prev_is(toks, k, '-') => ang -= 1,
                        TokKind::Punct('{') if ang <= 0 => return Some((ty, k)),
                        TokKind::Punct(';') => return None,
                        _ => {}
                    }
                    k += 1;
                }
                return None;
            }
            TokKind::Punct('<') => {
                angle += 1;
            }
            TokKind::Punct('>') if !prev_is(toks, j, '-') => {
                angle -= 1;
            }
            TokKind::Ident(s) if angle == 0 && *s != "dyn" && *s != "mut" && *s != "const" => {
                cur.push(s);
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// True when the token before `i` is the punct `c`.
fn prev_is(toks: &[Tok<'_>], i: usize, c: char) -> bool {
    i > 0 && toks[i - 1].kind == TokKind::Punct(c)
}

/// Skips a `<...>` group starting at `j` (if present), angle-matched.
fn skip_generics(toks: &[Tok<'_>], j: usize) -> usize {
    if !matches!(toks.get(j).map(|t| &t.kind), Some(TokKind::Punct('<'))) {
        return j;
    }
    let mut depth = 0i32;
    let mut k = j;
    while k < toks.len() {
        match &toks[k].kind {
            TokKind::Punct('<') => depth += 1,
            TokKind::Punct('>') if !prev_is(toks, k, '-') => {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
        k += 1;
    }
    k
}

/// Parses a `fn` item at token index `i` (the `fn` keyword), pushing a
/// [`FnModel`] (and any nested fns) onto `fns`. Returns the index past the
/// item, or `None` if this isn't a parsable fn (e.g. `fn` in a type).
#[allow(clippy::too_many_arguments)]
fn parse_fn(
    path: &str,
    toks: &[Tok<'_>],
    i: usize,
    module: Vec<String>,
    self_ty: Option<String>,
    in_cfg_test: bool,
    hash_names: &[String],
    fns: &mut Vec<FnModel>,
) -> Option<usize> {
    let TokKind::Ident(name) = &toks.get(i + 1)?.kind else {
        return None; // `fn(` pointer type, `Fn(..)` bound, etc.
    };
    let line = toks[i].line;
    let mut j = skip_generics(toks, i + 2);
    // Parameter list.
    if !matches!(toks.get(j).map(|t| &t.kind), Some(TokKind::Punct('('))) {
        return None;
    }
    let mut paren = 0i32;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('(') => paren += 1,
            TokKind::Punct(')') => {
                paren -= 1;
                if paren == 0 {
                    j += 1;
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    // Return type (idents until `{`, `;`, or `where`).
    let mut ret_idents = Vec::new();
    let mut saw_arrow = false;
    let mut body_open = None;
    while j < toks.len() {
        match &toks[j].kind {
            TokKind::Punct('{') => {
                body_open = Some(j);
                break;
            }
            TokKind::Punct(';') => break, // trait method declaration
            TokKind::Ident("where") => saw_arrow = false,
            TokKind::Punct('>') if prev_is(toks, j, '-') => saw_arrow = true,
            TokKind::Ident(s) if saw_arrow => ret_idents.push(s.to_string()),
            _ => {}
        }
        j += 1;
    }
    let Some(open) = body_open else {
        return Some(j + 1);
    };
    // Body token range by brace matching.
    let mut depth = 0i32;
    let mut end = open;
    while end < toks.len() {
        match &toks[end].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        end += 1;
    }

    let mut model = FnModel {
        file: path.to_string(),
        module: module.clone(),
        self_ty: self_ty.clone(),
        name: name.to_string(),
        line,
        in_cfg_test,
        ret_idents,
        calls: Vec::new(),
        sources: Vec::new(),
        locks: Vec::new(),
        relaxed: Vec::new(),
    };
    scan_body(
        path,
        toks,
        open + 1,
        end,
        module,
        self_ty,
        in_cfg_test,
        hash_names,
        &mut model,
        fns,
    );
    fns.push(model);
    Some(end + 1)
}

/// A let-bound lock guard in scope.
struct Guard {
    /// Lock identity.
    lock: String,
    /// Variable name it is bound to (for `drop(name)`).
    var: Option<String>,
    /// Brace depth at which the binding lives.
    depth: i32,
}

/// Scans a fn body `toks[start..end)`, filling `model` with calls, sources,
/// locks, and relaxed loads. Nested `fn` items recurse into `fns`.
#[allow(clippy::too_many_arguments)]
fn scan_body(
    path: &str,
    toks: &[Tok<'_>],
    start: usize,
    end: usize,
    module: Vec<String>,
    self_ty: Option<String>,
    in_cfg_test: bool,
    hash_names: &[String],
    model: &mut FnModel,
    fns: &mut Vec<FnModel>,
) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    // Local `let` bindings whose initializing statement mentions no hash
    // collection shadow same-named hash bindings from elsewhere in the file
    // (e.g. a local `verdicts: Vec<_>` vs a `verdicts: HashMap` field).
    let mut shadowed: Vec<String> = Vec::new();
    // Statement tracking for the atomic-ordering contexts.
    let mut stmt_start = start;
    let mut stmt_has_let = false;
    let mut i = start;
    while i < end {
        match &toks[i].kind {
            TokKind::Punct('{') => {
                depth += 1;
                i += 1;
                stmt_start = i;
                stmt_has_let = false;
            }
            TokKind::Punct('}') => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
                i += 1;
                stmt_start = i;
                stmt_has_let = false;
            }
            TokKind::Punct(';') => {
                i += 1;
                stmt_start = i;
                stmt_has_let = false;
            }
            TokKind::Ident("let") => {
                stmt_has_let = true;
                // Simple `let [mut] name (: Ty)? = init;` bindings: decide
                // whether `name` shadows a hash-typed name, by scanning the
                // statement for HashMap/HashSet mentions.
                let mut j = i + 1;
                if matches!(toks.get(j).map(|t| &t.kind), Some(TokKind::Ident("mut"))) {
                    j += 1;
                }
                if let Some(TokKind::Ident(bound)) = toks.get(j).map(|t| &t.kind) {
                    let simple = matches!(
                        toks.get(j + 1).map(|t| &t.kind),
                        Some(TokKind::Punct(':')) | Some(TokKind::Punct('='))
                    );
                    if simple {
                        let mut k = j + 1;
                        let mut has_hash = false;
                        while k < end && k < j + 64 {
                            match &toks[k].kind {
                                TokKind::Punct(';') => break,
                                TokKind::Ident("HashMap") | TokKind::Ident("HashSet") => {
                                    has_hash = true;
                                    break;
                                }
                                _ => k += 1,
                            }
                        }
                        if has_hash {
                            shadowed.retain(|s| s != bound);
                        } else if !shadowed.iter().any(|s| s == bound) {
                            shadowed.push(bound.to_string());
                        }
                    }
                }
                i += 1;
            }
            TokKind::Ident("fn") => {
                // A nested fn: parse it as its own item and skip its body.
                match parse_fn(
                    path,
                    toks,
                    i,
                    module.clone(),
                    self_ty.clone(),
                    in_cfg_test,
                    hash_names,
                    fns,
                ) {
                    Some(after) if after > i => {
                        i = after;
                        stmt_start = i;
                        stmt_has_let = false;
                    }
                    _ => i += 1,
                }
            }
            TokKind::Ident("drop")
                if matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct('('))) =>
            {
                // `drop(guard)` releases a named guard early.
                if let Some(TokKind::Ident(var)) = toks.get(i + 2).map(|t| &t.kind) {
                    if matches!(toks.get(i + 3).map(|t| &t.kind), Some(TokKind::Punct(')'))) {
                        guards.retain(|g| g.var.as_deref() != Some(*var));
                    }
                }
                i += 1;
            }
            TokKind::Ident(name) => {
                let is_macro =
                    matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct('!')));
                let is_call = matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct('(')));
                if is_macro || !is_call {
                    // Source idents that matter even without call syntax are
                    // all call-shaped, so nothing to do for bare idents.
                    i += 1;
                    continue;
                }
                if NON_CALL_KEYWORDS.contains(name) {
                    i += 1;
                    continue;
                }
                let is_method = prev_is(toks, i, '.');
                let qualifier = call_qualifier(toks, i);
                let recv_self = is_method
                    && matches!(
                        toks.get(i.wrapping_sub(2)).map(|t| &t.kind),
                        Some(TokKind::Ident("self"))
                    );
                let held: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();

                // --- nondeterminism sources ---
                let src = match (*name, qualifier.as_deref()) {
                    ("now", Some("Instant")) => Some((SourceKind::WallClock, "Instant::now")),
                    ("now", Some("SystemTime")) => Some((SourceKind::WallClock, "SystemTime::now")),
                    ("thread_rng", _) => Some((SourceKind::UnseededRng, "thread_rng")),
                    ("from_entropy", _) => Some((SourceKind::UnseededRng, "from_entropy")),
                    ("random", Some("rand")) => Some((SourceKind::UnseededRng, "rand::random")),
                    ("available_parallelism", _) => {
                        Some((SourceKind::HostParallelism, "available_parallelism"))
                    }
                    ("var", Some("env")) => Some((SourceKind::EnvRead, "env::var")),
                    _ => None,
                };
                if let Some((kind, what)) = src {
                    model.sources.push(NondetSource {
                        kind,
                        what: what.to_string(),
                        line: toks[i].line,
                    });
                }
                // Hash-iteration source: `.iter()`-family call on a binding
                // known to be a HashMap/HashSet.
                const ITER_METHODS: &[&str] = &[
                    "iter",
                    "iter_mut",
                    "keys",
                    "values",
                    "values_mut",
                    "drain",
                    "into_iter",
                ];
                if is_method && ITER_METHODS.contains(name) {
                    if let Some(TokKind::Ident(recv)) = toks.get(i.wrapping_sub(2)).map(|t| &t.kind)
                    {
                        if hash_names.iter().any(|h| h == recv)
                            && !shadowed.iter().any(|s| s == recv)
                        {
                            model.sources.push(NondetSource {
                                kind: SourceKind::HashIteration,
                                what: format!("{recv}.{name}()"),
                                line: toks[i].line,
                            });
                        }
                    }
                }

                // --- lock acquisitions: zero-arg .lock()/.read()/.write() ---
                if is_method
                    && matches!(*name, "lock" | "read" | "write")
                    && matches!(toks.get(i + 2).map(|t| &t.kind), Some(TokKind::Punct(')')))
                {
                    let ident = receiver_identity(toks, i, self_ty.as_deref());
                    model.locks.push(LockAcq {
                        lock: ident.clone(),
                        op: name.to_string(),
                        line: toks[i].line,
                        held: held.clone(),
                    });
                    // A let-bound guard stays in scope to the end of its
                    // block; a temporary dies with its statement and never
                    // counts as held (iterator chains acquire sequentially).
                    if stmt_has_let {
                        let var = let_var_name(toks, stmt_start);
                        guards.push(Guard {
                            lock: ident,
                            var,
                            depth,
                        });
                    }
                }

                // --- relaxed atomic loads feeding decisions ---
                if is_method && *name == "load" {
                    if let Some(close) = relaxed_load_close(toks, i, end) {
                        if let Some(context) = relaxed_context(toks, stmt_start, i, close, end) {
                            model.relaxed.push(RelaxedLoad {
                                context,
                                line: toks[i].line,
                            });
                        }
                    }
                }

                // --- the call site itself ---
                model.calls.push(CallSite {
                    name: name.to_string(),
                    qualifier,
                    is_method,
                    recv_self,
                    line: toks[i].line,
                    holding: held,
                });
                i += 1;
            }
            _ => i += 1,
        }
    }
}

/// The qualifier of a call at `i`: `Foo` for `Foo::bar(`, the last segment
/// for longer paths (`std::env::var(` → `env`).
fn call_qualifier(toks: &[Tok<'_>], i: usize) -> Option<String> {
    if i < 3 {
        return None;
    }
    if toks[i - 1].kind == TokKind::Punct(':') && toks[i - 2].kind == TokKind::Punct(':') {
        if let TokKind::Ident(q) = &toks[i - 3].kind {
            return Some(q.to_string());
        }
    }
    None
}

/// Builds a lock identity from the receiver chain before `.lock()` at `i`:
/// `self.shards[k].lock()` → `Type.shards`, `GLOBAL.lock()` → `GLOBAL`.
/// Method-call links keep their parens: `self.shard(&key).lock()` →
/// `Type.shard()`.
fn receiver_identity(toks: &[Tok<'_>], i: usize, self_ty: Option<&str>) -> String {
    let mut parts: Vec<String> = Vec::new();
    // Walk backwards from the `.` before the lock method.
    let mut j = i as i64 - 2; // skip the `.`
    while j >= 0 {
        match &toks[j as usize].kind {
            TokKind::Punct(']') => {
                // Skip the index expression.
                let mut d = 0i32;
                while j >= 0 {
                    match &toks[j as usize].kind {
                        TokKind::Punct(']') => d += 1,
                        TokKind::Punct('[') => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j -= 1;
                }
                j -= 1;
            }
            TokKind::Punct(')') => {
                // Skip a call's arguments; keep the method name with `()`.
                let mut d = 0i32;
                while j >= 0 {
                    match &toks[j as usize].kind {
                        TokKind::Punct(')') => d += 1,
                        TokKind::Punct('(') => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j -= 1;
                }
                j -= 1;
                if j >= 0 {
                    if let TokKind::Ident(m) = &toks[j as usize].kind {
                        parts.push(format!("{m}()"));
                        j -= 1;
                    }
                }
            }
            TokKind::Ident(name) => {
                parts.push(name.to_string());
                j -= 1;
            }
            TokKind::Punct('.') => {
                j -= 1;
            }
            _ => break,
        }
    }
    parts.reverse();
    // Qualify a leading `self` with the impl type so `self.inner` on two
    // different types stays two different locks.
    if parts.first().map(String::as_str) == Some("self") {
        if let Some(ty) = self_ty {
            parts[0] = ty.to_string();
        }
    }
    if parts.is_empty() {
        "<expr>".to_string()
    } else {
        parts.join(".")
    }
}

/// The variable a `let` statement starting at `stmt_start` binds, if it is
/// a simple `let [mut] name = ...` pattern.
fn let_var_name(toks: &[Tok<'_>], stmt_start: usize) -> Option<String> {
    let mut j = stmt_start;
    // The statement may not literally start at `let` (attributes etc.);
    // find the first `let` within a few tokens.
    let mut seen_let = false;
    let limit = j + 6;
    while j < toks.len() && j < limit + 4 {
        match &toks[j].kind {
            TokKind::Ident("let") => {
                seen_let = true;
                j += 1;
            }
            TokKind::Ident("mut") if seen_let => j += 1,
            TokKind::Ident(name) if seen_let => return Some(name.to_string()),
            _ if seen_let => return None,
            _ => j += 1,
        }
    }
    None
}

/// For a `.load(` at `i`, returns the index of its closing paren when the
/// arguments mention `Relaxed`.
fn relaxed_load_close(toks: &[Tok<'_>], i: usize, end: usize) -> Option<usize> {
    let open = i + 1;
    let mut d = 0i32;
    let mut relaxed = false;
    let mut j = open;
    while j < end {
        match &toks[j].kind {
            TokKind::Punct('(') => d += 1,
            TokKind::Punct(')') => {
                d -= 1;
                if d == 0 {
                    return relaxed.then_some(j);
                }
            }
            TokKind::Ident("Relaxed") => relaxed = true,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Classifies how a relaxed load's value is used, or `None` when the
/// statement looks like pure metrics plumbing.
fn relaxed_context(
    toks: &[Tok<'_>],
    stmt_start: usize,
    load_idx: usize,
    close: usize,
    end: usize,
) -> Option<&'static str> {
    // Branch keyword anywhere between the statement start and the load.
    for t in &toks[stmt_start..load_idx] {
        if let TokKind::Ident(k) = &t.kind {
            if matches!(*k, "if" | "while" | "match") {
                return Some("branch-condition");
            }
            if *k == "return" {
                return Some("return");
            }
        }
    }
    // Comparison operator shortly after the call.
    let tail = &toks[close + 1..(close + 6).min(end)];
    for (n, t) in tail.iter().enumerate() {
        match &t.kind {
            TokKind::Punct('=') => {
                // `==` only (a lone `=` is an assignment).
                if matches!(tail.get(n + 1).map(|t| &t.kind), Some(TokKind::Punct('='))) {
                    return Some("comparison");
                }
                if n > 0
                    && matches!(
                        tail.get(n - 1).map(|t| &t.kind),
                        Some(TokKind::Punct('!') | TokKind::Punct('<') | TokKind::Punct('>'))
                    )
                {
                    return Some("comparison");
                }
            }
            TokKind::Punct('<') | TokKind::Punct('>') => return Some("comparison"),
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> FileModel {
        parse_file("crates/x/src/lib.rs", &lex(src))
    }

    #[test]
    fn fn_items_capture_impl_and_module_context() {
        let src = r#"
            mod inner {
                pub struct Cache { map: u32 }
                impl Cache {
                    pub fn get(&self) -> u32 { self.helper() }
                    fn helper(&self) -> u32 { 1 }
                }
                impl std::fmt::Display for Cache {
                    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { todo()
                    }
                }
            }
            pub fn free() {}
        "#;
        let m = parse(src);
        let quals: Vec<String> = m.fns.iter().map(|f| f.qual()).collect();
        assert!(quals.contains(&"Cache::get".to_string()), "{quals:?}");
        assert!(quals.contains(&"Cache::helper".to_string()), "{quals:?}");
        assert!(quals.contains(&"Cache::fmt".to_string()), "{quals:?}");
        assert!(quals.contains(&"free".to_string()), "{quals:?}");
        let get = m.fns.iter().find(|f| f.name == "get").unwrap();
        assert_eq!(get.module, vec!["inner".to_string()]);
        assert!(get.calls.iter().any(|c| c.name == "helper" && c.recv_self));
    }

    #[test]
    fn use_aliases_resolve_including_renames_and_groups() {
        let src = "use std::collections::{BTreeMap as Sorted, VecDeque};\n\
                   use crate::engine::run_sharded;\n";
        let m = parse(src);
        assert_eq!(m.resolve_use("Sorted"), Some("std::collections::BTreeMap"));
        assert_eq!(
            m.resolve_use("VecDeque"),
            Some("std::collections::VecDeque")
        );
        assert_eq!(
            m.resolve_use("run_sharded"),
            Some("crate::engine::run_sharded")
        );
    }

    #[test]
    fn sources_are_detected_with_lines() {
        let src = r#"
            fn shards() -> usize {
                if let Ok(v) = std::env::var("X") { let _ = v; }
                let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
                cores
            }
            fn clocky() { let _ = Instant::now(); }
        "#;
        let m = parse(src);
        let shards = m.fns.iter().find(|f| f.name == "shards").unwrap();
        let kinds: Vec<SourceKind> = shards.sources.iter().map(|s| s.kind).collect();
        assert!(kinds.contains(&SourceKind::EnvRead), "{kinds:?}");
        assert!(kinds.contains(&SourceKind::HostParallelism), "{kinds:?}");
        let clocky = m.fns.iter().find(|f| f.name == "clocky").unwrap();
        assert_eq!(clocky.sources[0].kind, SourceKind::WallClock);
    }

    #[test]
    fn hash_iteration_requires_a_hash_typed_receiver() {
        let src = r#"
            struct S { verdicts: HashMap<u8, bool>, order: Vec<u8> }
            impl S {
                fn bad(&self) -> usize { self.verdicts.iter().count() }
                fn fine(&self) -> usize { self.order.iter().count() }
            }
        "#;
        let m = parse(src);
        let bad = m.fns.iter().find(|f| f.name == "bad").unwrap();
        assert_eq!(bad.sources.len(), 1);
        assert_eq!(bad.sources[0].kind, SourceKind::HashIteration);
        let fine = m.fns.iter().find(|f| f.name == "fine").unwrap();
        assert!(fine.sources.is_empty());
    }

    #[test]
    fn lock_guards_scope_and_qualify_by_impl_type() {
        let src = r#"
            impl Pool {
                fn nested(&self) {
                    let a = self.first.lock();
                    let b = self.second.lock();
                    drop(a);
                    let c = self.third.lock();
                }
                fn sequential(&self) {
                    self.shards.iter().map(|s| s.lock()).count();
                }
            }
        "#;
        let m = parse(src);
        let nested = m.fns.iter().find(|f| f.name == "nested").unwrap();
        assert_eq!(nested.locks.len(), 3);
        assert_eq!(nested.locks[0].lock, "Pool.first");
        assert_eq!(nested.locks[1].held, vec!["Pool.first".to_string()]);
        // After drop(a), only `b` is held at the third acquisition.
        assert_eq!(nested.locks[2].held, vec!["Pool.second".to_string()]);
        // Temporaries in iterator chains never count as held.
        let seq = m.fns.iter().find(|f| f.name == "sequential").unwrap();
        assert!(seq.locks.iter().all(|l| l.held.is_empty()));
    }

    #[test]
    fn relaxed_loads_flag_decisions_not_metrics() {
        let src = r#"
            impl C {
                fn decide(&self) -> bool {
                    if self.flag.load(Ordering::Relaxed) == 1 { return true; }
                    false
                }
                fn compare(&self) -> bool {
                    self.a.load(Ordering::Relaxed) > self.threshold
                }
                fn stats(&self) -> CStats {
                    CStats { a: self.a.load(Ordering::Relaxed) }
                }
            }
        "#;
        let m = parse(src);
        let decide = m.fns.iter().find(|f| f.name == "decide").unwrap();
        assert_eq!(decide.relaxed.len(), 1);
        assert_eq!(decide.relaxed[0].context, "branch-condition");
        let cmp = m.fns.iter().find(|f| f.name == "compare").unwrap();
        assert_eq!(cmp.relaxed.len(), 1);
        let stats = m.fns.iter().find(|f| f.name == "stats").unwrap();
        assert!(stats.relaxed.is_empty(), "struct-literal metrics are clean");
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests { fn t() { helper(); } }\n";
        let m = parse(src);
        assert!(!m.fns.iter().find(|f| f.name == "prod").unwrap().in_cfg_test);
        assert!(m.fns.iter().find(|f| f.name == "t").unwrap().in_cfg_test);
    }

    #[test]
    fn cfg_gated_duplicate_fn_names_both_parse_with_distinct_flags() {
        // A production fn and a #[cfg(test)] twin with the same name: both
        // appear in the model, only the test one carries the flag — so the
        // graph rules report through the production twin only.
        let src =
            "fn pick() -> usize { std::thread::available_parallelism().map_or(1, |c| c.get()) }\n\
                   #[cfg(test)]\n\
                   mod tests {\n    fn pick() -> usize { 4 }\n}\n";
        let m = parse(src);
        let picks: Vec<_> = m.fns.iter().filter(|f| f.name == "pick").collect();
        assert_eq!(
            picks.len(),
            2,
            "{:?}",
            m.fns.iter().map(|f| &f.name).collect::<Vec<_>>()
        );
        let flags: Vec<bool> = picks.iter().map(|f| f.in_cfg_test).collect();
        assert!(flags.contains(&true) && flags.contains(&false), "{flags:?}");
        // Only the production twin carries the source.
        let prod = picks.iter().find(|f| !f.in_cfg_test).unwrap();
        assert_eq!(prod.sources.len(), 1);
        let test_twin = picks.iter().find(|f| f.in_cfg_test).unwrap();
        assert!(test_twin.sources.is_empty());
    }

    #[test]
    fn shadowed_use_aliases_resolve_to_the_last_import() {
        // Two imports binding the same local name: the later one wins, the
        // way rustc treats a shadowing re-import in one module tree.
        let src =
            "use alpha::Widget;\nuse beta::Widget;\nuse gamma::Thing as Widget2;\nfn f() {}\n";
        let m = parse_file("crates/x/src/a.rs", &lex(src));
        assert_eq!(m.resolve_use("Widget"), Some("beta::Widget"));
        assert_eq!(m.resolve_use("Widget2"), Some("gamma::Thing"));
    }
}
