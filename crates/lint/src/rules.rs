//! The rule catalogue and the token-sequence scanner.
//!
//! Every rule is lexical: it matches identifier/punctuation sequences the
//! lexer produced, so nothing inside comments or string literals can fire.
//! Scoping is path-based — each rule declares which workspace-relative
//! paths it guards, mirroring the determinism boundaries of the platform
//! (see DESIGN.md §10).

use crate::diag::{line_snippet, Finding};
use crate::lexer::{Lexed, Tok, TokKind};

/// Static description of one rule, for `--list-rules` and docs.
pub struct RuleInfo {
    /// Stable rule id used in diagnostics and suppressions.
    pub id: &'static str,
    /// One-line summary of what the rule protects.
    pub summary: &'static str,
    /// Fix hint attached to findings.
    pub hint: &'static str,
}

/// All rules, in catalogue order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "wall-clock",
        summary: "no Instant::now/SystemTime outside crates/bench — sim time is the only clock",
        hint: "wall-clock reads break reproducibility; use SimTime from the simulator context",
    },
    RuleInfo {
        id: "unseeded-rng",
        summary: "no thread_rng/rand::random/from_entropy — all randomness flows from the run seed",
        hint: "derive randomness from the seeded sim Rng (Rng::fork), never from OS entropy",
    },
    RuleInfo {
        id: "hash-collections",
        summary: "no HashMap/HashSet in determinism-critical crates (sim, net, consensus, chain, state)",
        hint: "RandomState iteration order varies per process; use BTreeMap/BTreeSet or sort keys",
    },
    RuleInfo {
        id: "float-consensus",
        summary: "no f32/f64 arithmetic in consensus decision code",
        hint: "float rounding is platform/opt-level sensitive; use integer (u64/u128) arithmetic",
    },
    RuleInfo {
        id: "panic-path",
        summary: "no unwrap/expect/panic! in protocol-message handling paths",
        hint: "a malformed peer message must be a counted rejection, not a process abort; return a typed error",
    },
    RuleInfo {
        id: "thread-spawn",
        summary: "no ad-hoc thread creation (thread::spawn/thread::scope) — audited pools only",
        hint: "ad-hoc threads introduce scheduling nondeterminism; use an audited worker pool (crypto batch, net engine) or add a reviewed lint-allow.toml entry",
    },
    RuleInfo {
        id: "ad-hoc-logging",
        summary: "no println!/eprintln!/dbg! in library crates — bench/lint binaries exempt",
        hint: "stdout writes are invisible to analysis and skew benchmarks; emit a dcs-trace TraceEvent instead",
    },
    // ---- graph rules (workspace mode only; see `graph`) -----------------
    RuleInfo {
        id: "nondet-taint",
        summary: "no call path from a determinism-critical crate to a nondeterminism source (clock, OS entropy, hash iteration, host parallelism, env)",
        hint: "a nondeterminism source reaches this function through the call graph; thread the value in from the seeded sim context instead",
    },
    RuleInfo {
        id: "lock-order",
        summary: "lock pairs must be acquired in one global order everywhere (incl. through calls) — inversions deadlock",
        hint: "two locks are taken in opposite orders on different paths; pick one order and restructure the other path",
    },
    RuleInfo {
        id: "atomic-ordering",
        summary: "no Ordering::Relaxed load feeding a branch/comparison/return outside metrics snapshots",
        hint: "a relaxed load synchronizes with nothing; if the value gates behaviour, use Acquire (paired with Release stores)",
    },
];

/// Looks up a rule by id.
pub fn rule(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

/// Determinism-critical crates for `hash-collections` and `nondet-taint`.
pub const DETERMINISM_CRATES: &[&str] = &[
    "crates/sim/",
    "crates/net/",
    "crates/consensus/",
    "crates/chain/",
    "crates/state/",
    "crates/trace/",
    "crates/faults/",
    // PR 10: dcs-scale state (shard nonces, channel parties, peg replay
    // sets) feeds block contents and replay digests, so it holds to the
    // same bar as the consensus crates.
    "crates/scale/",
];

/// Consensus *decision* files for `float-consensus`. The PoW/PoET/NG solve
/// and election timing models legitimately use f64 for exponential sampling
/// (that randomness is seeded and cross-platform stable is a separate
/// concern tracked in lint-allow.toml if it ever leaks into decisions).
const FLOAT_DECISION_PATHS: &[&str] = &[
    "crates/consensus/src/difficulty.rs",
    "crates/consensus/src/pbft.rs",
    "crates/consensus/src/ordering.rs",
    "crates/consensus/src/node.rs",
    "crates/consensus/src/mempool.rs",
    "crates/consensus/src/lib.rs",
    "crates/chain/",
];

/// Protocol-message handling crates for `panic-path`.
const PANIC_PATH_CRATES: &[&str] = &[
    "crates/chain/",
    "crates/consensus/",
    "crates/net/",
    "crates/faults/",
];

fn under(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| {
        if p.ends_with('/') {
            path.starts_with(p)
        } else {
            path == *p
        }
    })
}

/// Integration-test sources: the workspace `tests/` tree and every crate's
/// `tests/` directory.
pub fn is_test_path(path: &str) -> bool {
    path.starts_with("tests/") || path.contains("/tests/")
}

/// True when `rule_id` applies to the file at `path`.
pub fn in_scope(rule_id: &str, path: &str) -> bool {
    // Test code asserts freely (unwrap, floats, hash maps are fine there),
    // but it still must replay bit-identically, so the two rules that can
    // silently break a seeded run — wall-clock reads and unseeded
    // randomness — apply to the tests tree too.
    if is_test_path(path) {
        return matches!(rule_id, "wall-clock" | "unseeded-rng");
    }
    match rule_id {
        "wall-clock" => !path.starts_with("crates/bench/"),
        "unseeded-rng" => true,
        "hash-collections" => under(path, DETERMINISM_CRATES),
        "float-consensus" => under(path, FLOAT_DECISION_PATHS),
        "panic-path" => under(path, PANIC_PATH_CRATES),
        // Every path: the audited pools (crypto batch, net engine) carry
        // reviewed lint-allow.toml entries instead of a hardcoded exemption.
        "thread-spawn" => true,
        // The experiment printers (tables to stdout by design) and the
        // lint binary's own diagnostics stay exempt; the rest of the bench
        // crate — macrobench's key=value protocol, the heartbeat, the RSS
        // warning — is in scope and carries audited lint-allow entries, so
        // any NEW print site there must be reviewed.
        "ad-hoc-logging" => !under(
            path,
            &[
                "crates/bench/src/experiments/",
                "crates/bench/src/experiments.rs",
                "crates/bench/src/table.rs",
                "crates/bench/src/bin/expt.rs",
                "crates/bench/benches/",
                "crates/lint/",
            ],
        ),
        // Graph rules (workspace mode): taint findings report only inside
        // determinism-critical crates; deadlocks and racy relaxed loads are
        // wrong anywhere.
        "nondet-taint" => under(path, DETERMINISM_CRATES),
        "lock-order" => true,
        "atomic-ordering" => true,
        _ => false,
    }
}

/// Scans one lexed file and filters findings through inline suppressions.
pub fn scan(path: &str, source: &str, lexed: &Lexed<'_>) -> Vec<Finding> {
    let suppressed = lexed.suppressed_lines();
    scan_pre_suppress(path, source, lexed)
        .into_iter()
        .filter(|f| !line_suppressed(&suppressed, f.line, f.rule))
        .collect()
}

/// True when `(line, rule)` is covered by an inline suppression.
pub fn line_suppressed(suppressed: &[(u32, Vec<String>)], line: u32, rule: &str) -> bool {
    suppressed
        .iter()
        .any(|(l, rules)| *l == line && rules.iter().any(|r| r == rule || r == "all"))
}

/// Scans one lexed file, returning findings after the `#[cfg(test)]` filter
/// but **before** inline-suppression filtering. Workspace mode applies
/// suppressions itself so it can account for stale ones.
pub fn scan_pre_suppress(path: &str, source: &str, lexed: &Lexed<'_>) -> Vec<Finding> {
    let toks = &lexed.toks;
    let mut raw: Vec<(usize, &'static str)> = Vec::new();

    let active: Vec<&'static str> = RULES
        .iter()
        .map(|r| r.id)
        .filter(|id| in_scope(id, path))
        .collect();
    if active.is_empty() {
        return Vec::new();
    }

    for (i, t) in toks.iter().enumerate() {
        let TokKind::Ident(name) = t.kind else {
            // Float literals in decision code fire on the number token.
            if active.contains(&"float-consensus") {
                if let TokKind::Number(n) = t.kind {
                    if is_float_literal(n) {
                        raw.push((i, "float-consensus"));
                    }
                }
            }
            continue;
        };
        match name {
            "Instant" | "SystemTime" if active.contains(&"wall-clock") => {
                raw.push((i, "wall-clock"));
            }
            "thread_rng" | "from_entropy" if active.contains(&"unseeded-rng") => {
                raw.push((i, "unseeded-rng"));
            }
            "random" if active.contains(&"unseeded-rng") && path_prefix_is(toks, i, "rand") => {
                raw.push((i, "unseeded-rng"));
            }
            "HashMap" | "HashSet" if active.contains(&"hash-collections") => {
                raw.push((i, "hash-collections"));
            }
            "f32" | "f64" if active.contains(&"float-consensus") => {
                raw.push((i, "float-consensus"));
            }
            "unwrap" | "expect"
                if active.contains(&"panic-path")
                    && prev_is_dot(toks, i)
                    && next_is(toks, i, '(') =>
            {
                raw.push((i, "panic-path"));
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if active.contains(&"panic-path") && next_is(toks, i, '!') =>
            {
                raw.push((i, "panic-path"));
            }
            "spawn" | "scope"
                if active.contains(&"thread-spawn") && path_prefix_is(toks, i, "thread") =>
            {
                raw.push((i, "thread-spawn"));
            }
            "println" | "eprintln" | "print" | "eprint" | "dbg"
                if active.contains(&"ad-hoc-logging") && next_is(toks, i, '!') =>
            {
                raw.push((i, "ad-hoc-logging"));
            }
            _ => {}
        }
    }

    // Drop findings inside #[cfg(test)] regions.
    let regions = lexed.test_regions();
    raw.retain(|(i, _)| !regions.iter().any(|&(a, b)| *i >= a && *i <= b));

    raw.into_iter()
        .map(|(i, rule_id)| {
            let t = &toks[i];
            let info = rule(rule_id).expect("rule ids in scan match the catalogue");
            Finding {
                rule: info.id,
                path: path.to_string(),
                line: t.line,
                col: t.col,
                snippet: line_snippet(source, t.line),
                hint: info.hint,
                notes: Vec::new(),
            }
        })
        .collect()
}

/// True when the token before `i` is a `.` (method-call position).
fn prev_is_dot(toks: &[Tok<'_>], i: usize) -> bool {
    i > 0 && toks[i - 1].kind == TokKind::Punct('.')
}

/// True when the token after `i` is `c`.
fn next_is(toks: &[Tok<'_>], i: usize, c: char) -> bool {
    toks.get(i + 1).map(|t| &t.kind) == Some(&TokKind::Punct(c))
}

/// True when token `i` is path-qualified as `prefix::<tok>` (e.g.
/// `rand::random`, `thread::spawn`), tolerating `std::thread::spawn`.
fn path_prefix_is(toks: &[Tok<'_>], i: usize, prefix: &str) -> bool {
    if i < 3 {
        return false;
    }
    toks[i - 1].kind == TokKind::Punct(':')
        && toks[i - 2].kind == TokKind::Punct(':')
        && toks[i - 3].kind == TokKind::Ident(prefix)
}

/// True for number tokens that are float literals (`4.0`, `1e6`, `2f64`).
fn is_float_literal(n: &str) -> bool {
    if n.starts_with("0x") || n.starts_with("0b") || n.starts_with("0o") {
        return false;
    }
    // An explicit integer suffix settles it — `0usize`/`7i64` contain an
    // `e` but are not floats.
    const INT_SUFFIXES: &[&str] = &[
        "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
    ];
    if INT_SUFFIXES.iter().any(|s| n.ends_with(s)) {
        return false;
    }
    n.contains('.')
        || n.ends_with("f32")
        || n.ends_with("f64")
        || n.bytes().any(|b| b == b'e' || b == b'E')
}
