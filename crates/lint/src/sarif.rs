//! SARIF 2.1.0 output (`--format json`).
//!
//! Emits the minimal subset GitHub code scanning ingests: one run, the
//! driver's rule catalogue, and one result per finding with a physical
//! location. Hand-rolled because the lint crate is dependency-free; the
//! escaping covers everything a Rust source snippet can contain.

use crate::diag::Finding;
use crate::rules::RULES;

/// Escapes a string for a JSON string literal body.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a SARIF 2.1.0 document.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"dcs-lint\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/dcs-lint\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, r) in RULES.iter().enumerate() {
        out.push_str(&format!(
            "            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \"help\": {{\"text\": \"{}\"}}}}{}\n",
            esc(r.id),
            esc(r.summary),
            esc(r.hint),
            if i + 1 < RULES.len() { "," } else { "" }
        ));
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let mut message = f.hint.to_string();
        for note in &f.notes {
            message.push_str("; note: ");
            message.push_str(note);
        }
        out.push_str("        {\n");
        out.push_str(&format!("          \"ruleId\": \"{}\",\n", esc(f.rule)));
        out.push_str("          \"level\": \"error\",\n");
        out.push_str(&format!(
            "          \"message\": {{\"text\": \"{}\"}},\n",
            esc(&message)
        ));
        out.push_str("          \"locations\": [\n            {\n");
        out.push_str("              \"physicalLocation\": {\n");
        out.push_str(&format!(
            "                \"artifactLocation\": {{\"uri\": \"{}\"}},\n",
            esc(&f.path)
        ));
        out.push_str(&format!(
            "                \"region\": {{\"startLine\": {}, \"startColumn\": {}, \"snippet\": {{\"text\": \"{}\"}}}}\n",
            f.line.max(1),
            f.col.max(1),
            esc(&f.snippet)
        ));
        out.push_str("              }\n            }\n          ]\n");
        out.push_str(&format!(
            "        }}{}\n",
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_valid_shape_and_escapes() {
        let f = Finding {
            rule: "wall-clock",
            path: "crates/x/src/a.rs".to_string(),
            line: 3,
            col: 9,
            snippet: "let t = Instant::now(); // \"quoted\"".to_string(),
            hint: "wall-clock reads break reproducibility; use SimTime from the simulator context",
            notes: vec!["chain: a -> b".to_string()],
        };
        let s = render(&[f]);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"ruleId\": \"wall-clock\""));
        assert!(s.contains("\\\"quoted\\\""));
        assert!(s.contains("note: chain: a -> b"));
        assert!(s.contains("\"startLine\": 3"));
        // Every catalogued rule is described.
        assert!(s.contains("\"id\": \"nondet-taint\""));
        // Balanced braces — cheap structural sanity check.
        let open = s.matches('{').count();
        let close = s.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn empty_findings_is_still_a_document() {
        let s = render(&[]);
        assert!(s.contains("\"results\": [\n      ]"));
    }
}
