//! `dcs-lint` — workspace determinism & protocol-safety static analysis.
//!
//! The dcs-ledger experimental claims rest on the discrete-event simulator
//! being deterministic: same seed, bit-identical canonical chain and stats.
//! Nothing in rustc or clippy enforces the project-specific invariants that
//! property needs, so this crate ships a small, dependency-free analyzer:
//! a comment/string-aware lexer ([`lexer`]), a path-scoped rule catalogue
//! ([`rules`]), per-line suppressions (`// dcs-lint: allow(<rule>)`), and an
//! audited allowlist ([`allow`], `lint-allow.toml`).
//!
//! Run it as `cargo run -p dcs-lint -- --workspace`; CI gates merges on a
//! clean pass. See DESIGN.md §10 for the rule rationale.

pub mod allow;
pub mod diag;
pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use allow::Allowlist;
use diag::Finding;

/// Lints one file's source under its workspace-relative `rel_path`,
/// filtering through the allowlist. Inline suppressions and `#[cfg(test)]`
/// regions are handled inside the scanner.
pub fn check_source(rel_path: &str, source: &str, allow: &Allowlist) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    rules::scan(rel_path, source, &lexed)
        .into_iter()
        .filter(|f| !allow.covers(f.rule, rel_path))
        .collect()
}

/// Walks the workspace at `root` and lints every production `.rs` file.
///
/// Skipped: `target/`, `vendor/` (third-party), hidden directories, and any
/// directory named `tests`, `benches`, `examples`, or `fixtures` — test and
/// fixture code is expected to use `unwrap`, wall clocks, and hash maps.
pub fn check_workspace(root: &Path, allow: &Allowlist) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    // Deterministic report order, naturally.
    files.sort();
    let mut findings = Vec::new();
    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        findings.extend(check_source(&rel_str, &source, allow));
    }
    Ok(findings)
}

// `tests` directories ARE walked (wall-clock/unseeded-rng apply there; see
// `rules::in_scope`); benches and examples stay out — they are wall-clock
// timers and demo printers by design.
const SKIP_DIRS: &[&str] = &["target", "vendor", "benches", "examples", "fixtures"];

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Loads `lint-allow.toml` from `root`, tolerating absence (empty list).
pub fn load_allowlist(root: &Path) -> Result<Allowlist, String> {
    let path = root.join("lint-allow.toml");
    match fs::read_to_string(&path) {
        Ok(text) => Allowlist::parse(&text).map_err(|e| format!("{}: {}", path.display(), e)),
        Err(ref e) if e.kind() == io::ErrorKind::NotFound => Ok(Allowlist::default()),
        Err(e) => Err(format!("{}: {}", path.display(), e)),
    }
}

/// Finds the workspace root by walking up from `start` until a `Cargo.toml`
/// containing a `[workspace]` table appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}
