//! `dcs-lint` — workspace determinism & protocol-safety static analysis.
//!
//! The dcs-ledger experimental claims rest on the discrete-event simulator
//! being deterministic: same seed, bit-identical canonical chain and stats.
//! Nothing in rustc or clippy enforces the project-specific invariants that
//! property needs, so this crate ships a small, dependency-free, two-pass
//! analyzer: a comment/string-aware lexer ([`lexer`]) feeds both the
//! lexical rule catalogue ([`rules`]) and a lightweight item-model parser
//! ([`model`]) whose per-file models assemble into a workspace call graph
//! ([`graph`]) for cross-file flow rules (nondeterminism taint, lock-order,
//! atomic-ordering). Suppressions are per-line comments
//! (`// dcs-lint: allow(<rule>)`) or audited `lint-allow.toml` entries
//! ([`allow`]); stale ones are themselves findings in workspace mode.
//!
//! Run it as `cargo run -p dcs-lint -- --workspace`; CI gates merges on a
//! clean pass and uploads SARIF ([`sarif`]) for code scanning. See
//! DESIGN.md §10 and §15 for the rule rationale and graph architecture.

pub mod allow;
pub mod diag;
pub mod graph;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod sarif;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use allow::Allowlist;
use diag::Finding;

/// Lints one file's source under its workspace-relative `rel_path`,
/// filtering through the allowlist. Inline suppressions and `#[cfg(test)]`
/// regions are handled inside the scanner.
pub fn check_source(rel_path: &str, source: &str, allow: &Allowlist) -> Vec<Finding> {
    let lexed = lexer::lex(source);
    rules::scan(rel_path, source, &lexed)
        .into_iter()
        .filter(|f| !allow.covers(f.rule, rel_path))
        .collect()
}

/// A `lint-allow.toml` entry or inline comment that suppressed nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaleSuppression {
    /// Allowlist entry index + the entry itself.
    AllowEntry(usize, allow::AllowEntry),
    /// Inline `// dcs-lint: allow(...)` comment: (path, line, rules).
    Inline(String, u32, Vec<String>),
}

impl std::fmt::Display for StaleSuppression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StaleSuppression::AllowEntry(i, e) => write!(
                f,
                "stale lint-allow.toml entry #{} (rule `{}`, path `{}`): suppresses nothing",
                i + 1,
                e.rule,
                e.path
            ),
            StaleSuppression::Inline(path, line, rules) => write!(
                f,
                "stale inline suppression at {}:{} (allow({})): suppresses nothing",
                path,
                line,
                rules.join(", ")
            ),
        }
    }
}

/// Full workspace analysis result: surviving findings plus suppression
/// accounting and model statistics.
pub struct WorkspaceReport {
    /// Findings that survived inline suppressions and the allowlist.
    pub findings: Vec<Finding>,
    /// Suppressions (either kind) that matched no finding.
    pub stale: Vec<StaleSuppression>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of functions in the call-graph model.
    pub fns_modeled: usize,
}

/// Walks the workspace at `root` and lints every production `.rs` file.
///
/// Skipped: `target/`, `vendor/` (third-party), hidden directories, and any
/// directory named `tests`, `benches`, `examples`, or `fixtures` — test and
/// fixture code is expected to use `unwrap`, wall clocks, and hash maps.
pub fn check_workspace(root: &Path, allow: &Allowlist) -> io::Result<Vec<Finding>> {
    Ok(check_workspace_report(root, allow)?.findings)
}

/// Two-pass workspace analysis: lexical rules per file, then the call-graph
/// rules ([`graph::Workspace::run_rules`]) over the assembled item models,
/// with stale-suppression accounting across both passes.
pub fn check_workspace_report(root: &Path, allow: &Allowlist) -> io::Result<WorkspaceReport> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    // Deterministic report order, naturally.
    files.sort();

    let mut raw: Vec<Finding> = Vec::new();
    let mut models = Vec::new();
    let mut sources: BTreeMap<String, String> = BTreeMap::new();
    // (path, line, rules, used) per inline suppression, in file order.
    let mut inline: Vec<(String, u32, Vec<String>, bool)> = Vec::new();

    for rel in &files {
        let source = fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let lexed = lexer::lex(&source);
        raw.extend(rules::scan_pre_suppress(&rel_str, &source, &lexed));
        for (line, rules) in lexed.suppressed_lines() {
            // Only real suppressions participate in stale accounting: a
            // comment must name at least one catalogued rule (or `all`).
            // Docs *mentioning* the syntax (`allow(<rule>)`, `allow(...)`)
            // never suppress anything and are not reported stale.
            if rules.iter().any(|r| r == "all" || rules::rule(r).is_some()) {
                inline.push((rel_str.clone(), line, rules, false));
            }
        }
        models.push(model::parse_file(&rel_str, &lexed));
        sources.insert(rel_str, source);
    }

    let ws = graph::Workspace::new(models);
    let fns_modeled = ws.fn_count();
    raw.extend(ws.run_rules(&sources));

    // Apply inline suppressions (marking use), then the allowlist (same).
    let mut used_allow = vec![false; allow.entries.len()];
    let mut findings = Vec::new();
    'next: for f in raw {
        for (path, line, rules, used) in inline.iter_mut() {
            if *path == f.path && *line == f.line && rules.iter().any(|r| r == f.rule || r == "all")
            {
                *used = true;
                continue 'next;
            }
        }
        if let Some(i) = allow.covering(f.rule, &f.path) {
            used_allow[i] = true;
            continue;
        }
        findings.push(f);
    }

    let mut stale: Vec<StaleSuppression> = Vec::new();
    for (i, e) in allow.entries.iter().enumerate() {
        if !used_allow[i] {
            stale.push(StaleSuppression::AllowEntry(i, e.clone()));
        }
    }
    for (path, line, rules, used) in inline {
        if !used {
            stale.push(StaleSuppression::Inline(path, line, rules));
        }
    }

    Ok(WorkspaceReport {
        findings,
        stale,
        files_scanned: files.len(),
        fns_modeled,
    })
}

// `tests` directories ARE walked (wall-clock/unseeded-rng apply there; see
// `rules::in_scope`); benches and examples stay out — they are wall-clock
// timers and demo printers by design.
const SKIP_DIRS: &[&str] = &["target", "vendor", "benches", "examples", "fixtures"];

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Loads `lint-allow.toml` from `root`, tolerating absence (empty list).
pub fn load_allowlist(root: &Path) -> Result<Allowlist, String> {
    let path = root.join("lint-allow.toml");
    match fs::read_to_string(&path) {
        Ok(text) => Allowlist::parse(&text).map_err(|e| format!("{}: {}", path.display(), e)),
        Err(ref e) if e.kind() == io::ErrorKind::NotFound => Ok(Allowlist::default()),
        Err(e) => Err(format!("{}: {}", path.display(), e)),
    }
}

/// Finds the workspace root by walking up from `start` until a `Cargo.toml`
/// containing a `[workspace]` table appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        cur = dir.parent().map(Path::to_path_buf);
    }
    None
}
