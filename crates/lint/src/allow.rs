//! The audited allowlist: `lint-allow.toml` at the workspace root.
//!
//! Each entry is a `[[allow]]` table with `rule`, `path`, and a mandatory
//! `reason` — legacy or deliberate sites that the team has reviewed. The
//! parser is a minimal hand-rolled TOML subset reader (tables of string
//! key/values only), because the lint crate is dependency-free by design.
//!
//! `path` matches a workspace-relative file exactly, or acts as a directory
//! prefix when it ends with `/`.

/// One audited allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry suppresses (`all` suppresses every rule).
    pub rule: String,
    /// Workspace-relative file path, or directory prefix ending in `/`.
    pub path: String,
    /// Human audit trail — why this site is exempt.
    pub reason: String,
}

/// Parsed allowlist.
#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// True when `rule` at `path` is covered by an entry.
    pub fn covers(&self, rule: &str, path: &str) -> bool {
        self.covering(rule, path).is_some()
    }

    /// Index of the first entry covering `rule` at `path`, for stale-entry
    /// accounting (`--stale-suppressions`).
    pub fn covering(&self, rule: &str, path: &str) -> Option<usize> {
        self.entries.iter().position(|e| {
            (e.rule == rule || e.rule == "all")
                && if e.path.ends_with('/') {
                    path.starts_with(&e.path)
                } else {
                    path == e.path
                }
        })
    }

    /// Parses the `lint-allow.toml` subset: `[[allow]]` headers followed by
    /// `key = "value"` lines. Returns `Err` with a message on malformed
    /// input (unknown key, entry missing a field, non-string value).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        let mut cur: Option<(Option<String>, Option<String>, Option<String>)> = None;

        fn flush(
            cur: &mut Option<(Option<String>, Option<String>, Option<String>)>,
            entries: &mut Vec<AllowEntry>,
        ) -> Result<(), String> {
            if let Some((rule, path, reason)) = cur.take() {
                let rule = rule.ok_or("allow entry missing `rule`")?;
                let path = path.ok_or("allow entry missing `path`")?;
                let reason = reason.ok_or("allow entry missing `reason` (audit trail required)")?;
                entries.push(AllowEntry { rule, path, reason });
            }
            Ok(())
        }

        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                flush(&mut cur, &mut entries)?;
                cur = Some((None, None, None));
                continue;
            }
            if line.starts_with('[') {
                return Err(format!("line {}: unsupported table `{}`", n + 1, line));
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = \"value\"`", n + 1))?;
            let key = key.trim();
            let value = value.trim();
            let value = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or_else(|| {
                    format!(
                        "line {}: value for `{}` must be a quoted string",
                        n + 1,
                        key
                    )
                })?
                .to_string();
            let slot = cur
                .as_mut()
                .ok_or_else(|| format!("line {}: `{}` outside an [[allow]] entry", n + 1, key))?;
            match key {
                "rule" => slot.0 = Some(value),
                "path" => slot.1 = Some(value),
                "reason" => slot.2 = Some(value),
                other => return Err(format!("line {}: unknown key `{}`", n + 1, other)),
            }
        }
        flush(&mut cur, &mut entries)?;
        Ok(Allowlist { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_matches() {
        let toml = r#"
# baseline
[[allow]]
rule = "panic-path"
path = "crates/consensus/src/pow.rs"
reason = "constructor config mismatch is a programmer error"

[[allow]]
rule = "all"
path = "crates/bench/"
reason = "bench crate is not determinism-critical"
"#;
        let a = Allowlist::parse(toml).unwrap();
        assert_eq!(a.entries.len(), 2);
        assert!(a.covers("panic-path", "crates/consensus/src/pow.rs"));
        assert!(!a.covers("wall-clock", "crates/consensus/src/pow.rs"));
        assert!(a.covers("wall-clock", "crates/bench/src/lib.rs"));
        assert!(!a.covers("panic-path", "crates/consensus/src/pos.rs"));
    }

    #[test]
    fn missing_reason_is_an_error() {
        let toml = "[[allow]]\nrule = \"wall-clock\"\npath = \"x.rs\"\n";
        assert!(Allowlist::parse(toml).is_err());
    }

    #[test]
    fn unknown_key_is_an_error() {
        let toml = "[[allow]]\nrule = \"wall-clock\"\npath = \"x.rs\"\nwhy = \"no\"\n";
        assert!(Allowlist::parse(toml).is_err());
    }
}
