//! Pass 2 of the two-pass analyzer: the workspace call graph and the flow
//! rules that run over it.
//!
//! Three rules live here (the lexical catalogue stays in [`crate::rules`]):
//!
//! * **`nondet-taint`** — nondeterminism sources (wall clock, OS entropy,
//!   `HashMap` iteration, host-parallelism probes, env reads) propagate up
//!   the call graph; a tainted function inside a determinism-critical crate
//!   is a finding, reported with the full call chain down to the source.
//! * **`lock-order`** — lock-acquisition orders are extracted per function
//!   (let-bound guard scopes) and propagated through calls made while a
//!   guard is held; a pair of locks taken in both orders anywhere in the
//!   workspace is a potential deadlock.
//! * **`atomic-ordering`** — `Ordering::Relaxed` loads whose value feeds a
//!   branch, comparison, or return are findings unless the enclosing
//!   function is metrics plumbing (returns a `*Stats` type).
//!
//! Call resolution is deliberately conservative: qualified `Type::fn` calls
//! resolve exactly, `self.fn()` resolves within the impl, bare calls prefer
//! the same file then `use` imports, and bare `.method()` calls resolve
//! only while the name stays near-unique in the workspace (≤ 3 candidate
//! impls) so `insert`/`get`-style std names do not wire the graph together.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::diag::{line_snippet, Finding};
use crate::model::{FileModel, FnModel, SourceKind};
use crate::rules;

/// Maximum workspace-wide candidates for a bare `.method()` call before the
/// edge is dropped as too ambiguous to be meaningful.
const METHOD_CANDIDATE_CAP: usize = 3;

/// The parsed workspace: every file model plus the function index.
pub struct Workspace {
    /// All files, in deterministic (sorted-path) order.
    pub files: Vec<FileModel>,
    /// Flattened function list; `FnId` indexes into it.
    fns: Vec<FnModel>,
    /// File index owning each function.
    fn_file: Vec<usize>,
    /// name → function ids.
    by_name: BTreeMap<String, Vec<usize>>,
    /// `Type::name` → function ids.
    by_qual: BTreeMap<String, Vec<usize>>,
}

/// A function's taint state: the call edge (or source) that taints it.
#[derive(Clone)]
enum TaintWhy {
    Source(SourceKind, String, u32),
    /// (callee fn id, call line).
    Call(usize, u32),
}

impl Workspace {
    /// Builds the workspace model and index from per-file models.
    pub fn new(files: Vec<FileModel>) -> Self {
        let mut fns = Vec::new();
        let mut fn_file = Vec::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut by_qual: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for f in &file.fns {
                let id = fns.len();
                by_name.entry(f.name.clone()).or_default().push(id);
                by_qual.entry(f.qual()).or_default().push(id);
                fns.push(f.clone());
                fn_file.push(fi);
            }
        }
        Workspace {
            files,
            fns,
            fn_file,
            by_name,
            by_qual,
        }
    }

    /// Number of functions in the model.
    pub fn fn_count(&self) -> usize {
        self.fns.len()
    }

    /// Resolves one call site from `caller` to candidate function ids.
    fn resolve(
        &self,
        caller: usize,
        name: &str,
        qualifier: Option<&str>,
        is_method: bool,
        recv_self: bool,
    ) -> Vec<usize> {
        let caller_fn = &self.fns[caller];
        let caller_file = &self.files[self.fn_file[caller]];

        // `Type::name` — exact impl-method match anywhere in the workspace.
        if let Some(q) = qualifier {
            let key = format!("{q}::{name}");
            if let Some(ids) = self.by_qual.get(&key) {
                return ids.clone();
            }
            // The qualifier may be a module alias (`engine::run_sharded`) —
            // fall through to name candidates constrained to files whose
            // path mentions the qualifier segment.
            if let Some(ids) = self.by_name.get(name) {
                let seg = format!("/{q}.rs");
                let filtered: Vec<usize> = ids
                    .iter()
                    .copied()
                    .filter(|&id| {
                        let f = &self.fns[id];
                        f.file.ends_with(&seg) || f.module.iter().any(|m| m == q)
                    })
                    .collect();
                return filtered;
            }
            return Vec::new();
        }

        if is_method {
            // `self.name()` — the enclosing impl first.
            if recv_self {
                if let Some(ty) = &caller_fn.self_ty {
                    let key = format!("{ty}::{name}");
                    if let Some(ids) = self.by_qual.get(&key) {
                        return ids.clone();
                    }
                }
            }
            // Bare `.name()` — only while near-unique across the workspace.
            let methods: Vec<usize> = self
                .by_name
                .get(name)
                .map(|ids| {
                    ids.iter()
                        .copied()
                        .filter(|&id| self.fns[id].self_ty.is_some())
                        .collect()
                })
                .unwrap_or_default();
            if (1..=METHOD_CANDIDATE_CAP).contains(&methods.len()) {
                return methods;
            }
            return Vec::new();
        }

        // Bare `name()` — same file first, then `use` imports, then a
        // unique workspace-wide free function.
        if let Some(ids) = self.by_name.get(name) {
            let same_file: Vec<usize> = ids
                .iter()
                .copied()
                .filter(|&id| self.fns[id].file == caller_fn.file && self.fns[id].self_ty.is_none())
                .collect();
            if !same_file.is_empty() {
                return same_file;
            }
            if caller_file.resolve_use(name).is_some() {
                let free: Vec<usize> = ids
                    .iter()
                    .copied()
                    .filter(|&id| self.fns[id].self_ty.is_none())
                    .collect();
                if !free.is_empty() {
                    return free;
                }
            }
            let free: Vec<usize> = ids
                .iter()
                .copied()
                .filter(|&id| self.fns[id].self_ty.is_none())
                .collect();
            if free.len() == 1 {
                return free;
            }
        }
        Vec::new()
    }

    /// All call edges of `caller`, resolved: `(callee id, call line)`.
    fn edges(&self, caller: usize) -> Vec<(usize, u32)> {
        let mut out = Vec::new();
        for call in &self.fns[caller].calls {
            for id in self.resolve(
                caller,
                &call.name,
                call.qualifier.as_deref(),
                call.is_method,
                call.recv_self,
            ) {
                if id != caller {
                    out.push((id, call.line));
                }
            }
        }
        out
    }

    // -----------------------------------------------------------------
    // nondet-taint
    // -----------------------------------------------------------------

    /// Runs the `nondet-taint` rule. `sources` maps each file path to its
    /// source text (for snippets).
    pub fn nondet_taint(&self, sources: &BTreeMap<String, String>) -> Vec<Finding> {
        // Seed: every fn with a direct source.
        let mut why: Vec<Option<TaintWhy>> = vec![None; self.fns.len()];
        let mut queue: VecDeque<usize> = VecDeque::new();
        for (id, f) in self.fns.iter().enumerate() {
            if let Some(s) = f.sources.first() {
                why[id] = Some(TaintWhy::Source(s.kind, s.what.clone(), s.line));
                queue.push_back(id);
            }
        }
        // Reverse edges: callee → (caller, line). Built once.
        let mut rev: BTreeMap<usize, Vec<(usize, u32)>> = BTreeMap::new();
        for caller in 0..self.fns.len() {
            for (callee, line) in self.edges(caller) {
                rev.entry(callee).or_default().push((caller, line));
            }
        }
        // Propagate taint up the graph (BFS gives shortest chains).
        while let Some(id) = queue.pop_front() {
            if let Some(callers) = rev.get(&id) {
                for &(caller, line) in callers {
                    if why[caller].is_none() {
                        why[caller] = Some(TaintWhy::Call(id, line));
                        queue.push_back(caller);
                    }
                }
            }
        }

        // Candidates: tainted, non-test fns in determinism-critical crates.
        let candidate: Vec<bool> = self
            .fns
            .iter()
            .enumerate()
            .map(|(id, f)| {
                why[id].is_some()
                    && !f.in_cfg_test
                    && !rules::is_test_path(&f.file)
                    && rules::in_scope("nondet-taint", &f.file)
            })
            .collect();

        // Report only the frontier: a candidate whose taint comes from its
        // own source or from a non-candidate callee. Callers further up
        // would repeat the same chain.
        let mut findings = Vec::new();
        for (id, f) in self.fns.iter().enumerate() {
            if !candidate[id] {
                continue;
            }
            let report = match &why[id] {
                Some(TaintWhy::Source(..)) => true,
                Some(TaintWhy::Call(callee, _)) => !candidate[*callee],
                None => false,
            };
            if !report {
                continue;
            }
            // Build the chain down to the source.
            let mut notes = Vec::new();
            let mut cur = id;
            let (line, col) = (f.line, 1);
            loop {
                match why[cur].clone() {
                    Some(TaintWhy::Call(callee, call_line)) => {
                        let callee_fn = &self.fns[callee];
                        notes.push(format!(
                            "`{}` calls `{}` at {}:{} ({}:{})",
                            self.fns[cur].qual(),
                            callee_fn.qual(),
                            self.fns[cur].file,
                            call_line,
                            callee_fn.file,
                            callee_fn.line,
                        ));
                        cur = callee;
                    }
                    Some(TaintWhy::Source(kind, what, src_line)) => {
                        notes.push(format!(
                            "`{}` reads a {} (`{}`) at {}:{}",
                            self.fns[cur].qual(),
                            kind.label(),
                            what,
                            self.fns[cur].file,
                            src_line,
                        ));
                        break;
                    }
                    None => break,
                }
            }
            let info = rules::rule("nondet-taint").expect("catalogued");
            findings.push(Finding {
                rule: info.id,
                path: f.file.clone(),
                line,
                col,
                snippet: snippet_for(sources, &f.file, line),
                hint: info.hint,
                notes,
            });
        }
        findings
    }

    // -----------------------------------------------------------------
    // lock-order
    // -----------------------------------------------------------------

    /// Runs the `lock-order` rule: collects ordered lock pairs (including
    /// pairs formed by calls made while a guard is held) and flags any two
    /// locks acquired in both orders, plus nested re-acquisition of the
    /// same identity.
    pub fn lock_order(&self, sources: &BTreeMap<String, String>) -> Vec<Finding> {
        // Transitive lock sets per fn (locks a call may acquire), bounded.
        let mut acquired: Vec<BTreeSet<String>> = self
            .fns
            .iter()
            .map(|f| f.locks.iter().map(|l| l.lock.clone()).collect())
            .collect();
        // Fixpoint over call edges (workspace is small; a few rounds).
        for _ in 0..8 {
            let mut changed = false;
            for caller in 0..self.fns.len() {
                for (callee, _) in self.edges(caller) {
                    let add: Vec<String> = acquired[callee]
                        .difference(&acquired[caller])
                        .cloned()
                        .collect();
                    if !add.is_empty() {
                        acquired[caller].extend(add);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Ordered pairs with a witness: (first, then) → (file, line, via).
        let mut pairs: BTreeMap<(String, String), (String, u32, Option<String>)> = BTreeMap::new();
        let mut findings = Vec::new();
        for (id, f) in self.fns.iter().enumerate() {
            if f.in_cfg_test || rules::is_test_path(&f.file) {
                continue;
            }
            // Direct nesting inside one fn.
            for acq in &f.locks {
                for held in &acq.held {
                    if *held == acq.lock {
                        let info = rules::rule("lock-order").expect("catalogued");
                        findings.push(Finding {
                            rule: info.id,
                            path: f.file.clone(),
                            line: acq.line,
                            col: 1,
                            snippet: snippet_for(sources, &f.file, acq.line),
                            hint: info.hint,
                            notes: vec![format!(
                                "`{}` re-acquires `{}` while already holding it — \
                                 self-deadlock on a non-reentrant lock",
                                f.qual(),
                                acq.lock
                            )],
                        });
                    } else {
                        pairs.entry((held.clone(), acq.lock.clone())).or_insert((
                            f.file.clone(),
                            acq.line,
                            None,
                        ));
                    }
                }
            }
            // Pairs through calls: calling into code that takes other locks
            // while holding a guard.
            for call in &f.calls {
                if call.holding.is_empty() {
                    continue;
                }
                for target in self.resolve(
                    id,
                    &call.name,
                    call.qualifier.as_deref(),
                    call.is_method,
                    call.recv_self,
                ) {
                    if target == id {
                        continue;
                    }
                    for inner in acquired[target].iter() {
                        for held in &call.holding {
                            if held == inner {
                                let info = rules::rule("lock-order").expect("catalogued");
                                findings.push(Finding {
                                    rule: info.id,
                                    path: f.file.clone(),
                                    line: call.line,
                                    col: 1,
                                    snippet: snippet_for(sources, &f.file, call.line),
                                    hint: info.hint,
                                    notes: vec![format!(
                                        "`{}` holds `{}` and calls `{}`, which may \
                                         re-acquire it",
                                        f.qual(),
                                        held,
                                        self.fns[target].qual()
                                    )],
                                });
                            } else {
                                pairs.entry((held.clone(), inner.clone())).or_insert((
                                    f.file.clone(),
                                    call.line,
                                    Some(self.fns[target].qual()),
                                ));
                            }
                        }
                    }
                }
            }
        }

        // Inconsistent pairwise order: (a, b) and (b, a) both witnessed.
        let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
        for ((a, b), (file, line, via)) in &pairs {
            let rev_key = (b.clone(), a.clone());
            if a < b || !pairs.contains_key(&rev_key) {
                // Report once per unordered pair, at the lexically first
                // witness; skip pairs with no inversion.
                if !pairs.contains_key(&rev_key) {
                    continue;
                }
            }
            let unordered = if a < b {
                (a.clone(), b.clone())
            } else {
                (b.clone(), a.clone())
            };
            if !seen.insert(unordered) {
                continue;
            }
            let (rfile, rline, rvia) = &pairs[&rev_key];
            let info = rules::rule("lock-order").expect("catalogued");
            let mut notes = vec![
                format!(
                    "`{a}` then `{b}` at {file}:{line}{}",
                    via.as_ref()
                        .map(|v| format!(" (via call to `{v}`)"))
                        .unwrap_or_default()
                ),
                format!(
                    "`{b}` then `{a}` at {rfile}:{rline}{}",
                    rvia.as_ref()
                        .map(|v| format!(" (via call to `{v}`)"))
                        .unwrap_or_default()
                ),
            ];
            notes.push("two threads taking these in opposite orders can deadlock".to_string());
            findings.push(Finding {
                rule: info.id,
                path: file.clone(),
                line: *line,
                col: 1,
                snippet: snippet_for(sources, file, *line),
                hint: info.hint,
                notes,
            });
        }
        findings
    }

    // -----------------------------------------------------------------
    // atomic-ordering
    // -----------------------------------------------------------------

    /// Runs the `atomic-ordering` rule over every parsed function.
    pub fn atomic_ordering(&self, sources: &BTreeMap<String, String>) -> Vec<Finding> {
        let mut findings = Vec::new();
        for f in &self.fns {
            if f.in_cfg_test || rules::is_test_path(&f.file) {
                continue;
            }
            // Metrics plumbing: snapshot functions returning a `*Stats`
            // struct may read counters relaxed — that is their contract.
            if f.ret_idents.iter().any(|r| r.ends_with("Stats")) {
                continue;
            }
            for r in &f.relaxed {
                let info = rules::rule("atomic-ordering").expect("catalogued");
                findings.push(Finding {
                    rule: info.id,
                    path: f.file.clone(),
                    line: r.line,
                    col: 1,
                    snippet: snippet_for(sources, &f.file, r.line),
                    hint: info.hint,
                    notes: vec![format!(
                        "the relaxed load in `{}` feeds a {} — pair it with \
                         Acquire/Release (or document why reordering is benign)",
                        f.qual(),
                        r.context
                    )],
                });
            }
        }
        findings
    }

    /// Runs all graph rules, in catalogue order.
    pub fn run_rules(&self, sources: &BTreeMap<String, String>) -> Vec<Finding> {
        let mut out = self.nondet_taint(sources);
        out.extend(self.lock_order(sources));
        out.extend(self.atomic_ordering(sources));
        out
    }
}

/// Snippet lookup tolerating missing files (e.g. synthetic tests).
fn snippet_for(sources: &BTreeMap<String, String>, path: &str, line: u32) -> String {
    sources
        .get(path)
        .map(|s| line_snippet(s, line))
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::model::parse_file;

    fn ws(files: &[(&str, &str)]) -> (Workspace, BTreeMap<String, String>) {
        let mut models = Vec::new();
        let mut sources = BTreeMap::new();
        for (path, src) in files {
            models.push(parse_file(path, &lex(src)));
            sources.insert(path.to_string(), src.to_string());
        }
        (Workspace::new(models), sources)
    }

    #[test]
    fn cross_file_taint_reports_the_chain() {
        let (w, s) = ws(&[
            (
                "crates/ledger/src/util.rs",
                "pub fn host_threads() -> usize {\n    std::thread::available_parallelism().map_or(1, |c| c.get())\n}\n",
            ),
            (
                "crates/consensus/src/pick.rs",
                "use crate::util::host_threads;\npub fn pick() -> usize { host_threads() }\n",
            ),
        ]);
        let f = w.nondet_taint(&s);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "nondet-taint");
        assert_eq!(f[0].path, "crates/consensus/src/pick.rs");
        assert!(
            f[0].notes.iter().any(|n| n.contains("host_threads")),
            "{:?}",
            f[0].notes
        );
        assert!(
            f[0].notes.iter().any(|n| n.contains("host parallelism")),
            "{:?}",
            f[0].notes
        );
    }

    #[test]
    fn taint_does_not_cascade_up_reported_callers() {
        let (w, s) = ws(&[(
            "crates/sim/src/a.rs",
            "fn leaf() { let _ = std::env::var(\"X\"); }\n\
             fn mid() { leaf(); }\n\
             pub fn top() { mid(); }\n",
        )]);
        let f = w.nondet_taint(&s);
        // Only the leaf (own source) is reported; mid/top share its chain.
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].notes[0].contains("leaf"));
    }

    #[test]
    fn lock_inversion_is_flagged_once() {
        let (w, s) = ws(&[(
            "crates/x/src/l.rs",
            "impl P {\n\
             fn ab(&self) { let a = self.a.lock(); let b = self.b.lock(); }\n\
             fn ba(&self) { let b = self.b.lock(); let a = self.a.lock(); }\n\
             }\n",
        )]);
        let f = w.lock_order(&s);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].notes.iter().any(|n| n.contains("P.a")),
            "{:?}",
            f[0].notes
        );
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let (w, s) = ws(&[(
            "crates/x/src/l.rs",
            "impl P {\n\
             fn ab(&self) { let a = self.a.lock(); let b = self.b.lock(); }\n\
             fn ab2(&self) { let a = self.a.lock(); let b = self.b.lock(); }\n\
             }\n",
        )]);
        assert!(w.lock_order(&s).is_empty());
    }

    #[test]
    fn lock_inversion_through_a_call_is_flagged() {
        let (w, s) = ws(&[(
            "crates/x/src/l.rs",
            "impl P {\n\
             fn outer(&self) { let a = self.a.lock(); self.inner_b(); }\n\
             fn inner_b(&self) { let b = self.b.lock(); }\n\
             fn other(&self) { let b = self.b.lock(); let a = self.a.lock(); }\n\
             }\n",
        )]);
        let f = w.lock_order(&s);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn relaxed_branch_flagged_stats_exempt() {
        let (w, s) = ws(&[(
            "crates/x/src/a.rs",
            "impl C {\n\
             fn gate(&self) -> bool { if self.n.load(Ordering::Relaxed) > 0 { true } else { false } }\n\
             fn stats(&self) -> CacheStats { CacheStats { n: self.n.load(Ordering::Relaxed) } }\n\
             }\n",
        )]);
        let f = w.atomic_ordering(&s);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "atomic-ordering");
    }
}
