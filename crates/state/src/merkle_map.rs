//! A canonical binary Merkle trie: an authenticated key→value map whose root
//! hash is a pure function of its contents (independent of insertion order),
//! with `O(log n)` inclusion proofs.
//!
//! Keys are routed by the bits of their SHA-256, so the trie is balanced in
//! expectation without rotations. The structure is kept canonical — every
//! branch has at least two leaves below it, and removals collapse chains — so
//! two maps with equal contents always have equal roots, which is what makes
//! the root usable as the header `state_root`.

use dcs_crypto::codec::{Decode, DecodeError, Encode, Reader};
use dcs_crypto::{sha256, Hash256, MultiHasher, Sha256};
use serde::{Deserialize, Serialize};

fn leaf_hash(key_hash: &Hash256, value: &[u8]) -> Hash256 {
    let mut ctx = Sha256::new();
    ctx.update(&[0x10]);
    ctx.update(key_hash.as_ref());
    ctx.update(sha256(value).as_ref());
    ctx.finalize()
}

fn branch_hash(left: &Hash256, right: &Hash256) -> Hash256 {
    let mut ctx = Sha256::new();
    ctx.update(&[0x11]);
    ctx.update(left.as_ref());
    ctx.update(right.as_ref());
    ctx.finalize()
}

/// Extracts bit `i` (0 = most significant) of a key hash.
fn bit(h: &Hash256, i: usize) -> bool {
    (h.as_bytes()[i / 8] >> (7 - i % 8)) & 1 == 1
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        key_hash: Hash256,
        key: Vec<u8>,
        value: Vec<u8>,
        hash: Hash256,
    },
    Branch {
        left: Option<Box<Node>>,
        right: Option<Box<Node>>,
        hash: Hash256,
    },
}

/// One pending write in a [`MerkleMap::write_batch`] call, routed by the
/// precomputed hash of its key.
struct BatchEntry {
    kh: Hash256,
    key: Vec<u8>,
    /// `Some` = insert/replace, `None` = remove.
    value: Option<Vec<u8>>,
}

impl Node {
    fn hash(&self) -> Hash256 {
        match self {
            Node::Leaf { hash, .. } | Node::Branch { hash, .. } => *hash,
        }
    }

    fn child_hash(child: &Option<Box<Node>>) -> Hash256 {
        child.as_ref().map_or(Hash256::ZERO, |n| n.hash())
    }

    fn rehash(&mut self) {
        if let Node::Branch { left, right, hash } = self {
            *hash = branch_hash(&Self::child_hash(left), &Self::child_hash(right));
        }
    }
}

/// An authenticated map with a Merkle root and inclusion proofs.
///
/// # Examples
///
/// ```
/// use dcs_state::MerkleMap;
///
/// let mut m = MerkleMap::new();
/// m.insert(b"k".to_vec(), b"v1".to_vec());
/// let r1 = m.root();
/// m.insert(b"k".to_vec(), b"v2".to_vec());
/// assert_ne!(m.root(), r1);
/// assert_eq!(m.get(b"k"), Some(&b"v2"[..]));
/// ```
#[derive(Debug, Clone, Default)]
pub struct MerkleMap {
    root: Option<Box<Node>>,
    len: usize,
}

impl MerkleMap {
    /// Creates an empty map (root = [`Hash256::ZERO`]).
    pub fn new() -> Self {
        MerkleMap::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The root digest committing to the full contents.
    pub fn root(&self) -> Hash256 {
        Node::child_hash(&self.root)
    }

    /// Looks up the value stored under `key`.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        let kh = sha256(key);
        let mut node = self.root.as_deref()?;
        let mut depth = 0;
        loop {
            match node {
                Node::Leaf {
                    key_hash, value, ..
                } => {
                    return (*key_hash == kh).then_some(value.as_slice());
                }
                Node::Branch { left, right, .. } => {
                    let child = if bit(&kh, depth) { right } else { left };
                    node = child.as_deref()?;
                    depth += 1;
                }
            }
        }
    }

    /// Inserts or replaces; returns the previous value if any.
    pub fn insert(&mut self, key: Vec<u8>, value: Vec<u8>) -> Option<Vec<u8>> {
        let kh = sha256(&key);
        let (node, old) = Self::insert_at(self.root.take(), kh, key, value, 0);
        self.root = Some(node);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_at(
        node: Option<Box<Node>>,
        kh: Hash256,
        key: Vec<u8>,
        value: Vec<u8>,
        depth: usize,
    ) -> (Box<Node>, Option<Vec<u8>>) {
        match node {
            None => {
                let hash = leaf_hash(&kh, &value);
                (
                    Box::new(Node::Leaf {
                        key_hash: kh,
                        key,
                        value,
                        hash,
                    }),
                    None,
                )
            }
            Some(mut boxed) => match &mut *boxed {
                Node::Leaf {
                    key_hash,
                    value: old_value,
                    hash,
                    ..
                } if *key_hash == kh => {
                    let old = std::mem::replace(old_value, value);
                    *hash = leaf_hash(&kh, old_value);
                    (boxed, Some(old))
                }
                Node::Leaf { key_hash, .. } => {
                    // Split: push the existing leaf down until the paths of
                    // the two key hashes diverge.
                    let existing_bit = bit(key_hash, depth);
                    let new_bit = bit(&kh, depth);
                    let mut branch = Node::Branch {
                        left: None,
                        right: None,
                        hash: Hash256::ZERO,
                    };
                    if existing_bit == new_bit {
                        let (child, _) = Self::insert_at(Some(boxed), kh, key, value, depth + 1);
                        if let Node::Branch { left, right, .. } = &mut branch {
                            *(if new_bit { right } else { left }) = Some(child);
                        }
                    } else if let Node::Branch { left, right, .. } = &mut branch {
                        let new_hash = leaf_hash(&kh, &value);
                        let new_leaf = Box::new(Node::Leaf {
                            key_hash: kh,
                            key,
                            value,
                            hash: new_hash,
                        });
                        if new_bit {
                            *right = Some(new_leaf);
                            *left = Some(boxed);
                        } else {
                            *left = Some(new_leaf);
                            *right = Some(boxed);
                        }
                    }
                    branch.rehash();
                    (Box::new(branch), None)
                }
                Node::Branch { left, right, .. } => {
                    let slot = if bit(&kh, depth) { right } else { left };
                    let (child, old) = Self::insert_at(slot.take(), kh, key, value, depth + 1);
                    *slot = Some(child);
                    boxed.rehash();
                    (boxed, old)
                }
            },
        }
    }

    /// Removes `key`, returning its value if present. Collapses now-unary
    /// branches to keep the structure (and root) canonical.
    pub fn remove(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let kh = sha256(key);
        let (node, old) = Self::remove_at(self.root.take(), &kh, 0);
        self.root = node;
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    fn remove_at(
        node: Option<Box<Node>>,
        kh: &Hash256,
        depth: usize,
    ) -> (Option<Box<Node>>, Option<Vec<u8>>) {
        match node {
            None => (None, None),
            Some(mut boxed) => match &mut *boxed {
                Node::Leaf { key_hash, .. } => {
                    if key_hash == kh {
                        if let Node::Leaf { value, .. } = *boxed {
                            (None, Some(value))
                        } else {
                            unreachable!("matched leaf above")
                        }
                    } else {
                        (Some(boxed), None)
                    }
                }
                Node::Branch { left, right, .. } => {
                    let go_right = bit(kh, depth);
                    let slot = if go_right { &mut *right } else { &mut *left };
                    let (child, old) = Self::remove_at(slot.take(), kh, depth + 1);
                    *slot = child;
                    if old.is_none() {
                        return (Some(boxed), None);
                    }
                    // Canonicalize: a branch left with a single *leaf* child
                    // collapses to that leaf (the leaf rises to the
                    // shallowest depth where its path is unique). A single
                    // *branch* child stays put — its subtree's leaves still
                    // diverge at their original depths, so the unary chain
                    // above them is part of the canonical shape.
                    let lone_leaf = match (&left, &right) {
                        (Some(l), None) if matches!(&**l, Node::Leaf { .. }) => left.take(),
                        (None, Some(r)) if matches!(&**r, Node::Leaf { .. }) => right.take(),
                        _ => None,
                    };
                    if let Some(leaf) = lone_leaf {
                        return (Some(leaf), old);
                    }
                    boxed.rehash();
                    (Some(boxed), old)
                }
            },
        }
    }

    /// Applies a whole batch of writes (`Some` = insert/replace, `None` =
    /// remove) in one trie pass. Key hashes are multi-lane batched, entries
    /// are sorted by routing path, and every touched branch rehashes exactly
    /// once — against once per write on the serial path, which rehashes the
    /// full root path each time. Later writes to the same key override
    /// earlier ones, exactly as serial application would. Because the trie
    /// is content-addressed, the resulting root is bit-identical to
    /// replaying the batch through [`MerkleMap::insert`] /
    /// [`MerkleMap::remove`] in order.
    pub fn write_batch(&mut self, entries: Vec<(Vec<u8>, Option<Vec<u8>>)>) {
        if entries.is_empty() {
            return;
        }
        let key_refs: Vec<&[u8]> = entries.iter().map(|(k, _)| k.as_slice()).collect();
        let hashes = MultiHasher::wide().hash_many(&key_refs);
        let mut items: Vec<BatchEntry> = entries
            .into_iter()
            .zip(hashes)
            .map(|((key, value), kh)| BatchEntry { kh, key, value })
            .collect();
        // Byte order of the key hash IS the routing path order (MSB-first
        // bits), so one sort gives every recursion level its partition.
        // The sort is stable: later writes to the same key stay later.
        items.sort_by(|a, b| a.kh.as_ref().cmp(b.kh.as_ref()));
        let mut deduped: Vec<Option<BatchEntry>> = Vec::with_capacity(items.len());
        for e in items {
            match deduped.last_mut() {
                Some(last) if last.as_ref().is_some_and(|p| p.kh == e.kh) => {
                    *last = Some(e); // last write wins
                }
                _ => deduped.push(Some(e)),
            }
        }
        let (node, delta) = Self::write_batch_at(self.root.take(), &mut deduped, 0);
        self.root = node;
        self.len = self.len.checked_add_signed(delta).expect("len underflow");
    }

    fn write_batch_at(
        node: Option<Box<Node>>,
        items: &mut [Option<BatchEntry>],
        depth: usize,
    ) -> (Option<Box<Node>>, isize) {
        if items.is_empty() {
            return (node, 0);
        }
        match node {
            None => Self::build_from_items(items, depth),
            Some(mut boxed) => match &mut *boxed {
                Node::Leaf {
                    key_hash,
                    value,
                    hash,
                    ..
                } => {
                    let single = items.len() == 1
                        && items[0].as_ref().expect("unconsumed entry").kh == *key_hash;
                    if single {
                        // Only this key is written: update or delete in
                        // place, no structural change elsewhere.
                        let e = items[0].take().expect("unconsumed entry");
                        return match e.value {
                            Some(v) => {
                                *value = v;
                                *hash = leaf_hash(key_hash, value);
                                (Some(boxed), 0)
                            }
                            None => (None, -1),
                        };
                    }
                    // Fold the existing leaf into the (sorted) item set and
                    // rebuild this subtree in one pass.
                    let leaf = match *boxed {
                        Node::Leaf {
                            key_hash,
                            key,
                            value,
                            ..
                        } => BatchEntry {
                            kh: key_hash,
                            key,
                            value: Some(value),
                        },
                        Node::Branch { .. } => unreachable!("matched leaf above"),
                    };
                    let mut merged: Vec<Option<BatchEntry>> = Vec::with_capacity(items.len() + 1);
                    let mut leaf = Some(leaf);
                    for e in items.iter_mut() {
                        let entry = e.take().expect("unconsumed entry");
                        if let Some(l) = &leaf {
                            if entry.kh.as_ref() >= l.kh.as_ref() {
                                let l = leaf.take().expect("checked above");
                                // On an exact match the batch entry overrides
                                // the old leaf, which is simply dropped.
                                if entry.kh != l.kh {
                                    merged.push(Some(l));
                                }
                            }
                        }
                        merged.push(Some(entry));
                    }
                    if let Some(l) = leaf {
                        merged.push(Some(l));
                    }
                    let (subtree, added) = Self::build_from_items(&mut merged, depth);
                    // Exactly one pre-existing leaf was consumed by this
                    // rebuild (folded back in or overridden), so the live
                    // count of the new subtree overstates the delta by one.
                    (subtree, added - 1)
                }
                Node::Branch { left, right, .. } => {
                    let split = items.partition_point(|e| {
                        !bit(&e.as_ref().expect("unconsumed entry").kh, depth)
                    });
                    let (l_items, r_items) = items.split_at_mut(split);
                    let (l, dl) = Self::write_batch_at(left.take(), l_items, depth + 1);
                    let (r, dr) = Self::write_batch_at(right.take(), r_items, depth + 1);
                    *left = l;
                    *right = r;
                    // Canonicalize exactly as `remove_at` does: a lone leaf
                    // rises, an empty branch vanishes, a lone branch child
                    // stays (its leaves still diverge deeper down).
                    let lone_leaf = match (&left, &right) {
                        (None, None) => return (None, dl + dr),
                        (Some(l), None) if matches!(&**l, Node::Leaf { .. }) => left.take(),
                        (None, Some(r)) if matches!(&**r, Node::Leaf { .. }) => right.take(),
                        _ => None,
                    };
                    if let Some(leaf) = lone_leaf {
                        return (Some(leaf), dl + dr);
                    }
                    boxed.rehash();
                    (Some(boxed), dl + dr)
                }
            },
        }
    }

    /// Builds a canonical subtree from sorted batch entries (removals of
    /// absent keys are no-ops). Returns the subtree and the number of live
    /// leaves created.
    fn build_from_items(
        items: &mut [Option<BatchEntry>],
        depth: usize,
    ) -> (Option<Box<Node>>, isize) {
        let live = items
            .iter()
            .filter(|e| e.as_ref().is_some_and(|p| p.value.is_some()))
            .count();
        match live {
            0 => {
                for e in items.iter_mut() {
                    e.take();
                }
                (None, 0)
            }
            1 => {
                let e = items
                    .iter_mut()
                    .filter_map(|e| e.take())
                    .find(|e| e.value.is_some())
                    .expect("one live entry");
                let value = e.value.expect("live entry has a value");
                let hash = leaf_hash(&e.kh, &value);
                (
                    Some(Box::new(Node::Leaf {
                        key_hash: e.kh,
                        key: e.key,
                        value,
                        hash,
                    })),
                    1,
                )
            }
            _ => {
                let split = items
                    .partition_point(|e| !bit(&e.as_ref().expect("unconsumed entry").kh, depth));
                let (l_items, r_items) = items.split_at_mut(split);
                let (left, dl) = Self::build_from_items(l_items, depth + 1);
                let (right, dr) = Self::build_from_items(r_items, depth + 1);
                let mut branch = Node::Branch {
                    left,
                    right,
                    hash: Hash256::ZERO,
                };
                branch.rehash();
                (Some(Box::new(branch)), dl + dr)
            }
        }
    }

    /// Produces an inclusion proof for `key`, or `None` if absent.
    pub fn prove(&self, key: &[u8]) -> Option<MapProof> {
        let kh = sha256(key);
        let mut node = self.root.as_deref()?;
        let mut depth = 0;
        let mut siblings = Vec::new();
        loop {
            match node {
                Node::Leaf {
                    key_hash, value, ..
                } => {
                    if *key_hash != kh {
                        return None;
                    }
                    siblings.reverse(); // leaf-upward order for verification
                    return Some(MapProof {
                        key: key.to_vec(),
                        value: value.clone(),
                        siblings,
                    });
                }
                Node::Branch { left, right, .. } => {
                    let (child, sibling) = if bit(&kh, depth) {
                        (right, Node::child_hash(left))
                    } else {
                        (left, Node::child_hash(right))
                    };
                    siblings.push(sibling);
                    node = child.as_deref()?;
                    depth += 1;
                }
            }
        }
    }

    /// Iterates over all `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], &[u8])> {
        let mut stack: Vec<&Node> = Vec::new();
        if let Some(root) = self.root.as_deref() {
            stack.push(root);
        }
        std::iter::from_fn(move || loop {
            let node = stack.pop()?;
            match node {
                Node::Leaf { key, value, .. } => return Some((key.as_slice(), value.as_slice())),
                Node::Branch { left, right, .. } => {
                    if let Some(l) = left.as_deref() {
                        stack.push(l);
                    }
                    if let Some(r) = right.as_deref() {
                        stack.push(r);
                    }
                }
            }
        })
    }
}

impl FromIterator<(Vec<u8>, Vec<u8>)> for MerkleMap {
    fn from_iter<I: IntoIterator<Item = (Vec<u8>, Vec<u8>)>>(iter: I) -> Self {
        let mut m = MerkleMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// An inclusion proof binding a key/value pair to a [`MerkleMap`] root.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MapProof {
    key: Vec<u8>,
    value: Vec<u8>,
    /// Sibling hashes from the leaf's parent up to the root.
    siblings: Vec<Hash256>,
}

impl MapProof {
    /// The proven key.
    pub fn key(&self) -> &[u8] {
        &self.key
    }

    /// The proven value.
    pub fn value(&self) -> &[u8] {
        &self.value
    }

    /// Encoded byte length (for E10 download-size accounting).
    pub fn encoded_len(&self) -> usize {
        self.encoded().len()
    }

    /// Verifies the proof against a state root.
    pub fn verify(&self, root: &Hash256) -> bool {
        let kh = sha256(&self.key);
        let mut acc = leaf_hash(&kh, &self.value);
        let depth = self.siblings.len();
        for (i, sibling) in self.siblings.iter().enumerate() {
            // Sibling i sits at depth (depth - 1 - i); the key's bit at that
            // depth decides which side our accumulator is on.
            let d = depth - 1 - i;
            acc = if bit(&kh, d) {
                branch_hash(sibling, &acc)
            } else {
                branch_hash(&acc, sibling)
            };
        }
        acc == *root
    }
}

impl Encode for MapProof {
    fn encode(&self, out: &mut Vec<u8>) {
        self.key.encode(out);
        self.value.encode(out);
        self.siblings.encode(out);
    }
}

impl Decode for MapProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(MapProof {
            key: Vec::decode(r)?,
            value: Vec::decode(r)?,
            siblings: Vec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(i: u32) -> (Vec<u8>, Vec<u8>) {
        (
            format!("key-{i}").into_bytes(),
            format!("value-{i}").into_bytes(),
        )
    }

    #[test]
    fn empty_map() {
        let m = MerkleMap::new();
        assert_eq!(m.root(), Hash256::ZERO);
        assert!(m.is_empty());
        assert_eq!(m.get(b"missing"), None);
        assert!(m.prove(b"missing").is_none());
    }

    #[test]
    fn insert_get_update_remove() {
        let mut m = MerkleMap::new();
        assert_eq!(m.insert(b"a".to_vec(), b"1".to_vec()), None);
        assert_eq!(m.insert(b"a".to_vec(), b"2".to_vec()), Some(b"1".to_vec()));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(b"a"), Some(&b"2"[..]));
        assert_eq!(m.remove(b"a"), Some(b"2".to_vec()));
        assert_eq!(m.remove(b"a"), None);
        assert!(m.is_empty());
        assert_eq!(m.root(), Hash256::ZERO);
    }

    #[test]
    fn root_is_content_addressed_not_order_addressed() {
        let pairs: Vec<_> = (0..50).map(kv).collect();
        let forward: MerkleMap = pairs.clone().into_iter().collect();
        let backward: MerkleMap = pairs.clone().into_iter().rev().collect();
        assert_eq!(forward.root(), backward.root());

        // Insert-then-remove returns to the same root.
        let mut m: MerkleMap = pairs.clone().into_iter().collect();
        let base = m.root();
        m.insert(b"extra".to_vec(), b"x".to_vec());
        assert_ne!(m.root(), base);
        m.remove(b"extra");
        assert_eq!(m.root(), base);
    }

    #[test]
    fn roots_differ_for_different_contents() {
        let a: MerkleMap = (0..10).map(kv).collect();
        let mut b: MerkleMap = (0..10).map(kv).collect();
        b.insert(b"key-3".to_vec(), b"tampered".to_vec());
        assert_ne!(a.root(), b.root());
    }

    #[test]
    fn proofs_verify_and_bind() {
        let m: MerkleMap = (0..100).map(kv).collect();
        let root = m.root();
        for i in (0..100).step_by(7) {
            let (k, v) = kv(i);
            let p = m.prove(&k).expect("present key");
            assert_eq!(p.key(), &k[..]);
            assert_eq!(p.value(), &v[..]);
            assert!(p.verify(&root));
            assert!(!p.verify(&sha256(b"wrong root")));
        }
    }

    #[test]
    fn tampered_proof_fails() {
        let m: MerkleMap = (0..20).map(kv).collect();
        let (k, _) = kv(5);
        let root = m.root();
        let mut p = m.prove(&k).unwrap();
        p.value = b"forged".to_vec();
        assert!(!p.verify(&root));
        let mut p2 = m.prove(&k).unwrap();
        if !p2.siblings.is_empty() {
            p2.siblings[0] = sha256(b"forged sibling");
            assert!(!p2.verify(&root));
        }
    }

    #[test]
    fn iter_visits_everything_once() {
        let m: MerkleMap = (0..37).map(kv).collect();
        let mut keys: Vec<Vec<u8>> = m.iter().map(|(k, _)| k.to_vec()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 37);
        assert_eq!(m.len(), 37);
    }

    #[test]
    fn removal_collapses_to_canonical_structure() {
        // Build {a}, then {a,b}, then remove b: root must equal the {a} root.
        let mut only_a = MerkleMap::new();
        only_a.insert(b"a".to_vec(), b"1".to_vec());
        let root_a = only_a.root();

        let mut m = MerkleMap::new();
        m.insert(b"a".to_vec(), b"1".to_vec());
        for i in 0..20 {
            let (k, v) = kv(i);
            m.insert(k, v);
        }
        for i in 0..20 {
            let (k, _) = kv(i);
            m.remove(&k);
        }
        assert_eq!(m.root(), root_a);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn write_batch_builds_same_root_as_serial_inserts() {
        let pairs: Vec<_> = (0..200).map(kv).collect();
        let serial: MerkleMap = pairs.clone().into_iter().collect();
        let mut batched = MerkleMap::new();
        batched.write_batch(pairs.into_iter().map(|(k, v)| (k, Some(v))).collect());
        assert_eq!(batched.root(), serial.root());
        assert_eq!(batched.len(), serial.len());
    }

    #[test]
    fn write_batch_mixed_ops_match_serial_replay() {
        // Start both maps from the same populated base.
        let base: Vec<_> = (0..100).map(kv).collect();
        let mut serial: MerkleMap = base.clone().into_iter().collect();
        let mut batched = serial.clone();

        // Updates, fresh inserts, removes of present and absent keys, and
        // conflicting writes to the same key inside one batch.
        let ops: Vec<(Vec<u8>, Option<Vec<u8>>)> = vec![
            (b"key-3".to_vec(), Some(b"updated".to_vec())),
            (b"brand-new".to_vec(), Some(b"n1".to_vec())),
            (b"key-7".to_vec(), None),
            (b"never-existed".to_vec(), None),
            (b"brand-new".to_vec(), Some(b"n2".to_vec())), // overrides n1
            (b"key-11".to_vec(), Some(b"x".to_vec())),
            (b"key-11".to_vec(), None), // insert then remove, same batch
            (b"only-removed".to_vec(), None),
            (b"key-42".to_vec(), Some(b"f1".to_vec())),
            (b"key-42".to_vec(), Some(b"f2".to_vec())),
            (b"key-42".to_vec(), Some(b"f3".to_vec())), // last write wins
        ];
        for (k, v) in ops.clone() {
            match v {
                Some(v) => {
                    serial.insert(k, v);
                }
                None => {
                    serial.remove(&k);
                }
            }
        }
        batched.write_batch(ops);
        assert_eq!(batched.root(), serial.root());
        assert_eq!(batched.len(), serial.len());
        assert_eq!(batched.get(b"brand-new"), Some(&b"n2"[..]));
        assert_eq!(batched.get(b"key-42"), Some(&b"f3"[..]));
        assert_eq!(batched.get(b"key-11"), None);
    }

    #[test]
    fn write_batch_removals_collapse_to_canonical_shape() {
        let mut m: MerkleMap = (0..50).map(kv).collect();
        m.insert(b"survivor".to_vec(), b"s".to_vec());
        m.write_batch((0..50).map(|i| (kv(i).0, None)).collect());
        let mut expect = MerkleMap::new();
        expect.insert(b"survivor".to_vec(), b"s".to_vec());
        assert_eq!(m.root(), expect.root());
        assert_eq!(m.len(), 1);

        // Proofs still verify against the collapsed structure.
        let p = m.prove(b"survivor").unwrap();
        assert!(p.verify(&m.root()));
    }

    #[test]
    fn write_batch_chunked_matches_one_shot() {
        let ops: Vec<(Vec<u8>, Option<Vec<u8>>)> = (0..120)
            .map(|i| {
                let (k, v) = kv(i % 80); // plenty of key collisions
                if i % 7 == 3 {
                    (k, None)
                } else {
                    (k, Some(v))
                }
            })
            .collect();
        let mut one_shot = MerkleMap::new();
        one_shot.write_batch(ops.clone());
        let mut chunked = MerkleMap::new();
        for chunk in ops.chunks(13) {
            chunked.write_batch(chunk.to_vec());
        }
        assert_eq!(one_shot.root(), chunked.root());
        assert_eq!(one_shot.len(), chunked.len());
    }

    #[test]
    fn proof_codec_round_trip() {
        let m: MerkleMap = (0..10).map(kv).collect();
        let (k, _) = kv(4);
        let p = m.prove(&k).unwrap();
        let d = dcs_crypto::codec::decode_all::<MapProof>(&p.encoded()).unwrap();
        assert_eq!(d, p);
        assert!(d.verify(&m.root()));
    }

    #[test]
    fn large_map_stays_logarithmic() {
        let m: MerkleMap = (0..2000).map(kv).collect();
        let (k, _) = kv(1234);
        let p = m.prove(&k).unwrap();
        // Expected depth ~ log2(2000) ≈ 11; allow generous slack.
        assert!(p.siblings.len() < 40, "depth {}", p.siblings.len());
    }
}
