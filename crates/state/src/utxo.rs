//! The generation-1.0 state machine: an unspent-transaction-output set with
//! full validation (existence, ownership witness, value balance) and undo
//! logs so the chain layer can roll blocks back during reorgs.

use dcs_crypto::{Hash256, MerkleTree, VerifyItem, VerifyPipeline};
use dcs_primitives::{Amount, Transaction, TxOut, UtxoTx};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifies one output of one transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OutPoint {
    /// Creating transaction.
    pub tx: Hash256,
    /// Output index within it.
    pub index: u32,
}

/// UTXO-rule violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UtxoError {
    /// An input referenced an output that does not exist or was spent.
    MissingInput(OutPoint),
    /// The same output was spent twice within one transaction.
    DoubleSpendInTx(OutPoint),
    /// Outputs exceed inputs (value would be created from nothing).
    ValueOverflow {
        /// Total input value.
        inputs: Amount,
        /// Total output value.
        outputs: Amount,
    },
    /// A witness was missing while signature verification is on.
    MissingWitness(OutPoint),
    /// A witness signature or key did not authorize the spend.
    BadWitness(OutPoint),
    /// A transaction had no inputs (only coinbases may mint).
    NoInputs,
    /// Summing input values overflowed the `Amount` type.
    AmountOverflow,
}

impl core::fmt::Display for UtxoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            UtxoError::MissingInput(op) => write!(f, "missing input {}:{}", op.tx, op.index),
            UtxoError::DoubleSpendInTx(op) => {
                write!(f, "double spend within tx of {}:{}", op.tx, op.index)
            }
            UtxoError::ValueOverflow { inputs, outputs } => {
                write!(f, "outputs {outputs} exceed inputs {inputs}")
            }
            UtxoError::MissingWitness(op) => {
                write!(f, "missing witness for {}:{}", op.tx, op.index)
            }
            UtxoError::BadWitness(op) => write!(f, "bad witness for {}:{}", op.tx, op.index),
            UtxoError::NoInputs => write!(f, "transaction has no inputs"),
            UtxoError::AmountOverflow => write!(f, "input value sum overflows Amount"),
        }
    }
}

impl std::error::Error for UtxoError {}

/// Undo record for one applied UTXO transaction: what to re-create and what
/// to delete to reverse it.
#[derive(Debug, Clone, Default)]
pub struct UtxoUndo {
    spent: Vec<(OutPoint, TxOut)>,
    created: Vec<OutPoint>,
}

/// The unspent output set.
///
/// # Examples
///
/// ```
/// use dcs_state::UtxoSet;
/// use dcs_crypto::Address;
///
/// let mut set = UtxoSet::new();
/// let genesis = set.mint(Address::from_index(1), 100);
/// assert_eq!(set.balance_of(&Address::from_index(1)), 100);
/// # let _ = genesis;
/// ```
#[derive(Debug, Clone, Default)]
pub struct UtxoSet {
    live: BTreeMap<OutPoint, TxOut>,
    mint_counter: u64,
    verify_witnesses: bool,
}

impl UtxoSet {
    /// Creates an empty set with witness verification off (simulation mode).
    pub fn new() -> Self {
        UtxoSet::default()
    }

    /// Creates an empty set that demands and checks spend witnesses.
    pub fn with_witness_verification() -> Self {
        UtxoSet {
            verify_witnesses: true,
            ..UtxoSet::default()
        }
    }

    /// Whether this set demands and checks spend witnesses.
    pub fn verifies_witnesses(&self) -> bool {
        self.verify_witnesses
    }

    /// Number of live outputs.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no outputs are live.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Looks up a live output.
    pub fn get(&self, op: &OutPoint) -> Option<&TxOut> {
        self.live.get(op)
    }

    /// Sum of live outputs owned by `addr` (a wallet balance scan).
    pub fn balance_of(&self, addr: &dcs_crypto::Address) -> Amount {
        self.live
            .values()
            .filter(|o| o.recipient == *addr)
            .map(|o| o.value)
            .sum()
    }

    /// All live outpoints owned by `addr`, sorted for determinism.
    pub fn outpoints_of(&self, addr: &dcs_crypto::Address) -> Vec<OutPoint> {
        let mut v: Vec<OutPoint> = self
            .live
            .iter()
            .filter(|(_, o)| o.recipient == *addr)
            .map(|(op, _)| *op)
            .collect();
        v.sort();
        v
    }

    /// Mints a fresh output outside consensus (genesis allocations and
    /// tests). Returns its outpoint.
    pub fn mint(&mut self, to: dcs_crypto::Address, value: Amount) -> OutPoint {
        let tx = dcs_crypto::sha256(&self.mint_counter.to_le_bytes());
        self.mint_counter += 1;
        let op = OutPoint {
            tx,
            index: u32::MAX,
        };
        self.live.insert(
            op,
            TxOut {
                value,
                recipient: to,
            },
        );
        op
    }

    /// Validates a UTXO transaction against the current set without applying
    /// it. Returns the fee (inputs minus outputs).
    ///
    /// # Errors
    ///
    /// Any [`UtxoError`] the transaction violates.
    pub fn validate(&self, tx: &UtxoTx, signing_hash: &Hash256) -> Result<Amount, UtxoError> {
        self.validate_with(tx, signing_hash, true)
    }

    /// [`UtxoSet::validate`] with signature verification optionally elided.
    ///
    /// With `verify_sigs == false` the *stateful* witness checks still run —
    /// a witness must be present and its key must hash to the spent output's
    /// owner — but the signature itself is assumed to have been verified
    /// already (by [`UtxoSet::prevalidate_witnesses`]). Ownership cannot be
    /// checked statelessly because the spent output may be created earlier
    /// in the same block.
    fn validate_with(
        &self,
        tx: &UtxoTx,
        signing_hash: &Hash256,
        verify_sigs: bool,
    ) -> Result<Amount, UtxoError> {
        self.validate_view(None, tx, signing_hash, verify_sigs)
    }

    /// Validation over the live set overlaid with a batch's staged deltas
    /// (`Some` = created this batch, `None` = spent this batch). With
    /// `staged == None` this is exactly the serial validation.
    fn validate_view(
        &self,
        staged: Option<&BTreeMap<OutPoint, Option<TxOut>>>,
        tx: &UtxoTx,
        signing_hash: &Hash256,
        verify_sigs: bool,
    ) -> Result<Amount, UtxoError> {
        if tx.inputs.is_empty() {
            return Err(UtxoError::NoInputs);
        }
        let mut seen = std::collections::BTreeSet::new();
        let mut input_value: Amount = 0;
        for input in &tx.inputs {
            let op = OutPoint {
                tx: input.prev_tx,
                index: input.index,
            };
            if !seen.insert(op) {
                return Err(UtxoError::DoubleSpendInTx(op));
            }
            let out = match staged.and_then(|s| s.get(&op)) {
                Some(Some(created)) => created,
                Some(None) => return Err(UtxoError::MissingInput(op)),
                None => self.live.get(&op).ok_or(UtxoError::MissingInput(op))?,
            };
            if self.verify_witnesses {
                let auth = input.auth.as_ref().ok_or(UtxoError::MissingWitness(op))?;
                if auth.pubkey.address() != out.recipient
                    || (verify_sigs && !auth.pubkey.verify(signing_hash, &auth.signature))
                {
                    return Err(UtxoError::BadWitness(op));
                }
            }
            input_value = input_value
                .checked_add(out.value)
                .ok_or(UtxoError::AmountOverflow)?;
        }
        let output_value = tx.output_value();
        if output_value > input_value {
            return Err(UtxoError::ValueOverflow {
                inputs: input_value,
                outputs: output_value,
            });
        }
        Ok(input_value - output_value)
    }

    /// Stateless prevalidation for a whole block body: batch-verifies every
    /// witness signature in `txs` through `pipeline`, in parallel and
    /// through its signature cache.
    ///
    /// Only the pure signature checks run here — input existence, ownership,
    /// and value balance are stateful (an input may be created by an earlier
    /// transaction in the same block) and stay in the serial apply loop. On
    /// success the caller may apply the same transactions with
    /// [`UtxoSet::apply_prevalidated`], which skips re-verifying signatures;
    /// the end state is identical to the all-serial path because the same
    /// predicate gates the same error at the same point.
    ///
    /// Returns the number of signatures checked.
    ///
    /// # Errors
    ///
    /// [`UtxoError::BadWitness`] naming the first input (in block order)
    /// whose signature fails.
    pub fn prevalidate_witnesses(
        txs: &[Transaction],
        pipeline: &VerifyPipeline,
    ) -> Result<usize, UtxoError> {
        // Signing hashes are per transaction; compute each once.
        let hashes: Vec<Hash256> = txs.iter().map(|tx| tx.signing_hash()).collect();
        let mut items: Vec<VerifyItem<'_>> = Vec::new();
        let mut outpoints: Vec<OutPoint> = Vec::new();
        for (tx, hash) in txs.iter().zip(&hashes) {
            if let Transaction::Utxo(utx) = tx {
                for input in &utx.inputs {
                    if let Some(auth) = &input.auth {
                        items.push((&auth.pubkey, hash, &auth.signature));
                        outpoints.push(OutPoint {
                            tx: input.prev_tx,
                            index: input.index,
                        });
                    }
                }
            }
        }
        let verdicts = pipeline.verify_batch_refs(&items);
        match verdicts.iter().position(|&ok| !ok) {
            Some(i) => Err(UtxoError::BadWitness(outpoints[i])),
            None => Ok(items.len()),
        }
    }

    /// Applies a validated transaction, returning the fee and an undo record.
    ///
    /// # Errors
    ///
    /// Same as [`UtxoSet::validate`]; on error the set is unchanged.
    pub fn apply(&mut self, tx: &Transaction) -> Result<(Amount, UtxoUndo), UtxoError> {
        self.apply_with(tx, true)
    }

    /// Applies a transaction whose witness signatures were already verified
    /// by [`UtxoSet::prevalidate_witnesses`]: all stateful checks (input
    /// existence, double spends, ownership, value balance) still run, only
    /// the signature re-verification is skipped.
    ///
    /// # Errors
    ///
    /// Same as [`UtxoSet::apply`] except that [`UtxoError::BadWitness`] is
    /// only raised for ownership mismatches; on error the set is unchanged.
    pub fn apply_prevalidated(
        &mut self,
        tx: &Transaction,
    ) -> Result<(Amount, UtxoUndo), UtxoError> {
        self.apply_with(tx, false)
    }

    fn apply_with(
        &mut self,
        tx: &Transaction,
        verify_sigs: bool,
    ) -> Result<(Amount, UtxoUndo), UtxoError> {
        let mut undo = UtxoUndo::default();
        match tx {
            Transaction::Coinbase { to, value, .. } => {
                let op = OutPoint {
                    tx: tx.id(),
                    index: 0,
                };
                self.live.insert(
                    op,
                    TxOut {
                        value: *value,
                        recipient: *to,
                    },
                );
                undo.created.push(op);
                Ok((0, undo))
            }
            Transaction::Utxo(utx) => {
                let fee = self.validate_with(utx, &tx.signing_hash(), verify_sigs)?;
                for input in &utx.inputs {
                    let op = OutPoint {
                        tx: input.prev_tx,
                        index: input.index,
                    };
                    let out = self.live.remove(&op).expect("validated input exists");
                    undo.spent.push((op, out));
                }
                let id = tx.id();
                for (i, out) in utx.outputs.iter().enumerate() {
                    let op = OutPoint {
                        tx: id,
                        index: i as u32,
                    };
                    self.live.insert(op, *out);
                    undo.created.push(op);
                }
                Ok((fee, undo))
            }
            Transaction::Account(_) => Ok((0, undo)), // not this state machine's concern
        }
    }

    /// Applies a whole block body in one batched pass: every transaction is
    /// validated against the live set overlaid with the deltas staged so far
    /// (so mid-block dependencies resolve exactly as on the serial path),
    /// then the accumulated deltas merge into the live BTree in a single
    /// sorted sweep. `ids[i]` must be `txs[i].id()` — callers pass a block's
    /// cached ids so no transaction is re-hashed here.
    ///
    /// Fees, undo records, and the resulting [`UtxoSet::commitment`] are
    /// identical to applying the transactions one at a time; on error
    /// nothing was mutated at all, making failed blocks free to reject.
    ///
    /// # Errors
    ///
    /// The first (in block order) [`UtxoError`] any transaction violates,
    /// exactly as the serial loop would raise it.
    pub fn apply_batch(
        &mut self,
        txs: &[Transaction],
        ids: &[Hash256],
        verify_sigs: bool,
    ) -> Result<Vec<(Amount, UtxoUndo)>, UtxoError> {
        assert_eq!(txs.len(), ids.len(), "one precomputed id per transaction");
        let mut staged: BTreeMap<OutPoint, Option<TxOut>> = BTreeMap::new();
        let mut results = Vec::with_capacity(txs.len());
        for (tx, id) in txs.iter().zip(ids) {
            let mut undo = UtxoUndo::default();
            match tx {
                Transaction::Coinbase { to, value, .. } => {
                    let op = OutPoint { tx: *id, index: 0 };
                    staged.insert(
                        op,
                        Some(TxOut {
                            value: *value,
                            recipient: *to,
                        }),
                    );
                    undo.created.push(op);
                    results.push((0, undo));
                }
                Transaction::Utxo(utx) => {
                    let fee =
                        self.validate_view(Some(&staged), utx, &tx.signing_hash(), verify_sigs)?;
                    for input in &utx.inputs {
                        let op = OutPoint {
                            tx: input.prev_tx,
                            index: input.index,
                        };
                        let out = match staged.insert(op, None) {
                            Some(prev) => prev.expect("validated input exists"),
                            None => *self.live.get(&op).expect("validated input exists"),
                        };
                        undo.spent.push((op, out));
                    }
                    for (i, out) in utx.outputs.iter().enumerate() {
                        let op = OutPoint {
                            tx: *id,
                            index: i as u32,
                        };
                        staged.insert(op, Some(*out));
                        undo.created.push(op);
                    }
                    results.push((fee, undo));
                }
                Transaction::Account(_) => results.push((0, undo)), // not ours
            }
        }
        // One ordered merge into the live set — the only mutation point, so
        // any error above left the set untouched.
        for (op, delta) in staged {
            match delta {
                Some(out) => {
                    self.live.insert(op, out);
                }
                None => {
                    self.live.remove(&op);
                }
            }
        }
        Ok(results)
    }

    /// Reverses a previously applied transaction.
    pub fn revert(&mut self, undo: UtxoUndo) {
        for op in undo.created {
            self.live.remove(&op);
        }
        for (op, out) in undo.spent {
            self.live.insert(op, out);
        }
    }

    /// A commitment to the full UTXO set: the Merkle root over the sorted
    /// outpoint/output encodings.
    pub fn commitment(&self) -> Hash256 {
        let mut entries: Vec<(&OutPoint, &TxOut)> = self.live.iter().collect();
        entries.sort_by_key(|(op, _)| **op);
        let leaves: Vec<Hash256> = entries
            .into_iter()
            .map(|(op, out)| {
                let mut bytes = Vec::new();
                use dcs_crypto::codec::Encode;
                op.tx.encode(&mut bytes);
                op.index.encode(&mut bytes);
                out.value.encode(&mut bytes);
                out.recipient.encode(&mut bytes);
                dcs_crypto::sha256(&bytes)
            })
            .collect();
        MerkleTree::from_leaves(leaves).root()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_crypto::{Address, KeyPair};
    use dcs_primitives::{TxAuth, TxIn};

    fn transfer(
        from_op: OutPoint,
        to: Address,
        value: Amount,
        change_to: Address,
        change: Amount,
    ) -> Transaction {
        Transaction::Utxo(UtxoTx {
            inputs: vec![TxIn {
                prev_tx: from_op.tx,
                index: from_op.index,
                auth: None,
            }],
            outputs: vec![
                TxOut {
                    value,
                    recipient: to,
                },
                TxOut {
                    value: change,
                    recipient: change_to,
                },
            ],
        })
    }

    #[test]
    fn mint_and_spend_with_fee() {
        let mut set = UtxoSet::new();
        let alice = Address::from_index(1);
        let bob = Address::from_index(2);
        let op = set.mint(alice, 100);
        // 60 to bob, 35 change, 5 fee.
        let tx = transfer(op, bob, 60, alice, 35);
        let (fee, _undo) = set.apply(&tx).unwrap();
        assert_eq!(fee, 5);
        assert_eq!(set.balance_of(&bob), 60);
        assert_eq!(set.balance_of(&alice), 35);
    }

    #[test]
    fn double_spend_rejected() {
        let mut set = UtxoSet::new();
        let alice = Address::from_index(1);
        let op = set.mint(alice, 100);
        let tx1 = transfer(op, Address::from_index(2), 100, alice, 0);
        set.apply(&tx1).unwrap();
        let tx2 = transfer(op, Address::from_index(3), 100, alice, 0);
        assert!(matches!(set.apply(&tx2), Err(UtxoError::MissingInput(_))));
    }

    #[test]
    fn double_spend_within_tx_rejected() {
        let mut set = UtxoSet::new();
        let alice = Address::from_index(1);
        let op = set.mint(alice, 100);
        let tx = Transaction::Utxo(UtxoTx {
            inputs: vec![
                TxIn {
                    prev_tx: op.tx,
                    index: op.index,
                    auth: None,
                },
                TxIn {
                    prev_tx: op.tx,
                    index: op.index,
                    auth: None,
                },
            ],
            outputs: vec![TxOut {
                value: 200,
                recipient: alice,
            }],
        });
        assert!(matches!(set.apply(&tx), Err(UtxoError::DoubleSpendInTx(_))));
    }

    #[test]
    fn value_creation_rejected() {
        let mut set = UtxoSet::new();
        let alice = Address::from_index(1);
        let op = set.mint(alice, 100);
        let tx = transfer(op, Address::from_index(2), 150, alice, 0);
        assert!(matches!(
            set.apply(&tx),
            Err(UtxoError::ValueOverflow {
                inputs: 100,
                outputs: 150
            })
        ));
    }

    #[test]
    fn empty_inputs_rejected() {
        let mut set = UtxoSet::new();
        let tx = Transaction::Utxo(UtxoTx {
            inputs: vec![],
            outputs: vec![],
        });
        assert!(matches!(set.apply(&tx), Err(UtxoError::NoInputs)));
    }

    #[test]
    fn revert_restores_exact_state() {
        let mut set = UtxoSet::new();
        let alice = Address::from_index(1);
        let op = set.mint(alice, 100);
        let before = set.commitment();
        let tx = transfer(op, Address::from_index(2), 40, alice, 60);
        let (_, undo) = set.apply(&tx).unwrap();
        assert_ne!(set.commitment(), before);
        set.revert(undo);
        assert_eq!(set.commitment(), before);
        assert_eq!(set.balance_of(&alice), 100);
    }

    #[test]
    fn coinbase_mints_new_output() {
        let mut set = UtxoSet::new();
        let miner = Address::from_index(9);
        let cb = Transaction::Coinbase {
            to: miner,
            value: 50,
            height: 1,
        };
        let (fee, _) = set.apply(&cb).unwrap();
        assert_eq!(fee, 0);
        assert_eq!(set.balance_of(&miner), 50);
    }

    #[test]
    fn witness_verification_enforced() {
        let mut kp = KeyPair::generate([5u8; 32], 2);
        let alice = kp.address();
        let mut set = UtxoSet::with_witness_verification();
        let op = set.mint(alice, 100);

        // Unsigned spend is rejected.
        let unsigned = transfer(op, Address::from_index(2), 100, alice, 0);
        assert!(matches!(
            set.apply(&unsigned),
            Err(UtxoError::MissingWitness(_))
        ));

        // Properly signed spend is accepted.
        let mut utx = UtxoTx {
            inputs: vec![TxIn {
                prev_tx: op.tx,
                index: op.index,
                auth: None,
            }],
            outputs: vec![TxOut {
                value: 100,
                recipient: Address::from_index(2),
            }],
        };
        let signing = Transaction::Utxo(utx.clone()).signing_hash();
        let sig = kp.sign(&signing).unwrap();
        utx.inputs[0].auth = Some(TxAuth {
            pubkey: kp.public_key(),
            signature: sig,
        });
        let signed = Transaction::Utxo(utx);
        set.apply(&signed).unwrap();
        assert_eq!(set.balance_of(&Address::from_index(2)), 100);
    }

    #[test]
    fn wrong_key_witness_rejected() {
        let mut kp_thief = KeyPair::generate([6u8; 32], 2);
        let owner = Address::from_index(1); // not the thief's address
        let mut set = UtxoSet::with_witness_verification();
        let op = set.mint(owner, 100);
        let mut utx = UtxoTx {
            inputs: vec![TxIn {
                prev_tx: op.tx,
                index: op.index,
                auth: None,
            }],
            outputs: vec![TxOut {
                value: 100,
                recipient: kp_thief.address(),
            }],
        };
        let signing = Transaction::Utxo(utx.clone()).signing_hash();
        let sig = kp_thief.sign(&signing).unwrap();
        utx.inputs[0].auth = Some(TxAuth {
            pubkey: kp_thief.public_key(),
            signature: sig,
        });
        assert!(matches!(
            set.apply(&Transaction::Utxo(utx)),
            Err(UtxoError::BadWitness(_))
        ));
    }

    #[test]
    fn input_sum_overflow_rejected() {
        let mut set = UtxoSet::new();
        let alice = Address::from_index(1);
        let op1 = set.mint(alice, Amount::MAX);
        let op2 = set.mint(alice, 1);
        let tx = Transaction::Utxo(UtxoTx {
            inputs: vec![
                TxIn {
                    prev_tx: op1.tx,
                    index: op1.index,
                    auth: None,
                },
                TxIn {
                    prev_tx: op2.tx,
                    index: op2.index,
                    auth: None,
                },
            ],
            outputs: vec![TxOut {
                value: 1,
                recipient: alice,
            }],
        });
        let before = set.commitment();
        assert!(matches!(set.apply(&tx), Err(UtxoError::AmountOverflow)));
        assert_eq!(
            set.commitment(),
            before,
            "failed apply must not mutate the set"
        );
    }

    /// Builds a signed chain of transfers: mint to `kp`, then each tx spends
    /// the previous tx's output back to the same key.
    fn signed_chain(set: &mut UtxoSet, kp: &mut KeyPair, n: usize) -> Vec<Transaction> {
        let addr = kp.address();
        let mut prev = set.mint(addr, 100);
        let mut txs = Vec::new();
        for _ in 0..n {
            let mut utx = UtxoTx {
                inputs: vec![TxIn {
                    prev_tx: prev.tx,
                    index: prev.index,
                    auth: None,
                }],
                outputs: vec![TxOut {
                    value: 100,
                    recipient: addr,
                }],
            };
            let signing = Transaction::Utxo(utx.clone()).signing_hash();
            let sig = kp.sign(&signing).unwrap();
            utx.inputs[0].auth = Some(TxAuth {
                pubkey: kp.public_key(),
                signature: sig,
            });
            let tx = Transaction::Utxo(utx);
            prev = OutPoint {
                tx: tx.id(),
                index: 0,
            };
            txs.push(tx);
        }
        txs
    }

    #[test]
    fn prevalidated_apply_matches_serial_apply() {
        // Mid-block dependencies on purpose: tx[i] spends tx[i-1]'s output,
        // so the stateless prevalidation must leave existence checks to the
        // serial loop and still reach the identical end state.
        let mut kp = KeyPair::generate([9u8; 32], 3);
        let mut serial = UtxoSet::with_witness_verification();
        let mut piped = UtxoSet::with_witness_verification();
        let txs = signed_chain(&mut serial, &mut kp, 5);
        let mut kp2 = KeyPair::generate([9u8; 32], 3);
        let txs2 = signed_chain(&mut piped, &mut kp2, 5);
        assert_eq!(
            txs.iter().map(Transaction::id).collect::<Vec<_>>(),
            txs2.iter().map(Transaction::id).collect::<Vec<_>>()
        );

        for threads in [1, 2, 8] {
            let pipeline = VerifyPipeline::new(threads, 1024);
            let mut piped = piped.clone();
            let checked = UtxoSet::prevalidate_witnesses(&txs, &pipeline).unwrap();
            assert_eq!(checked, txs.len());
            let mut serial = serial.clone();
            for tx in &txs {
                let (fee_serial, _) = serial.apply(tx).unwrap();
                let (fee_piped, _) = piped.apply_prevalidated(tx).unwrap();
                assert_eq!(fee_serial, fee_piped);
            }
            assert_eq!(serial.commitment(), piped.commitment(), "threads={threads}");
        }
    }

    #[test]
    fn prevalidation_rejects_forged_witness() {
        let mut kp = KeyPair::generate([8u8; 32], 3);
        let mut set = UtxoSet::with_witness_verification();
        let mut txs = signed_chain(&mut set, &mut kp, 3);
        // Replace the middle witness with a signature over a different message.
        if let Transaction::Utxo(utx) = &mut txs[1] {
            let wrong = kp.sign(&dcs_crypto::sha256(b"unrelated")).unwrap();
            utx.inputs[0].auth.as_mut().unwrap().signature = wrong;
        }
        let expected_op = match &txs[1] {
            Transaction::Utxo(utx) => OutPoint {
                tx: utx.inputs[0].prev_tx,
                index: utx.inputs[0].index,
            },
            _ => unreachable!(),
        };
        let pipeline = VerifyPipeline::new(2, 1024);
        assert_eq!(
            UtxoSet::prevalidate_witnesses(&txs, &pipeline),
            Err(UtxoError::BadWitness(expected_op))
        );
    }

    #[test]
    fn prevalidated_apply_still_checks_ownership() {
        // A witness whose signature is valid but whose key does not own the
        // spent output must still be rejected by the stateful apply loop.
        let mut thief = KeyPair::generate([7u8; 32], 2);
        let owner = Address::from_index(1);
        let mut set = UtxoSet::with_witness_verification();
        let op = set.mint(owner, 100);
        let mut utx = UtxoTx {
            inputs: vec![TxIn {
                prev_tx: op.tx,
                index: op.index,
                auth: None,
            }],
            outputs: vec![TxOut {
                value: 100,
                recipient: thief.address(),
            }],
        };
        let signing = Transaction::Utxo(utx.clone()).signing_hash();
        let sig = thief.sign(&signing).unwrap();
        utx.inputs[0].auth = Some(TxAuth {
            pubkey: thief.public_key(),
            signature: sig,
        });
        let tx = Transaction::Utxo(utx);
        // The signature itself is genuine, so prevalidation passes...
        let pipeline = VerifyPipeline::new(2, 64);
        assert_eq!(
            UtxoSet::prevalidate_witnesses(std::slice::from_ref(&tx), &pipeline),
            Ok(1)
        );
        // ...but apply_prevalidated still catches the ownership mismatch.
        assert!(matches!(
            set.apply_prevalidated(&tx),
            Err(UtxoError::BadWitness(_))
        ));
    }

    #[test]
    fn apply_batch_matches_serial_apply() {
        // Chained self-transfers: tx[i] spends tx[i-1]'s output, so batched
        // validation must see staged creations. Include a coinbase too.
        let mut kp = KeyPair::generate([21u8; 32], 3);
        let mut serial = UtxoSet::with_witness_verification();
        let mut txs = signed_chain(&mut serial, &mut kp, 6);
        txs.insert(
            0,
            Transaction::Coinbase {
                to: Address::from_index(50),
                value: 25,
                height: 1,
            },
        );
        let mut batched = serial.clone();

        let ids: Vec<Hash256> = txs.iter().map(Transaction::id).collect();
        let batch_results = batched.apply_batch(&txs, &ids, true).unwrap();
        let mut undos = Vec::new();
        for (i, tx) in txs.iter().enumerate() {
            let (fee, undo) = serial.apply(tx).unwrap();
            assert_eq!(batch_results[i].0, fee, "fee mismatch at {i}");
            undos.push(undo);
        }
        assert_eq!(batched.commitment(), serial.commitment());
        assert_eq!(batched.len(), serial.len());

        // The batch's undo records revert the block exactly like serial ones.
        let before_serial = {
            let mut s = serial.clone();
            for undo in undos.into_iter().rev() {
                s.revert(undo);
            }
            s.commitment()
        };
        for (_, undo) in batch_results.into_iter().rev() {
            batched.revert(undo);
        }
        assert_eq!(batched.commitment(), before_serial);
    }

    #[test]
    fn apply_batch_error_leaves_set_untouched() {
        let mut set = UtxoSet::new();
        let alice = Address::from_index(1);
        let op = set.mint(alice, 100);
        let before = set.commitment();
        let good = transfer(op, Address::from_index(2), 100, alice, 0);
        let double_spend = transfer(op, Address::from_index(3), 100, alice, 0);
        let txs = vec![good, double_spend];
        let ids: Vec<Hash256> = txs.iter().map(Transaction::id).collect();
        assert!(matches!(
            set.apply_batch(&txs, &ids, true),
            Err(UtxoError::MissingInput(_))
        ));
        assert_eq!(set.commitment(), before, "failed batch must not mutate");
    }

    #[test]
    fn commitment_is_content_addressed() {
        let mut a = UtxoSet::new();
        let mut b = UtxoSet::new();
        a.mint(Address::from_index(1), 5);
        a.mint(Address::from_index(2), 6);
        b.mint(Address::from_index(1), 5);
        b.mint(Address::from_index(2), 6);
        assert_eq!(a.commitment(), b.commitment());
        b.mint(Address::from_index(3), 7);
        assert_ne!(a.commitment(), b.commitment());
    }
}
