//! The generation-2.0/3.0 state machine substrate: accounts with balances
//! and nonces, contract code, and per-contract storage, all stored in one
//! authenticated [`MerkleMap`] so a single `state_root` commits to
//! everything. Every mutation is journaled, giving transaction-level revert
//! (failed contract calls) and block-level undo (reorgs) for free.

use crate::merkle_map::MerkleMap;
use crate::StateError;
use dcs_crypto::codec::{decode_all, Decode, DecodeError, Encode, Reader};
use dcs_crypto::{Address, Hash256};
use dcs_primitives::Amount;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The balance/nonce record of one account.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Account {
    /// Spendable balance.
    pub balance: Amount,
    /// Number of transactions sent (replay protection).
    pub nonce: u64,
}

impl Encode for Account {
    fn encode(&self, out: &mut Vec<u8>) {
        self.balance.encode(out);
        self.nonce.encode(out);
    }
}

impl Decode for Account {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Account {
            balance: Amount::decode(r)?,
            nonce: u64::decode(r)?,
        })
    }
}

const TAG_ACCOUNT: u8 = 0x00;
const TAG_STORAGE: u8 = 0x01;
const TAG_CODE: u8 = 0x02;

fn account_key(addr: &Address) -> Vec<u8> {
    let mut k = vec![TAG_ACCOUNT];
    k.extend_from_slice(addr.as_bytes());
    k
}

fn storage_key(addr: &Address, slot: &Hash256) -> Vec<u8> {
    let mut k = vec![TAG_STORAGE];
    k.extend_from_slice(addr.as_bytes());
    k.extend_from_slice(slot.as_ref());
    k
}

fn code_key(addr: &Address) -> Vec<u8> {
    let mut k = vec![TAG_CODE];
    k.extend_from_slice(addr.as_bytes());
    k
}

/// A block-level undo record extracted from the journal.
#[derive(Debug, Clone, Default)]
pub struct AccountUndo {
    entries: Vec<(Vec<u8>, Option<Vec<u8>>)>,
}

/// The account database.
///
/// # Examples
///
/// ```
/// use dcs_state::AccountDb;
/// use dcs_crypto::Address;
///
/// let mut db = AccountDb::new();
/// let alice = Address::from_index(1);
/// db.credit(&alice, 100);
/// let snap = db.snapshot();
/// db.debit(&alice, 30).unwrap();
/// db.rollback(snap); // failed tx: balance restored
/// assert_eq!(db.balance(&alice), 100);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AccountDb {
    map: MerkleMap,
    journal: Vec<(Vec<u8>, Option<Vec<u8>>)>,
    /// Batched-application overlay (`Some` while a batch is open): pending
    /// writes staged here are merged into the trie in one
    /// [`MerkleMap::write_batch`] pass at [`AccountDb::commit_batch`] time.
    /// Reads always consult the overlay first, so execution sees exactly the
    /// state the serial path would.
    overlay: Option<BTreeMap<Vec<u8>, Option<Vec<u8>>>>,
}

impl AccountDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        AccountDb::default()
    }

    /// The authenticated state root.
    pub fn root(&self) -> Hash256 {
        self.map.root()
    }

    /// Number of underlying map entries (accounts + slots + code blobs).
    pub fn entry_count(&self) -> usize {
        self.map.len()
    }

    /// Produces a Merkle inclusion proof for an account record, verifiable
    /// against [`AccountDb::root`] — how a light client checks a balance.
    pub fn prove_account(&self, addr: &Address) -> Option<crate::merkle_map::MapProof> {
        self.map.prove(&account_key(addr))
    }

    /// Opens a write batch: subsequent mutations are staged in an overlay
    /// instead of touching the trie, and [`AccountDb::commit_batch`] merges
    /// them in one [`MerkleMap::write_batch`] pass with a single root path
    /// rehash per touched branch. Journal semantics (snapshot / rollback /
    /// take_undo) are unchanged — mid-batch transaction failures revert
    /// exactly as on the serial path. No-op if a batch is already open.
    pub fn begin_batch(&mut self) {
        self.overlay.get_or_insert_with(BTreeMap::new);
    }

    /// Merges all staged writes into the trie in one pass and closes the
    /// batch. The resulting root is bit-identical to applying the same
    /// mutations serially. No-op when no batch is open.
    pub fn commit_batch(&mut self) {
        if let Some(overlay) = self.overlay.take() {
            self.map.write_batch(overlay.into_iter().collect());
        }
    }

    /// Discards the overlay and closes the batch. The caller must already
    /// have rolled the journal back to the pre-batch snapshot — after such a
    /// rollback the overlay holds only writes restoring pre-batch values, so
    /// dropping it is equivalent to committing it. No-op outside a batch.
    pub fn abort_batch(&mut self) {
        self.overlay = None;
    }

    /// True while a write batch is open.
    pub fn is_batching(&self) -> bool {
        self.overlay.is_some()
    }

    fn raw_get(&self, key: &[u8]) -> Option<&[u8]> {
        if let Some(overlay) = &self.overlay {
            if let Some(staged) = overlay.get(key) {
                return staged.as_deref();
            }
        }
        self.map.get(key)
    }

    fn raw_set(&mut self, key: Vec<u8>, value: Option<Vec<u8>>) {
        let old = match &mut self.overlay {
            Some(overlay) => match overlay.insert(key.clone(), value) {
                // The overlay-visible previous value: an earlier staged
                // write, or (first touch in this batch) the trie's value.
                Some(staged) => staged,
                None => self.map.get(&key).map(<[u8]>::to_vec),
            },
            None => match &value {
                Some(v) => self.map.insert(key.clone(), v.clone()),
                None => self.map.remove(&key),
            },
        };
        self.journal.push((key, old));
    }

    /// Reads an account record (zero balance/nonce if absent).
    pub fn account(&self, addr: &Address) -> Account {
        self.raw_get(&account_key(addr))
            .and_then(|bytes| decode_all::<Account>(bytes).ok())
            .unwrap_or_default()
    }

    /// The account's balance.
    pub fn balance(&self, addr: &Address) -> Amount {
        self.account(addr).balance
    }

    /// The account's nonce.
    pub fn nonce(&self, addr: &Address) -> u64 {
        self.account(addr).nonce
    }

    fn put_account(&mut self, addr: &Address, acct: Account) {
        if acct == Account::default() {
            self.raw_set(account_key(addr), None);
        } else {
            self.raw_set(account_key(addr), Some(acct.encoded()));
        }
    }

    /// Adds `value` to the account's balance.
    pub fn credit(&mut self, addr: &Address, value: Amount) {
        let mut acct = self.account(addr);
        acct.balance = acct.balance.saturating_add(value);
        self.put_account(addr, acct);
    }

    /// Subtracts `value` from the account's balance.
    ///
    /// # Errors
    ///
    /// [`StateError::InsufficientBalance`] if the balance is too small; the
    /// state is unchanged.
    pub fn debit(&mut self, addr: &Address, value: Amount) -> Result<(), StateError> {
        let mut acct = self.account(addr);
        if acct.balance < value {
            return Err(StateError::InsufficientBalance {
                have: u128::from(acct.balance),
                need: u128::from(value),
            });
        }
        acct.balance -= value;
        self.put_account(addr, acct);
        Ok(())
    }

    /// Moves value between accounts atomically.
    ///
    /// # Errors
    ///
    /// [`StateError::InsufficientBalance`] if `from` cannot cover `value`.
    pub fn transfer(
        &mut self,
        from: &Address,
        to: &Address,
        value: Amount,
    ) -> Result<(), StateError> {
        self.debit(from, value)?;
        self.credit(to, value);
        Ok(())
    }

    /// Increments the account nonce, returning the pre-increment value.
    pub fn bump_nonce(&mut self, addr: &Address) -> u64 {
        let mut acct = self.account(addr);
        let old = acct.nonce;
        acct.nonce += 1;
        self.put_account(addr, acct);
        old
    }

    /// The contract code stored at `addr`, if any.
    pub fn code(&self, addr: &Address) -> Option<&[u8]> {
        self.raw_get(&code_key(addr))
    }

    /// Installs contract code at `addr`.
    pub fn set_code(&mut self, addr: &Address, code: Vec<u8>) {
        self.raw_set(code_key(addr), Some(code));
    }

    /// Reads a contract storage slot.
    pub fn storage(&self, addr: &Address, slot: &Hash256) -> Option<&[u8]> {
        self.raw_get(&storage_key(addr, slot))
    }

    /// Writes (or clears, with `None`) a contract storage slot.
    pub fn set_storage(&mut self, addr: &Address, slot: &Hash256, value: Option<Vec<u8>>) {
        self.raw_set(storage_key(addr, slot), value);
    }

    /// Marks the current journal position; pass to [`AccountDb::rollback`]
    /// to revert everything after it (failed-transaction semantics).
    pub fn snapshot(&self) -> usize {
        self.journal.len()
    }

    /// Reverts all mutations made since `snapshot`.
    pub fn rollback(&mut self, snapshot: usize) {
        while self.journal.len() > snapshot {
            let (key, old) = self.journal.pop().expect("journal longer than snapshot");
            if let Some(overlay) = &mut self.overlay {
                // Inside a batch the journal records overlay-visible old
                // values, so restoring is a staged write. Re-staging a value
                // equal to the trie's own is harmless: the commit-time merge
                // is content-addressed, so the root is unchanged by it.
                overlay.insert(key, old);
                continue;
            }
            match old {
                Some(v) => {
                    self.map.insert(key, v);
                }
                None => {
                    self.map.remove(&key);
                }
            }
        }
    }

    /// Extracts the journal since `snapshot` as a block-level [`AccountUndo`]
    /// and clears it from the live journal (the block is now "applied").
    pub fn take_undo(&mut self, snapshot: usize) -> AccountUndo {
        AccountUndo {
            entries: self.journal.split_off(snapshot),
        }
    }

    /// Applies a block-level undo record, reversing an applied block.
    pub fn apply_undo(&mut self, undo: AccountUndo) {
        for (key, old) in undo.entries.into_iter().rev() {
            match old {
                Some(v) => {
                    self.map.insert(key, v);
                }
                None => {
                    self.map.remove(&key);
                }
            }
        }
    }

    /// Drops journal history (e.g. after finality): saves memory, forfeits
    /// rollback past this point.
    pub fn clear_journal(&mut self) {
        self.journal.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(i: u64) -> Address {
        Address::from_index(i)
    }

    #[test]
    fn credit_debit_transfer() {
        let mut db = AccountDb::new();
        db.credit(&addr(1), 100);
        assert_eq!(db.balance(&addr(1)), 100);
        db.transfer(&addr(1), &addr(2), 40).unwrap();
        assert_eq!(db.balance(&addr(1)), 60);
        assert_eq!(db.balance(&addr(2)), 40);
        assert!(matches!(
            db.debit(&addr(2), 41),
            Err(StateError::InsufficientBalance { have: 40, need: 41 })
        ));
        assert_eq!(
            db.balance(&addr(2)),
            40,
            "failed debit must not change state"
        );
    }

    #[test]
    fn nonce_bumps() {
        let mut db = AccountDb::new();
        assert_eq!(db.nonce(&addr(1)), 0);
        assert_eq!(db.bump_nonce(&addr(1)), 0);
        assert_eq!(db.bump_nonce(&addr(1)), 1);
        assert_eq!(db.nonce(&addr(1)), 2);
    }

    #[test]
    fn root_reflects_content_and_reverts_cleanly() {
        let mut db = AccountDb::new();
        let empty_root = db.root();
        db.credit(&addr(1), 10);
        let r1 = db.root();
        assert_ne!(r1, empty_root);

        let snap = db.snapshot();
        db.credit(&addr(2), 20);
        db.set_storage(&addr(1), &dcs_crypto::sha256(b"slot"), Some(vec![1]));
        assert_ne!(db.root(), r1);
        db.rollback(snap);
        assert_eq!(db.root(), r1);
        assert_eq!(db.balance(&addr(2)), 0);
    }

    #[test]
    fn zero_account_is_pruned_from_map() {
        let mut db = AccountDb::new();
        db.credit(&addr(1), 10);
        db.debit(&addr(1), 10).unwrap();
        // Balance and nonce both zero → record removed → root returns to empty.
        assert_eq!(db.root(), Hash256::ZERO);
    }

    #[test]
    fn code_and_storage() {
        let mut db = AccountDb::new();
        let c = addr(7);
        db.set_code(&c, vec![0xde, 0xad]);
        assert_eq!(db.code(&c), Some(&[0xde, 0xad][..]));
        let slot = dcs_crypto::sha256(b"greeting");
        db.set_storage(&c, &slot, Some(b"hello".to_vec()));
        assert_eq!(db.storage(&c, &slot), Some(&b"hello"[..]));
        db.set_storage(&c, &slot, None);
        assert_eq!(db.storage(&c, &slot), None);
    }

    #[test]
    fn block_undo_round_trip() {
        let mut db = AccountDb::new();
        db.credit(&addr(1), 100);
        db.clear_journal();
        let before = db.root();

        let snap = db.snapshot();
        db.transfer(&addr(1), &addr(2), 30).unwrap();
        db.bump_nonce(&addr(1));
        let undo = db.take_undo(snap);
        let after = db.root();
        assert_ne!(before, after);

        db.apply_undo(undo);
        assert_eq!(db.root(), before);
        assert_eq!(db.balance(&addr(1)), 100);
        assert_eq!(db.nonce(&addr(1)), 0);
    }

    #[test]
    fn nested_snapshots() {
        let mut db = AccountDb::new();
        db.credit(&addr(1), 100);
        let outer = db.snapshot();
        db.debit(&addr(1), 10).unwrap();
        let inner = db.snapshot();
        db.debit(&addr(1), 20).unwrap();
        db.rollback(inner); // inner tx failed
        assert_eq!(db.balance(&addr(1)), 90);
        db.rollback(outer); // whole block rolled back
        assert_eq!(db.balance(&addr(1)), 100);
    }

    #[test]
    fn account_proof_verifies_against_root() {
        let mut db = AccountDb::new();
        for i in 0..20 {
            db.credit(&addr(i), 10 * (i + 1));
        }
        let root = db.root();
        let proof = db.prove_account(&addr(3)).expect("account exists");
        assert!(proof.verify(&root));
        let acct = decode_all::<Account>(proof.value()).unwrap();
        assert_eq!(acct.balance, 40);
        assert!(db.prove_account(&addr(999)).is_none());
    }

    #[test]
    fn saturating_credit_does_not_wrap() {
        let mut db = AccountDb::new();
        db.credit(&addr(1), Amount::MAX);
        db.credit(&addr(1), 5);
        assert_eq!(db.balance(&addr(1)), Amount::MAX);
    }

    fn seeded(n: u64) -> AccountDb {
        let mut db = AccountDb::new();
        for i in 0..n {
            db.credit(&addr(i), 100 * (i + 1));
        }
        db.clear_journal();
        db
    }

    #[test]
    fn batched_application_matches_serial_root() {
        let mut serial = seeded(10);
        let mut batched = seeded(10);

        batched.begin_batch();
        for db in [&mut serial, &mut batched] {
            db.transfer(&addr(1), &addr(2), 30).unwrap();
            db.bump_nonce(&addr(1));
            db.transfer(&addr(2), &addr(3), 5).unwrap();
            db.set_code(&addr(7), vec![1, 2, 3]);
            db.set_storage(&addr(7), &dcs_crypto::sha256(b"s"), Some(vec![9]));
            // Reads mid-batch must see staged writes.
            assert_eq!(db.balance(&addr(2)), 100 * 3 + 30 - 5);
            // Prune an account to zero (a staged remove).
            let b = db.balance(&addr(4));
            db.debit(&addr(4), b).unwrap();
        }
        batched.commit_batch();

        assert_eq!(batched.root(), serial.root());
        assert_eq!(batched.entry_count(), serial.entry_count());
    }

    #[test]
    fn mid_batch_rollback_matches_serial_failed_tx() {
        let mut serial = seeded(5);
        let mut batched = seeded(5);

        batched.begin_batch();
        for db in [&mut serial, &mut batched] {
            db.transfer(&addr(1), &addr(2), 10).unwrap(); // good tx
            let snap = db.snapshot();
            db.transfer(&addr(2), &addr(3), 50).unwrap(); // tx that will fail…
            db.bump_nonce(&addr(2));
            db.rollback(snap); // …and be reverted
            db.transfer(&addr(3), &addr(4), 7).unwrap(); // good tx after revert
        }
        batched.commit_batch();

        assert_eq!(batched.root(), serial.root());
        assert_eq!(batched.balance(&addr(2)), serial.balance(&addr(2)));
        assert_eq!(batched.nonce(&addr(2)), 0);
    }

    #[test]
    fn rolled_back_batch_abort_restores_pre_batch_root() {
        let mut db = seeded(5);
        let before = db.root();
        let snap = db.snapshot();
        db.begin_batch();
        db.transfer(&addr(1), &addr(2), 10).unwrap();
        db.bump_nonce(&addr(3));
        db.rollback(snap);
        db.abort_batch();
        assert_eq!(db.root(), before);
        assert!(!db.is_batching());
    }

    #[test]
    fn batch_undo_round_trip_reverses_committed_block() {
        let mut db = seeded(5);
        let before = db.root();
        let snap = db.snapshot();
        db.begin_batch();
        db.transfer(&addr(1), &addr(2), 30).unwrap();
        db.bump_nonce(&addr(1));
        db.commit_batch();
        let undo = db.take_undo(snap);
        assert_ne!(db.root(), before);
        db.apply_undo(undo);
        assert_eq!(db.root(), before);
    }
}
