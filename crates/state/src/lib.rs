//! The data layer (§4.5 of the paper): authenticated on-chain state.
//!
//! * [`MerkleMap`] — a canonical binary Merkle trie keyed by hashed keys (the
//!   Merkle-Patricia-style structure the paper's §5.4 calls for), producing a
//!   state root and `O(log n)` inclusion proofs so "the current state of the
//!   blockchain \[is\] completely verifiable" (§2.7).
//! * [`UtxoSet`] — the generation-1.0 unspent-output set with full undo
//!   support for reorgs.
//! * [`AccountDb`] — the generation-2.0/3.0 account database (balances,
//!   nonces, contract code and storage) layered over the Merkle map, also
//!   with undo logs.
//!
//! # Examples
//!
//! ```
//! use dcs_state::MerkleMap;
//!
//! let mut map = MerkleMap::new();
//! map.insert(b"alice".to_vec(), b"100".to_vec());
//! let root = map.root();
//! let proof = map.prove(b"alice").unwrap();
//! assert!(proof.verify(&root));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod account;
pub mod merkle_map;
pub mod utxo;

pub use account::{Account, AccountDb, AccountUndo};
pub use merkle_map::{MapProof, MerkleMap};
pub use utxo::{OutPoint, UtxoError, UtxoSet, UtxoUndo};

/// Errors from state-transition application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// A UTXO rule was violated.
    Utxo(UtxoError),
    /// An account had insufficient balance for a transfer or fee.
    InsufficientBalance {
        /// Balance available.
        have: u128,
        /// Balance required.
        need: u128,
    },
    /// The transaction nonce did not match the account nonce.
    BadNonce {
        /// Nonce expected by the account.
        expected: u64,
        /// Nonce carried by the transaction.
        got: u64,
    },
    /// A signature was missing or invalid while verification is enabled.
    BadWitness(String),
}

impl core::fmt::Display for StateError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            StateError::Utxo(e) => write!(f, "utxo error: {e}"),
            StateError::InsufficientBalance { have, need } => {
                write!(f, "insufficient balance: have {have}, need {need}")
            }
            StateError::BadNonce { expected, got } => {
                write!(f, "bad nonce: expected {expected}, got {got}")
            }
            StateError::BadWitness(msg) => write!(f, "bad witness: {msg}"),
        }
    }
}

impl std::error::Error for StateError {}

impl From<UtxoError> for StateError {
    fn from(e: UtxoError) -> Self {
        StateError::Utxo(e)
    }
}
