//! Property-based tests for the data layer: the Merkle map against a
//! `HashMap` reference model (same contents ⇒ same answers, same root
//! regardless of history), UTXO value conservation, and journal rollback
//! exactness.

use dcs_crypto::{Address, Hash256};
use dcs_primitives::{Transaction, TxIn, TxOut, UtxoTx};
use dcs_state::{AccountDb, MerkleMap, UtxoSet};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u8, u16),
    Remove(u8),
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (any::<u8>(), any::<u16>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
        any::<u8>().prop_map(MapOp::Remove),
    ]
}

proptest! {
    #[test]
    fn merkle_map_matches_hashmap_model(ops in proptest::collection::vec(map_op(), 0..200)) {
        let mut map = MerkleMap::new();
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for op in &ops {
            match op {
                MapOp::Insert(k, v) => {
                    let key = vec![*k];
                    let value = v.to_le_bytes().to_vec();
                    prop_assert_eq!(map.insert(key.clone(), value.clone()), model.insert(key, value));
                }
                MapOp::Remove(k) => {
                    let key = vec![*k];
                    prop_assert_eq!(map.remove(&key), model.remove(&key));
                }
            }
        }
        prop_assert_eq!(map.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(map.get(k), Some(v.as_slice()));
        }
        // Root is a pure function of content: rebuild from the model in
        // (arbitrary) iteration order and compare.
        let rebuilt: MerkleMap = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(map.root(), rebuilt.root());
        // All proofs verify.
        for k in model.keys() {
            let proof = map.prove(k).unwrap();
            prop_assert!(proof.verify(&map.root()));
        }
    }

    #[test]
    fn utxo_transfers_conserve_value(splits in proptest::collection::vec(1u64..100, 1..20)) {
        let mut set = UtxoSet::new();
        let owner = Address::from_index(1);
        let total: u64 = 1_000_000;
        let mut op = set.mint(owner, total);
        // Chain of transfers, each splitting off `s` and keeping the change.
        let mut remaining = total;
        for (i, s) in splits.iter().enumerate() {
            let spend = Transaction::Utxo(UtxoTx {
                inputs: vec![TxIn { prev_tx: op.tx, index: op.index, auth: None }],
                outputs: vec![
                    TxOut { value: *s, recipient: Address::from_index(100 + i as u64) },
                    TxOut { value: remaining - s, recipient: owner },
                ],
            });
            let (fee, _) = set.apply(&spend).unwrap();
            prop_assert_eq!(fee, 0);
            remaining -= s;
            op = dcs_state::OutPoint { tx: spend.id(), index: 1 };
        }
        // Total value across all owners unchanged.
        let sum: u64 = (0..140u64)
            .map(|i| set.balance_of(&Address::from_index(i)))
            .sum();
        prop_assert_eq!(sum, total);
    }

    #[test]
    fn account_db_rollback_is_exact(
        credits in proptest::collection::vec((0u64..20, 1u64..1_000), 1..40),
        transfers in proptest::collection::vec((0u64..20, 0u64..20, 1u64..100), 0..40),
    ) {
        let mut db = AccountDb::new();
        for (who, amount) in &credits {
            db.credit(&Address::from_index(*who), *amount);
        }
        db.clear_journal();
        let root_before = db.root();
        let balances_before: Vec<u64> =
            (0..20u64).map(|i| db.balance(&Address::from_index(i))).collect();

        let snap = db.snapshot();
        for (from, to, amount) in &transfers {
            // Failures are fine; they must not corrupt the journal.
            let _ = db.transfer(&Address::from_index(*from), &Address::from_index(*to), *amount);
            db.bump_nonce(&Address::from_index(*from));
        }
        db.rollback(snap);
        prop_assert_eq!(db.root(), root_before);
        for (i, expected) in balances_before.iter().enumerate() {
            prop_assert_eq!(db.balance(&Address::from_index(i as u64)), *expected);
            prop_assert_eq!(db.nonce(&Address::from_index(i as u64)), 0);
        }
    }

    #[test]
    fn account_transfers_conserve_total(
        transfers in proptest::collection::vec((0u64..10, 0u64..10, 1u64..500), 0..60),
    ) {
        let mut db = AccountDb::new();
        for i in 0..10u64 {
            db.credit(&Address::from_index(i), 10_000);
        }
        for (from, to, amount) in &transfers {
            let _ = db.transfer(&Address::from_index(*from), &Address::from_index(*to), *amount);
        }
        let total: u64 = (0..10u64).map(|i| db.balance(&Address::from_index(i))).sum();
        prop_assert_eq!(total, 100_000);
    }

    #[test]
    fn storage_slots_are_independent(
        writes in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..40),
    ) {
        let mut db = AccountDb::new();
        let contract = Address::from_index(7);
        let mut model: HashMap<u8, u8> = HashMap::new();
        for (slot, value) in &writes {
            let key = dcs_crypto::sha256(&[*slot]);
            db.set_storage(&contract, &key, Some(vec![*value]));
            model.insert(*slot, *value);
        }
        for (slot, value) in &model {
            let key = dcs_crypto::sha256(&[*slot]);
            prop_assert_eq!(db.storage(&contract, &key), Some(&[*value][..]));
        }
        // A different contract's storage is untouched.
        let other = Address::from_index(8);
        let some_key = dcs_crypto::sha256(&[writes[0].0]);
        prop_assert_eq!(db.storage(&other, &some_key), None);
        let _ = Hash256::ZERO;
    }

    // --- Batched ≡ serial application -----------------------------------

    /// `MerkleMap::write_batch` must be indistinguishable from replaying the
    /// same entries as serial `insert`/`remove` calls — same root, same
    /// length, same contents — on any starting map, including batches that
    /// write the same key several times (last write wins).
    #[test]
    fn merkle_map_write_batch_matches_serial(
        base in proptest::collection::vec((any::<u8>(), any::<u16>()), 0..60),
        batch in proptest::collection::vec((any::<u8>(), proptest::option::of(any::<u16>())), 0..60),
    ) {
        let mut serial = MerkleMap::new();
        for (k, v) in &base {
            serial.insert(vec![*k], v.to_le_bytes().to_vec());
        }
        let mut batched = serial.clone();

        for (k, v) in &batch {
            match v {
                Some(v) => { serial.insert(vec![*k], v.to_le_bytes().to_vec()); }
                None => { serial.remove(&[*k]); }
            }
        }
        batched.write_batch(
            batch
                .iter()
                .map(|(k, v)| (vec![*k], v.map(|v| v.to_le_bytes().to_vec())))
                .collect(),
        );

        prop_assert_eq!(batched.root(), serial.root());
        prop_assert_eq!(batched.len(), serial.len());
        for k in 0..=u8::MAX {
            prop_assert_eq!(batched.get(&[k]), serial.get(&[k]));
        }
    }

    /// The `AccountDb` overlay (begin/commit batch) must commute with
    /// applying the same operations directly, including conflicting writes
    /// to one account inside a single batch.
    #[test]
    fn account_overlay_batch_matches_serial(
        ops in proptest::collection::vec((0u64..8, 0u64..8, 1u64..200), 0..60),
    ) {
        let mut serial = AccountDb::new();
        let mut batched = AccountDb::new();
        for db in [&mut serial, &mut batched] {
            for i in 0..8u64 {
                db.credit(&Address::from_index(i), 1_000);
            }
            db.clear_journal();
        }

        batched.begin_batch();
        for (from, to, amount) in &ops {
            let (from, to) = (Address::from_index(*from), Address::from_index(*to));
            let a = serial.transfer(&from, &to, *amount);
            let b = batched.transfer(&from, &to, *amount);
            prop_assert_eq!(a.is_ok(), b.is_ok());
            serial.bump_nonce(&from);
            batched.bump_nonce(&from);
        }
        batched.commit_batch();

        prop_assert_eq!(batched.root(), serial.root());
        for i in 0..8u64 {
            let addr = Address::from_index(i);
            prop_assert_eq!(batched.balance(&addr), serial.balance(&addr));
            prop_assert_eq!(batched.nonce(&addr), serial.nonce(&addr));
        }
    }

    /// `UtxoSet::apply_batch` must agree with the serial `apply` loop on
    /// arbitrary spend sequences: same fees, same commitment when every
    /// transaction is valid, and the same first error (with the set left
    /// untouched) when one is not — including batches that double-spend an
    /// output or chain a spend onto an output created earlier in the batch.
    #[test]
    fn utxo_apply_batch_matches_serial(
        picks in proptest::collection::vec((0usize..24, 1u64..100, any::<bool>()), 1..24),
    ) {
        let mut base = UtxoSet::new();
        // Candidate outpoints: minted coins plus (as txs are generated)
        // outputs created within the batch itself, so some sequences spend
        // mid-batch outputs and some double-spend.
        let mut candidates: Vec<(dcs_state::OutPoint, u64)> =
            (0..8u64).map(|i| (base.mint(Address::from_index(i), 500), 500)).collect();

        let mut txs = Vec::new();
        for (pick, value, split) in &picks {
            let (op, available) = candidates[pick % candidates.len()];
            let spend = *value.min(&available);
            let mut outputs = vec![TxOut {
                value: spend,
                recipient: Address::from_index(200),
            }];
            if *split && available > spend {
                outputs.push(TxOut {
                    value: available - spend,
                    recipient: Address::from_index(201),
                });
            }
            let tx = Transaction::Utxo(UtxoTx {
                inputs: vec![TxIn { prev_tx: op.tx, index: op.index, auth: None }],
                outputs: outputs.clone(),
            });
            for (i, out) in outputs.iter().enumerate() {
                candidates.push((
                    dcs_state::OutPoint { tx: tx.id(), index: i as u32 },
                    out.value,
                ));
            }
            txs.push(tx);
        }
        let ids: Vec<Hash256> = txs.iter().map(Transaction::id).collect();

        let mut serial = base.clone();
        let mut serial_result = Ok(Vec::new());
        for tx in &txs {
            match serial.apply(tx) {
                Ok((fee, _)) => serial_result.as_mut().unwrap().push(fee),
                Err(e) => {
                    serial_result = Err(e);
                    break;
                }
            }
        }

        let mut batched = base.clone();
        match batched.apply_batch(&txs, &ids, false) {
            Ok(results) => {
                let fees: Vec<u64> = results.iter().map(|(fee, _)| *fee).collect();
                prop_assert_eq!(Ok(fees), serial_result);
                prop_assert_eq!(batched.commitment(), serial.commitment());
            }
            Err(e) => {
                prop_assert_eq!(Err(e), serial_result);
                // A failed batch leaves the set untouched.
                prop_assert_eq!(batched.commitment(), base.commitment());
            }
        }
    }
}
