//! Property-based tests for the data layer: the Merkle map against a
//! `HashMap` reference model (same contents ⇒ same answers, same root
//! regardless of history), UTXO value conservation, and journal rollback
//! exactness.

use dcs_crypto::{Address, Hash256};
use dcs_primitives::{Transaction, TxIn, TxOut, UtxoTx};
use dcs_state::{AccountDb, MerkleMap, UtxoSet};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum MapOp {
    Insert(u8, u16),
    Remove(u8),
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (any::<u8>(), any::<u16>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
        any::<u8>().prop_map(MapOp::Remove),
    ]
}

proptest! {
    #[test]
    fn merkle_map_matches_hashmap_model(ops in proptest::collection::vec(map_op(), 0..200)) {
        let mut map = MerkleMap::new();
        let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for op in &ops {
            match op {
                MapOp::Insert(k, v) => {
                    let key = vec![*k];
                    let value = v.to_le_bytes().to_vec();
                    prop_assert_eq!(map.insert(key.clone(), value.clone()), model.insert(key, value));
                }
                MapOp::Remove(k) => {
                    let key = vec![*k];
                    prop_assert_eq!(map.remove(&key), model.remove(&key));
                }
            }
        }
        prop_assert_eq!(map.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(map.get(k), Some(v.as_slice()));
        }
        // Root is a pure function of content: rebuild from the model in
        // (arbitrary) iteration order and compare.
        let rebuilt: MerkleMap = model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(map.root(), rebuilt.root());
        // All proofs verify.
        for k in model.keys() {
            let proof = map.prove(k).unwrap();
            prop_assert!(proof.verify(&map.root()));
        }
    }

    #[test]
    fn utxo_transfers_conserve_value(splits in proptest::collection::vec(1u64..100, 1..20)) {
        let mut set = UtxoSet::new();
        let owner = Address::from_index(1);
        let total: u64 = 1_000_000;
        let mut op = set.mint(owner, total);
        // Chain of transfers, each splitting off `s` and keeping the change.
        let mut remaining = total;
        for (i, s) in splits.iter().enumerate() {
            let spend = Transaction::Utxo(UtxoTx {
                inputs: vec![TxIn { prev_tx: op.tx, index: op.index, auth: None }],
                outputs: vec![
                    TxOut { value: *s, recipient: Address::from_index(100 + i as u64) },
                    TxOut { value: remaining - s, recipient: owner },
                ],
            });
            let (fee, _) = set.apply(&spend).unwrap();
            prop_assert_eq!(fee, 0);
            remaining -= s;
            op = dcs_state::OutPoint { tx: spend.id(), index: 1 };
        }
        // Total value across all owners unchanged.
        let sum: u64 = (0..140u64)
            .map(|i| set.balance_of(&Address::from_index(i)))
            .sum();
        prop_assert_eq!(sum, total);
    }

    #[test]
    fn account_db_rollback_is_exact(
        credits in proptest::collection::vec((0u64..20, 1u64..1_000), 1..40),
        transfers in proptest::collection::vec((0u64..20, 0u64..20, 1u64..100), 0..40),
    ) {
        let mut db = AccountDb::new();
        for (who, amount) in &credits {
            db.credit(&Address::from_index(*who), *amount);
        }
        db.clear_journal();
        let root_before = db.root();
        let balances_before: Vec<u64> =
            (0..20u64).map(|i| db.balance(&Address::from_index(i))).collect();

        let snap = db.snapshot();
        for (from, to, amount) in &transfers {
            // Failures are fine; they must not corrupt the journal.
            let _ = db.transfer(&Address::from_index(*from), &Address::from_index(*to), *amount);
            db.bump_nonce(&Address::from_index(*from));
        }
        db.rollback(snap);
        prop_assert_eq!(db.root(), root_before);
        for (i, expected) in balances_before.iter().enumerate() {
            prop_assert_eq!(db.balance(&Address::from_index(i as u64)), *expected);
            prop_assert_eq!(db.nonce(&Address::from_index(i as u64)), 0);
        }
    }

    #[test]
    fn account_transfers_conserve_total(
        transfers in proptest::collection::vec((0u64..10, 0u64..10, 1u64..500), 0..60),
    ) {
        let mut db = AccountDb::new();
        for i in 0..10u64 {
            db.credit(&Address::from_index(i), 10_000);
        }
        for (from, to, amount) in &transfers {
            let _ = db.transfer(&Address::from_index(*from), &Address::from_index(*to), *amount);
        }
        let total: u64 = (0..10u64).map(|i| db.balance(&Address::from_index(i))).sum();
        prop_assert_eq!(total, 100_000);
    }

    #[test]
    fn storage_slots_are_independent(
        writes in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..40),
    ) {
        let mut db = AccountDb::new();
        let contract = Address::from_index(7);
        let mut model: HashMap<u8, u8> = HashMap::new();
        for (slot, value) in &writes {
            let key = dcs_crypto::sha256(&[*slot]);
            db.set_storage(&contract, &key, Some(vec![*value]));
            model.insert(*slot, *value);
        }
        for (slot, value) in &model {
            let key = dcs_crypto::sha256(&[*slot]);
            prop_assert_eq!(db.storage(&contract, &key), Some(&[*value][..]));
        }
        // A different contract's storage is untouched.
        let other = Address::from_index(8);
        let some_key = dcs_crypto::sha256(&[writes[0].0]);
        prop_assert_eq!(db.storage(&other, &some_key), None);
        let _ = Hash256::ZERO;
    }
}
