//! Deterministic random number generation: xoshiro256** seeded through
//! SplitMix64, plus the distributions the simulator needs (uniform,
//! exponential, log-normal, weighted choice, shuffling).
//!
//! Implemented from scratch so the entire platform depends on a single,
//! auditable randomness source. `rand` remains available for workload
//! generators, but the simulation core uses only this generator to keep the
//! determinism contract narrow.

/// A deterministic pseudo-random generator (xoshiro256**).
///
/// # Examples
///
/// ```
/// use dcs_sim::Rng;
///
/// let mut a = Rng::seed_from(42);
/// let mut b = Rng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Seeds the generator from a single `u64` (expanded via SplitMix64).
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derives an independent child generator; used to give each simulated
    /// node its own stream without cross-contamination.
    pub fn fork(&mut self, label: u64) -> Rng {
        Rng::seed_from(self.next_u64() ^ label.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Derives an independent stream identified by `(domain, index)` from a
    /// root seed, **without** consuming state from any other generator.
    ///
    /// This is the splitting scheme the sharded engine uses for per-actor
    /// streams: because the derivation is a pure function of
    /// `(root, domain, index)`, actor `index` draws the same sequence no
    /// matter which shard it lands on or how many shards exist — unlike
    /// [`Rng::fork`], whose output depends on the parent's draw history.
    /// `domain` separates independent uses of the same index (e.g. a node's
    /// protocol stream vs. its link-sampling stream).
    pub fn stream(root: u64, domain: u64, index: u64) -> Rng {
        // Each input is avalanched through SplitMix64 before combining, so
        // adjacent (domain, index) pairs land in unrelated states.
        let mut a = root;
        let mut b = domain.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut c = index.wrapping_add(0x6a09_e667_f3bc_c909);
        let seed = splitmix64(&mut a) ^ splitmix64(&mut b) ^ splitmix64(&mut c);
        Rng::seed_from(seed)
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        // Lemire's unbiased multiply-shift rejection method.
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range requires lo < hi ({lo} >= {hi})");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponential variate with the given mean (used for Poisson block
    /// arrivals — the standard analytical model of proof-of-work mining).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(
            mean > 0.0 && mean.is_finite(),
            "exp() mean must be positive: {mean}"
        );
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Standard normal variate (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        let u1 = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
    }

    /// Log-normal variate parameterized by the *median* and the shape sigma.
    /// Used for long-tailed network latencies.
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        median * (sigma * self.normal()).exp()
    }

    /// Picks an index in `[0, weights.len())` with probability proportional
    /// to `weights[i]`. This is the stake lottery for proof-of-stake.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[u64]) -> usize {
        let total: u128 = weights.iter().map(|&w| u128::from(w)).sum();
        assert!(total > 0, "weighted_index requires a positive total weight");
        let mut target = (u128::from(self.next_u64()) * total) >> 64;
        for (i, &w) in weights.iter().enumerate() {
            let w = u128::from(w);
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)`; used to wire random
    /// overlay topologies. Returns fewer than `k` if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut all: Vec<usize> = (0..n).collect();
        self.shuffle(&mut all);
        all.truncate(k.min(n));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::seed_from(7);
        let mut b = Rng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut root = Rng::seed_from(1);
        let mut x = root.fork(0);
        let mut y = root.fork(1);
        let xs: Vec<u64> = (0..8).map(|_| x.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| y.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn stream_is_pure_and_separates_domains_and_indices() {
        let a1: Vec<u64> = {
            let mut r = Rng::stream(42, 1, 7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut r = Rng::stream(42, 1, 7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a1, a2, "pure function of (root, domain, index)");
        let b: Vec<u64> = {
            let mut r = Rng::stream(42, 2, 7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng::stream(42, 1, 8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let d: Vec<u64> = {
            let mut r = Rng::stream(43, 1, 7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a1, b, "domain separation");
        assert_ne!(a1, c, "index separation");
        assert_ne!(a1, d, "root separation");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng::seed_from(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
    }

    #[test]
    fn f64_bounds_and_mean() {
        let mut rng = Rng::seed_from(5);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn exp_has_requested_mean() {
        let mut rng = Rng::seed_from(11);
        let n = 50_000;
        let mean_target = 600.0;
        let mean: f64 = (0..n).map(|_| rng.exp(mean_target)).sum::<f64>() / n as f64;
        assert!(
            (mean - mean_target).abs() / mean_target < 0.03,
            "mean {mean}"
        );
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Rng::seed_from(13);
        let weights = [1u64, 0, 3];
        let mut counts = [0u64; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from(17);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Rng::seed_from(19);
        let s = rng.sample_indices(20, 8);
        assert_eq!(s.len(), 8);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 8);
        assert_eq!(rng.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn normal_mean_and_variance() {
        let mut rng = Rng::seed_from(23);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_panics() {
        Rng::seed_from(0).below(0);
    }
}
