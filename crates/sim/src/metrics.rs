//! Statistics collectors for experiments: summary statistics, log-bucketed
//! histograms, and the decentralization measures used by the DCS experiments
//! (Gini coefficient and Nakamoto coefficient over block-producer power).

/// Online summary of a stream of `f64` samples, retaining the samples for
/// exact percentile queries (experiments are small enough that this is fine).
///
/// # Examples
///
/// ```
/// use dcs_sim::Summary;
///
/// let mut s = Summary::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     s.record(v);
/// }
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Summary {
    samples: Vec<f64>,
    sorted: bool,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Sample standard deviation; 0 for fewer than two samples.
    pub fn stddev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.samples.iter().map(|x| (x - m).powi(2)).sum::<f64>()
            / (self.samples.len() - 1) as f64;
        var.sqrt()
    }

    /// Smallest sample; 0 when empty.
    pub fn min(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest sample; 0 when empty.
    pub fn max(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Exact percentile `p` in `[0, 100]`; 0 when empty.
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            // total_cmp gives NaN a defined order (after +inf), so a stray
            // NaN sample skews a tail percentile instead of panicking.
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        // Linear interpolation between closest ranks.
        let pos = p.clamp(0.0, 100.0) / 100.0 * (self.samples.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac
    }

    /// Convenience: the median.
    pub fn median(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Convenience: the 50th percentile (alias of [`Summary::median`]).
    pub fn p50(&mut self) -> f64 {
        self.percentile(50.0)
    }

    /// Convenience: the 99th percentile — the tail the macro benchmark
    /// reports alongside the mean (BENCH schema v2).
    pub fn p99(&mut self) -> f64 {
        self.percentile(99.0)
    }

    /// Folds another summary into this one, equivalent to having recorded
    /// all of `other`'s samples here. Lets per-node collectors be merged
    /// into a network-wide distribution without re-recording.
    pub fn merge(&mut self, other: &Summary) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

/// A histogram with logarithmic buckets (powers of two), suitable for
/// latency distributions spanning microseconds to minutes.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records an integer sample (e.g. microseconds).
    pub fn record(&mut self, v: u64) {
        let b = 64 - v.leading_zeros() as usize; // bucket = bit length
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another histogram into this one, equivalent to having recorded
    /// all of `other`'s samples here (buckets add elementwise).
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, n) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += n;
        }
        self.count += other.count;
    }

    /// Convenience: upper bound of the bucket holding the median sample.
    pub fn p50(&self) -> u64 {
        self.quantile_upper_bound(0.50)
    }

    /// Convenience: upper bound of the bucket holding the 99th-percentile
    /// sample.
    pub fn p99(&self) -> u64 {
        self.quantile_upper_bound(0.99)
    }

    /// Approximate quantile: upper bound of the bucket containing the
    /// `q`-quantile sample (q in `[0,1]`).
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                return if b == 0 { 0 } else { (1u64 << b) - 1 };
            }
        }
        u64::MAX
    }
}

/// Gini coefficient of a distribution of non-negative "power" values
/// (0 = perfectly equal, →1 = concentrated). The paper's decentralization
/// axis is quantified with this plus [`nakamoto_coefficient`].
///
/// Returns 0 for empty input or all-zero weights.
pub fn gini(values: &[u64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v: Vec<u64> = values.to_vec();
    v.sort_unstable();
    let n = v.len() as f64;
    let total: f64 = v.iter().map(|&x| x as f64).sum();
    if total == 0.0 {
        return 0.0;
    }
    let weighted: f64 = v
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

/// Nakamoto coefficient: the minimum number of parties whose combined power
/// exceeds half the total — the size of the smallest coalition that can
/// censor or rewrite the chain (cf. the paper's 51% attack discussion, §2.4).
///
/// Returns 0 for empty input or all-zero weights.
pub fn nakamoto_coefficient(values: &[u64]) -> usize {
    let total: u128 = values.iter().map(|&v| u128::from(v)).sum();
    if total == 0 {
        return 0;
    }
    let mut v: Vec<u64> = values.to_vec();
    v.sort_unstable_by(|a, b| b.cmp(a));
    let mut acc: u128 = 0;
    for (i, &x) in v.iter().enumerate() {
        acc += u128::from(x);
        if acc * 2 > total {
            return i + 1;
        }
    }
    v.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.count(), 0);
        for v in [4.0, 1.0, 3.0, 2.0] {
            s.record(v);
        }
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.median(), 2.5);
        assert_eq!(s.percentile(100.0), 4.0);
        assert_eq!(s.percentile(0.0), 1.0);
    }

    #[test]
    fn summary_p50_p99_match_percentile() {
        let mut s = Summary::new();
        for v in 1..=100 {
            s.record(f64::from(v));
        }
        assert_eq!(s.p50(), s.percentile(50.0));
        assert_eq!(s.p99(), s.percentile(99.0));
        assert!(s.p99() > s.p50());
    }

    #[test]
    fn histogram_p50_p99_match_quantile_bounds() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.p50(), h.quantile_upper_bound(0.50));
        assert_eq!(h.p99(), h.quantile_upper_bound(0.99));
        assert!(h.p99() >= h.p50());
    }

    #[test]
    fn summary_stddev() {
        let mut s = Summary::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert!((s.stddev() - 2.138).abs() < 0.01, "{}", s.stddev());
    }

    #[test]
    fn summary_merge_equals_single_collector() {
        let xs = [4.0, 1.0, 3.0];
        let ys = [2.0, 9.0, 0.5, 6.0];
        let mut merged = Summary::new();
        let mut other = Summary::new();
        let mut single = Summary::new();
        for v in xs {
            merged.record(v);
            single.record(v);
        }
        for v in ys {
            other.record(v);
            single.record(v);
        }
        merged.merge(&other);
        assert_eq!(merged.count(), single.count());
        assert_eq!(merged.mean(), single.mean());
        assert_eq!(merged.min(), single.min());
        assert_eq!(merged.max(), single.max());
        for p in [0.0, 25.0, 50.0, 90.0, 100.0] {
            assert_eq!(merged.percentile(p), single.percentile(p), "p{p}");
        }
    }

    #[test]
    fn summary_merge_into_empty_and_of_empty() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        b.record(7.0);
        a.merge(&b); // into empty
        assert_eq!(a.count(), 1);
        assert_eq!(a.median(), 7.0);
        a.merge(&Summary::new()); // of empty
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn percentile_tolerates_nan_samples() {
        let mut s = Summary::new();
        s.record(1.0);
        s.record(f64::NAN);
        s.record(3.0);
        // NaN sorts last under total_cmp; lower percentiles stay finite.
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.median(), 3.0);
    }

    #[test]
    fn histogram_merge_equals_single_collector() {
        let mut merged = Histogram::new();
        let mut other = Histogram::new();
        let mut single = Histogram::new();
        for v in [0u64, 1, 5, 100] {
            merged.record(v);
            single.record(v);
        }
        for v in [3u64, 70_000, 9] {
            other.record(v);
            single.record(v);
        }
        merged.merge(&other);
        assert_eq!(merged.count(), single.count());
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(
                merged.quantile_upper_bound(q),
                single.quantile_upper_bound(q),
                "q{q}"
            );
        }
        // Merging a wider histogram into a narrower one grows buckets.
        let mut narrow = Histogram::new();
        narrow.record(1);
        let mut wide = Histogram::new();
        wide.record(1 << 40);
        narrow.merge(&wide);
        assert_eq!(narrow.count(), 2);
        assert_eq!(narrow.quantile_upper_bound(1.0), (1 << 41) - 1);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile_upper_bound(0.5);
        assert!((499..=1023).contains(&p50), "p50 bucket bound {p50}");
        assert_eq!(h.quantile_upper_bound(0.0), 0);
    }

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
        assert!(gini(&[5, 5, 5, 5]).abs() < 1e-12, "equal shares → 0");
        let concentrated = gini(&[0, 0, 0, 100]);
        assert!(
            concentrated > 0.74,
            "one holder → high gini, got {concentrated}"
        );
        let mid = gini(&[1, 2, 3, 4]);
        assert!(mid > 0.0 && mid < concentrated);
    }

    #[test]
    fn nakamoto_coefficient_cases() {
        assert_eq!(nakamoto_coefficient(&[]), 0);
        assert_eq!(nakamoto_coefficient(&[0, 0]), 0);
        // One party with 60% of power can attack alone.
        assert_eq!(nakamoto_coefficient(&[60, 20, 20]), 1);
        // Four equal parties: any three needed for majority.
        assert_eq!(nakamoto_coefficient(&[25, 25, 25, 25]), 3);
        // 51% exactly: one party suffices only above half.
        assert_eq!(nakamoto_coefficient(&[51, 49]), 1);
        assert_eq!(nakamoto_coefficient(&[50, 50]), 2);
    }
}
