//! Virtual time: [`SimTime`] instants and [`SimDuration`] spans, both with
//! microsecond resolution (sub-millisecond network latencies and multi-day
//! chain histories both fit comfortably in a `u64`).

use serde::{Deserialize, Serialize};

/// An instant on the simulation clock, in microseconds since simulation
/// start.
///
/// # Examples
///
/// ```
/// use dcs_sim::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(3);
/// assert_eq!(t.as_millis(), 3000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_secs(3));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// This instant as raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant in whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This instant in seconds (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Duration since an earlier instant, saturating at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl core::fmt::Display for SimTime {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// A span of virtual time, in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a span from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a span from fractional seconds, rounding to microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration must be finite and non-negative: {s}"
        );
        SimDuration((s * 1_000_000.0).round() as u64)
    }

    /// The span as raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The span in seconds (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiplies the span by an integer factor, saturating.
    pub const fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl core::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl core::ops::Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl core::ops::Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl core::ops::Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl core::ops::Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl core::ops::Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl core::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2000);
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
        assert!((SimDuration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(10);
        let u = t + SimDuration::from_secs(5);
        assert_eq!(u - t, SimDuration::from_secs(5));
        assert_eq!(t.saturating_since(u), SimDuration::ZERO);
        assert_eq!(u.saturating_since(t), SimDuration::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimTime::from_micros(250_000).to_string(), "0.250s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&s| SimDuration::from_secs(s))
            .sum();
        assert_eq!(total, SimDuration::from_secs(6));
    }
}
