//! Deterministic discrete-event simulation substrate.
//!
//! All network and consensus experiments in the platform run on this engine:
//! a virtual clock ([`time::SimTime`]), a priority event queue
//! ([`event::Simulation`]) with stable tie-breaking, a seedable RNG
//! ([`rng::Rng`], xoshiro256** seeded via SplitMix64), and statistics
//! collectors ([`metrics`]) including the decentralization measures the DCS
//! experiments report (Gini and Nakamoto coefficients).
//!
//! Determinism contract: given the same seed and the same sequence of
//! schedule calls, a simulation replays bit-identically. Wall-clock time is
//! never consulted, and event ties are broken by insertion order.
//!
//! # Examples
//!
//! ```
//! use dcs_sim::{Simulation, SimDuration};
//!
//! let mut sim: Simulation<&'static str> = Simulation::new();
//! sim.schedule(SimDuration::from_millis(20), "second");
//! sim.schedule(SimDuration::from_millis(10), "first");
//! let (t1, e1) = sim.next().unwrap();
//! assert_eq!((t1.as_millis(), e1), (10, "first"));
//! let (t2, e2) = sim.next().unwrap();
//! assert_eq!((t2.as_millis(), e2), (20, "second"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod rng;
pub mod time;

pub use event::{EventId, EventKey, Simulation, EXTERNAL_SRC};
pub use metrics::{gini, nakamoto_coefficient, Histogram, Summary};
pub use rng::Rng;
pub use time::{SimDuration, SimTime};
