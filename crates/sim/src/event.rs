//! The discrete-event queue driving every simulation.
//!
//! Events are ordered by `(time, source, source sequence)` — the key the
//! sharded engine relies on: a source assigns its sequence numbers in the
//! order it emits events, so the total order is independent of how actors
//! are partitioned across shards. Events scheduled through the plain
//! (unkeyed) API get the reserved [`EXTERNAL_SRC`] source and a queue-local
//! sequence, which preserves the historical "simultaneous events fire in
//! insertion order" contract.
//!
//! The queue itself is a flat slab: event payloads live in reusable slots
//! (a free list recycles them, so the steady state allocates nothing) and a
//! manual binary heap of plain-old-data entries orders the keys.
//! Cancellation bumps the slot generation — the heap entry becomes a
//! tombstone that is skipped on pop — which makes [`Simulation::pending`]
//! exact with no side set.

use crate::time::{SimDuration, SimTime};
use dcs_trace::{TraceEvent, Tracer};

/// The reserved source id for events scheduled outside any simulated actor
/// (standalone queue use, client injection plumbing).
pub const EXTERNAL_SRC: u32 = u32::MAX;

/// The total-order tiebreak key of a scheduled event: the logical source
/// actor and that source's own monotone sequence number.
///
/// Because the key is assigned by the *sender* (not the queue), two runs
/// that partition actors differently across shards still agree on every
/// key, which is what makes the sharded engine's merge order — and hence
/// every observable — independent of the shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// Logical source actor ([`EXTERNAL_SRC`] for non-actor schedules).
    pub src: u32,
    /// The source's monotone per-event sequence number.
    pub seq: u64,
}

impl EventKey {
    /// Builds a key from a source actor and its sequence counter.
    pub fn new(src: u32, seq: u64) -> Self {
        EventKey { src, seq }
    }
}

/// A handle to a scheduled event, usable with [`Simulation::cancel`].
///
/// Ids are generation-tagged: cancelling an event that already fired, was
/// already cancelled, or was drained out of this queue is a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

/// One payload slot in the slab. `gen` advances every time the slot is
/// vacated, invalidating outstanding [`EventId`]s and heap tombstones.
#[derive(Debug)]
struct Slot<E> {
    gen: u32,
    event: Option<E>,
}

/// A plain-old-data heap entry; the payload stays in the slab.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    time: SimTime,
    src: u32,
    seq: u64,
    slot: u32,
    gen: u32,
}

#[inline]
fn entry_less(a: &HeapEntry, b: &HeapEntry) -> bool {
    (a.time, a.src, a.seq) < (b.time, b.src, b.seq)
}

/// A discrete-event simulation: a clock plus a pending-event queue.
///
/// The driver loop is intentionally simple: callers pop events with
/// [`Simulation::next`] (which advances the clock) and dispatch them however
/// they like. See `dcs-ledger`'s network runner for the full pattern.
#[derive(Debug)]
pub struct Simulation<E> {
    heap: Vec<HeapEntry>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    live: usize,
    high_water: usize,
    now: SimTime,
    next_seq: u64,
    processed: u64,
    clamped: u64,
    tracer: Tracer,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Self {
        Simulation {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            high_water: 0,
            now: SimTime::ZERO,
            next_seq: 0,
            processed: 0,
            clamped: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a tracer that records a [`TraceEvent::SimDispatch`] per
    /// delivered event and a [`TraceEvent::SimClamped`] per past-time
    /// schedule. Disabled by default.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The installed tracer (disabled unless [`Simulation::set_tracer`] ran).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable access to the installed tracer.
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending. Exact: cancellation frees the slot
    /// immediately, so there is no tombstone drift.
    pub fn pending(&self) -> usize {
        self.live
    }

    /// The deepest the pending queue has ever been. Observability only —
    /// the value depends on how the queue was partitioned (the sharded
    /// engine keeps per-shard queues), so it must never feed a digest.
    pub fn pending_high_water(&self) -> usize {
        self.high_water
    }

    /// Number of schedules whose requested instant was in the past and was
    /// clamped to `now`. Silent clamping hides scheduling bugs in fault
    /// schedules, so it is counted (and traced when a tracer is installed).
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Schedules `event` to fire `delay` after the current instant.
    pub fn schedule(&mut self, delay: SimDuration, event: E) -> EventId {
        self.schedule_at(self.now + delay, event)
    }

    /// Schedules `event` at an absolute instant under the external source.
    /// Instants in the past fire "now" (the clock never moves backwards);
    /// each clamp is counted in [`Simulation::clamped`].
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.schedule_at_keyed(time, EventKey::new(EXTERNAL_SRC, seq), event)
    }

    /// Schedules `event` at an absolute instant under an explicit
    /// `(source, sequence)` key. The caller owns key uniqueness; the sharded
    /// engine derives keys from per-actor counters so they are stable
    /// across shard counts.
    pub fn schedule_at_keyed(&mut self, time: SimTime, key: EventKey, event: E) -> EventId {
        let time = if time < self.now {
            self.clamped += 1;
            if self.tracer.is_enabled() {
                let lag_us = self.now.as_micros() - time.as_micros();
                self.tracer
                    .emit(self.now.as_micros(), TraceEvent::SimClamped { lag_us });
            }
            self.now
        } else {
            time
        };
        let (slot, gen) = match self.free.pop() {
            Some(slot) => {
                let s = &mut self.slots[slot as usize];
                s.event = Some(event);
                (slot, s.gen)
            }
            None => {
                self.slots.push(Slot {
                    gen: 0,
                    event: Some(event),
                });
                ((self.slots.len() - 1) as u32, 0)
            }
        };
        self.heap_push(HeapEntry {
            time,
            src: key.src,
            seq: key.seq,
            slot,
            gen,
        });
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        EventId { slot, gen }
    }

    /// Cancels a previously scheduled event. Cancelling an event that
    /// already fired (or was already cancelled or drained) is a no-op: the
    /// slot generation no longer matches the handle.
    pub fn cancel(&mut self, id: EventId) {
        if let Some(slot) = self.slots.get_mut(id.slot as usize) {
            if slot.gen == id.gen && slot.event.is_some() {
                slot.event = None;
                slot.gen = slot.gen.wrapping_add(1);
                self.free.push(id.slot);
                self.live -= 1;
            }
        }
    }

    /// Pops the next event, advancing the clock to its timestamp.
    /// Returns `None` when the queue is drained.
    // Not `Iterator::next`: popping mutates the simulation clock, so the
    // inherent method keeps that side effect explicit at call sites.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        self.pop_keyed(None).map(|(t, _, e)| (t, e))
    }

    /// Pops the next event only if it fires at or before `deadline`.
    pub fn next_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        self.pop_keyed(Some(deadline)).map(|(t, _, e)| (t, e))
    }

    /// Pops the next event with its ordering key, honoring an optional
    /// deadline. The key is what the sharded engine's dispatch trace emits.
    pub fn next_keyed(&mut self, deadline: Option<SimTime>) -> Option<(SimTime, EventKey, E)> {
        self.pop_keyed(deadline)
    }

    /// Earliest pending event time, if any. Lazily discards tombstones.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let head = *self.heap.first()?;
            if self.slots[head.slot as usize].gen != head.gen {
                self.heap_pop();
                continue;
            }
            return Some(head.time);
        }
    }

    /// Removes and returns every pending event with its key, in no
    /// particular order. Outstanding [`EventId`]s are invalidated. Does not
    /// advance the clock or the processed count — this is bulk transfer
    /// (shard explode), not delivery.
    pub fn drain(&mut self) -> Vec<(SimTime, EventKey, E)> {
        let mut out = Vec::with_capacity(self.live);
        for e in self.heap.drain(..) {
            let slot = &mut self.slots[e.slot as usize];
            if slot.gen != e.gen {
                continue;
            }
            let event = slot.event.take().expect("live slot holds an event");
            slot.gen = slot.gen.wrapping_add(1);
            out.push((e.time, EventKey::new(e.src, e.seq), event));
        }
        self.free.clear();
        self.free.extend(0..self.slots.len() as u32);
        self.live = 0;
        out
    }

    /// Folds a child queue back into this one: pending events are
    /// re-scheduled under their original keys, and the processed/clamped
    /// tallies and clock high-water mark are absorbed. Intended for the
    /// sharded engine's merge step, where every leftover event is known to
    /// be in this queue's future (keyed events only — external sequences
    /// are not reconciled).
    pub fn merge_from(&mut self, mut child: Simulation<E>) {
        self.processed += child.processed;
        self.clamped += child.clamped;
        self.high_water = self.high_water.max(child.high_water);
        let child_now = child.now;
        for (time, key, event) in child.drain() {
            self.schedule_at_keyed(time, key, event);
        }
        self.advance_to(child_now);
    }

    /// Advances the clock to `t` if `t` is later (never backwards).
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }

    fn pop_keyed(&mut self, deadline: Option<SimTime>) -> Option<(SimTime, EventKey, E)> {
        let head = loop {
            let head = *self.heap.first()?;
            if self.slots[head.slot as usize].gen != head.gen {
                self.heap_pop();
                continue;
            }
            break head;
        };
        if let Some(d) = deadline {
            if head.time > d {
                return None;
            }
        }
        self.heap_pop();
        let slot = &mut self.slots[head.slot as usize];
        let event = slot.event.take().expect("live slot holds an event");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(head.slot);
        self.live -= 1;
        self.now = head.time;
        self.processed += 1;
        if self.tracer.is_enabled() {
            self.tracer.emit(
                head.time.as_micros(),
                TraceEvent::SimDispatch {
                    pending: self.live.min(u32::MAX as usize) as u32,
                },
            );
        }
        Some((head.time, EventKey::new(head.src, head.seq), event))
    }

    fn heap_push(&mut self, e: HeapEntry) {
        self.heap.push(e);
        let mut i = self.heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if entry_less(&self.heap[i], &self.heap[parent]) {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_pop(&mut self) -> Option<HeapEntry> {
        let last = self.heap.len().checked_sub(1)?;
        self.heap.swap(0, last);
        let top = self.heap.pop();
        let n = self.heap.len();
        let mut i = 0;
        loop {
            let l = 2 * i + 1;
            if l >= n {
                break;
            }
            let r = l + 1;
            let mut c = l;
            if r < n && entry_less(&self.heap[r], &self.heap[l]) {
                c = r;
            }
            if entry_less(&self.heap[c], &self.heap[i]) {
                self.heap.swap(i, c);
                i = c;
            } else {
                break;
            }
        }
        top
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new();
        sim.schedule(SimDuration::from_secs(3), 'c');
        sim.schedule(SimDuration::from_secs(1), 'a');
        sim.schedule(SimDuration::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| sim.next().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(3));
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut sim = Simulation::new();
        for i in 0..10 {
            sim.schedule(SimDuration::from_secs(1), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| sim.next().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn keyed_events_order_by_source_then_sequence() {
        let mut sim = Simulation::new();
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        sim.schedule_at_keyed(t, EventKey::new(2, 0), "c");
        sim.schedule_at_keyed(t, EventKey::new(1, 1), "b");
        sim.schedule_at_keyed(t, EventKey::new(1, 0), "a");
        sim.schedule_at(t, "x"); // external sorts after every actor source
        let order: Vec<&str> = std::iter::from_fn(|| sim.next().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c", "x"]);
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut sim = Simulation::new();
        let keep = sim.schedule(SimDuration::from_secs(1), "keep");
        let drop1 = sim.schedule(SimDuration::from_secs(2), "drop");
        let _ = keep;
        sim.cancel(drop1);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.next().map(|(_, e)| e), Some("keep"));
        assert_eq!(sim.next(), None);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut sim = Simulation::new();
        let id = sim.schedule(SimDuration::ZERO, 1u8);
        assert!(sim.next().is_some());
        sim.cancel(id);
        sim.schedule(SimDuration::ZERO, 2u8);
        assert_eq!(sim.next().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn cancel_is_exact_after_slot_reuse() {
        let mut sim = Simulation::new();
        let a = sim.schedule(SimDuration::from_secs(1), 'a');
        sim.cancel(a);
        // The freed slot is recycled with a fresh generation: the stale
        // handle must not cancel the new occupant.
        let _b = sim.schedule(SimDuration::from_secs(2), 'b');
        sim.cancel(a);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.next().map(|(_, e)| e), Some('b'));
    }

    #[test]
    fn past_scheduling_clamps_to_now_and_is_counted() {
        let mut sim = Simulation::new();
        sim.schedule(SimDuration::from_secs(5), ());
        sim.next();
        assert_eq!(sim.clamped(), 0);
        sim.schedule_at(SimTime::ZERO, ());
        assert_eq!(sim.clamped(), 1);
        let (t, _) = sim.next().unwrap();
        assert_eq!(t, SimTime::ZERO + SimDuration::from_secs(5));
    }

    #[test]
    fn clamp_emits_a_trace_event() {
        use dcs_trace::TraceConfig;
        let mut sim = Simulation::new();
        sim.set_tracer(Tracer::new(dcs_trace::SIM_ACTOR, &TraceConfig::full()));
        sim.schedule(SimDuration::from_secs(2), ());
        sim.next();
        sim.schedule_at(SimTime::ZERO + SimDuration::from_secs(1), ());
        let clamps: Vec<_> = sim
            .tracer()
            .records()
            .filter(|r| matches!(r.event, TraceEvent::SimClamped { .. }))
            .collect();
        assert_eq!(clamps.len(), 1);
        assert_eq!(clamps[0].at_us, 2_000_000);
        assert!(matches!(
            clamps[0].event,
            TraceEvent::SimClamped { lag_us: 1_000_000 }
        ));
    }

    #[test]
    fn next_before_respects_deadline() {
        let mut sim = Simulation::new();
        sim.schedule(SimDuration::from_secs(1), 1);
        sim.schedule(SimDuration::from_secs(10), 2);
        let cutoff = SimTime::ZERO + SimDuration::from_secs(5);
        assert_eq!(sim.next_before(cutoff).map(|(_, e)| e), Some(1));
        assert_eq!(sim.next_before(cutoff), None);
        assert_eq!(sim.next().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn tracer_sees_each_dispatch_at_sim_time() {
        use dcs_trace::TraceConfig;
        let mut sim = Simulation::new();
        sim.set_tracer(Tracer::new(dcs_trace::SIM_ACTOR, &TraceConfig::full()));
        sim.schedule(SimDuration::from_secs(1), ());
        sim.schedule(SimDuration::from_secs(2), ());
        while sim.next().is_some() {}
        let recs: Vec<_> = sim.tracer().records().collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].at_us, 1_000_000);
        assert_eq!(recs[1].at_us, 2_000_000);
        assert!(matches!(
            recs[1].event,
            TraceEvent::SimDispatch { pending: 0 }
        ));
    }

    #[test]
    fn processed_counts_delivered_only() {
        let mut sim = Simulation::new();
        let a = sim.schedule(SimDuration::ZERO, ());
        sim.schedule(SimDuration::ZERO, ());
        sim.cancel(a);
        while sim.next().is_some() {}
        assert_eq!(sim.processed(), 1);
    }

    #[test]
    fn pending_is_exact_through_cancel_and_fire() {
        let mut sim = Simulation::new();
        let ids: Vec<_> = (0..8)
            .map(|i| sim.schedule(SimDuration::from_secs(i), i))
            .collect();
        assert_eq!(sim.pending(), 8);
        sim.cancel(ids[3]);
        sim.cancel(ids[3]); // double-cancel must not double-decrement
        assert_eq!(sim.pending(), 7);
        sim.next();
        assert_eq!(sim.pending(), 6);
        // Cancelling a fired event leaves the count untouched.
        sim.cancel(ids[0]);
        assert_eq!(sim.pending(), 6);
        while sim.next().is_some() {}
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn drain_and_merge_round_trip() {
        let mut sim = Simulation::new();
        sim.schedule(SimDuration::from_secs(2), 'b');
        sim.schedule(SimDuration::from_secs(1), 'a');
        let drained = sim.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(sim.pending(), 0);

        let mut child = Simulation::new();
        for (t, k, e) in drained {
            child.schedule_at_keyed(t, k, e);
        }
        let mut root: Simulation<char> = Simulation::new();
        root.merge_from(child);
        assert_eq!(root.pending(), 2);
        let order: Vec<char> = std::iter::from_fn(|| root.next().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b']);
    }

    #[test]
    fn drained_event_ids_become_inert() {
        let mut sim = Simulation::new();
        let id = sim.schedule(SimDuration::from_secs(1), 'a');
        let drained = sim.drain();
        for (t, k, e) in drained {
            sim.schedule_at_keyed(t, k, e);
        }
        sim.cancel(id); // stale generation: must not cancel the re-slotted event
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.next().map(|(_, e)| e), Some('a'));
    }
}
