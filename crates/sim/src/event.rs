//! The discrete-event queue driving every simulation.
//!
//! Events are ordered by `(time, insertion sequence)`, so simultaneous events
//! fire in the order they were scheduled — the core of the determinism
//! contract. Scheduled events can be cancelled by [`EventId`] (used for
//! consensus timers that are superseded, e.g. PBFT view-change timeouts).

use crate::time::{SimDuration, SimTime};
use dcs_trace::{TraceEvent, Tracer};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// A handle to a scheduled event, usable with [`Simulation::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A discrete-event simulation: a clock plus a pending-event queue.
///
/// The driver loop is intentionally simple: callers pop events with
/// [`Simulation::next`] (which advances the clock) and dispatch them however
/// they like. See `dcs-ledger`'s network runner for the full pattern.
#[derive(Debug)]
pub struct Simulation<E> {
    queue: BinaryHeap<Reverse<Entry<E>>>,
    cancelled: BTreeSet<u64>,
    now: SimTime,
    next_seq: u64,
    processed: u64,
    tracer: Tracer,
}

impl<E> Default for Simulation<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulation<E> {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Self {
        Simulation {
            queue: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            processed: 0,
            tracer: Tracer::disabled(),
        }
    }

    /// Installs a tracer that records a [`TraceEvent::SimDispatch`] per
    /// delivered event. Disabled by default.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The installed tracer (disabled unless [`Simulation::set_tracer`] ran).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable access to the installed tracer.
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending (cancelled tombstones excluded).
    /// Saturating: cancelling an already-fired event leaves a tombstone
    /// with no matching queue entry.
    pub fn pending(&self) -> usize {
        self.queue.len().saturating_sub(self.cancelled.len())
    }

    /// Schedules `event` to fire `delay` after the current instant.
    pub fn schedule(&mut self, delay: SimDuration, event: E) -> EventId {
        self.schedule_at(self.now + delay, event)
    }

    /// Schedules `event` at an absolute instant. Instants in the past fire
    /// "now" (the clock never moves backwards).
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventId {
        let time = time.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Reverse(Entry { time, seq, event }));
        EventId(seq)
    }

    /// Cancels a previously scheduled event. Cancelling an event that already
    /// fired (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    /// Returns `None` when the queue is drained.
    // Not `Iterator::next`: popping mutates the simulation clock, so the
    // inherent method keeps that side effect explicit at call sites.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.queue.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.now = entry.time;
            self.processed += 1;
            if self.tracer.is_enabled() {
                self.tracer.emit(
                    entry.time.as_micros(),
                    TraceEvent::SimDispatch {
                        pending: self.pending().min(u32::MAX as usize) as u32,
                    },
                );
            }
            return Some((entry.time, entry.event));
        }
        None
    }

    /// Pops the next event only if it fires at or before `deadline`.
    pub fn next_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        loop {
            let peek_time = self.queue.peek().map(|Reverse(e)| (e.time, e.seq))?;
            if peek_time.0 > deadline {
                return None;
            }
            let Reverse(entry) = self.queue.pop().expect("peeked entry exists");
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.now = entry.time;
            self.processed += 1;
            if self.tracer.is_enabled() {
                self.tracer.emit(
                    entry.time.as_micros(),
                    TraceEvent::SimDispatch {
                        pending: self.pending().min(u32::MAX as usize) as u32,
                    },
                );
            }
            return Some((entry.time, entry.event));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new();
        sim.schedule(SimDuration::from_secs(3), 'c');
        sim.schedule(SimDuration::from_secs(1), 'a');
        sim.schedule(SimDuration::from_secs(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| sim.next().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_secs(3));
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut sim = Simulation::new();
        for i in 0..10 {
            sim.schedule(SimDuration::from_secs(1), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| sim.next().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancelled_events_do_not_fire() {
        let mut sim = Simulation::new();
        let keep = sim.schedule(SimDuration::from_secs(1), "keep");
        let drop1 = sim.schedule(SimDuration::from_secs(2), "drop");
        let _ = keep;
        sim.cancel(drop1);
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.next().map(|(_, e)| e), Some("keep"));
        assert_eq!(sim.next(), None);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut sim = Simulation::new();
        let id = sim.schedule(SimDuration::ZERO, 1u8);
        assert!(sim.next().is_some());
        sim.cancel(id);
        sim.schedule(SimDuration::ZERO, 2u8);
        assert_eq!(sim.next().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut sim = Simulation::new();
        sim.schedule(SimDuration::from_secs(5), ());
        sim.next();
        sim.schedule_at(SimTime::ZERO, ());
        let (t, _) = sim.next().unwrap();
        assert_eq!(t, SimTime::ZERO + SimDuration::from_secs(5));
    }

    #[test]
    fn next_before_respects_deadline() {
        let mut sim = Simulation::new();
        sim.schedule(SimDuration::from_secs(1), 1);
        sim.schedule(SimDuration::from_secs(10), 2);
        let cutoff = SimTime::ZERO + SimDuration::from_secs(5);
        assert_eq!(sim.next_before(cutoff).map(|(_, e)| e), Some(1));
        assert_eq!(sim.next_before(cutoff), None);
        assert_eq!(sim.next().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn tracer_sees_each_dispatch_at_sim_time() {
        use dcs_trace::TraceConfig;
        let mut sim = Simulation::new();
        sim.set_tracer(Tracer::new(dcs_trace::SIM_ACTOR, &TraceConfig::full()));
        sim.schedule(SimDuration::from_secs(1), ());
        sim.schedule(SimDuration::from_secs(2), ());
        while sim.next().is_some() {}
        let recs: Vec<_> = sim.tracer().records().collect();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].at_us, 1_000_000);
        assert_eq!(recs[1].at_us, 2_000_000);
        assert!(matches!(
            recs[1].event,
            TraceEvent::SimDispatch { pending: 0 }
        ));
    }

    #[test]
    fn processed_counts_delivered_only() {
        let mut sim = Simulation::new();
        let a = sim.schedule(SimDuration::ZERO, ());
        sim.schedule(SimDuration::ZERO, ());
        sim.cancel(a);
        while sim.next().is_some() {}
        assert_eq!(sim.processed(), 1);
    }
}
