//! Property-based tests for the simulation engine: event ordering
//! guarantees and statistical sanity of the RNG and metrics.

use dcs_sim::{gini, nakamoto_coefficient, Rng, SimDuration, Simulation, Summary};
use proptest::prelude::*;

proptest! {
    #[test]
    fn events_always_pop_in_time_then_insertion_order(
        delays in proptest::collection::vec(0u64..10_000, 1..200),
    ) {
        let mut sim = Simulation::new();
        for (i, &d) in delays.iter().enumerate() {
            sim.schedule(SimDuration::from_micros(d), (d, i));
        }
        let mut last = (0u64, 0usize);
        let mut first = true;
        let mut popped = 0;
        while let Some((t, (d, i))) = sim.next() {
            prop_assert_eq!(t.as_micros(), d, "fires exactly at its deadline");
            if !first {
                // Non-decreasing time; ties break by insertion order.
                prop_assert!(d > last.0 || (d == last.0 && i > last.1));
            }
            first = false;
            last = (d, i);
            popped += 1;
        }
        prop_assert_eq!(popped, delays.len());
    }

    #[test]
    fn cancellation_removes_exactly_the_cancelled(
        n in 1usize..100,
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut sim = Simulation::new();
        let ids: Vec<_> = (0..n)
            .map(|i| sim.schedule(SimDuration::from_micros(i as u64), i))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                sim.cancel(*id);
            } else {
                expected.push(i);
            }
        }
        let fired: Vec<usize> = std::iter::from_fn(|| sim.next().map(|(_, e)| e)).collect();
        prop_assert_eq!(fired, expected);
    }

    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>()) {
        let mut a = Rng::seed_from(seed);
        let mut b = Rng::seed_from(seed);
        for _ in 0..32 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_always_in_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = Rng::seed_from(seed);
        for _ in 0..64 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn weighted_index_never_picks_zero_weight(
        seed in any::<u64>(),
        weights in proptest::collection::vec(0u64..100, 1..20),
    ) {
        prop_assume!(weights.iter().sum::<u64>() > 0);
        let mut rng = Rng::seed_from(seed);
        for _ in 0..64 {
            let i = rng.weighted_index(&weights);
            prop_assert!(weights[i] > 0, "picked index {i} with zero weight");
        }
    }

    #[test]
    fn gini_bounded_and_zero_for_equal(values in proptest::collection::vec(0u64..10_000, 1..50), c in 1u64..1_000) {
        let g = gini(&values);
        prop_assert!((0.0..=1.0).contains(&g), "gini {g}");
        let equal = vec![c; values.len()];
        prop_assert!(gini(&equal).abs() < 1e-9);
    }

    #[test]
    fn nakamoto_coefficient_is_a_majority_coalition(values in proptest::collection::vec(1u64..10_000, 1..50)) {
        let k = nakamoto_coefficient(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let total: u128 = values.iter().map(|&v| u128::from(v)).sum();
        let top_k: u128 = sorted[..k].iter().map(|&v| u128::from(v)).sum();
        prop_assert!(top_k * 2 > total, "top {k} must hold a majority");
        if k > 1 {
            let top_k1: u128 = sorted[..k - 1].iter().map(|&v| u128::from(v)).sum();
            prop_assert!(top_k1 * 2 <= total, "k is minimal");
        }
    }

    #[test]
    fn summary_percentiles_are_monotone(samples in proptest::collection::vec(-1_000.0f64..1_000.0, 1..100)) {
        let mut s = Summary::new();
        for v in &samples {
            s.record(*v);
        }
        let p10 = s.percentile(10.0);
        let p50 = s.percentile(50.0);
        let p90 = s.percentile(90.0);
        prop_assert!(p10 <= p50 && p50 <= p90);
        prop_assert!(s.min() <= p10 && p90 <= s.max());
    }
}
