//! Property-based tests for the chain layer: arbitrary block trees must
//! leave the chain manager in a consistent state — the canonical chain is
//! a valid path, fork choice is insensitive to delivery order (up to
//! first-seen tie-breaking), and reorgs never corrupt state.

use dcs_chain::{Chain, NullMachine};
use dcs_crypto::Address;
use dcs_primitives::{Block, BlockHeader, ChainConfig, ForkChoice, Seal, Transaction};
use proptest::prelude::*;

/// Builds a random tree description: each entry is (parent index into the
/// list of already-created blocks, salt).
fn arb_tree(max: usize) -> impl Strategy<Value = Vec<(usize, u64)>> {
    proptest::collection::vec((any::<usize>(), any::<u64>()), 1..max)
}

fn make_blocks(spec: &[(usize, u64)], genesis: &Block) -> Vec<Block> {
    let mut blocks: Vec<Block> = vec![genesis.clone()];
    for (parent_raw, salt) in spec {
        let parent = &blocks[parent_raw % blocks.len()];
        let block = Block::new(
            BlockHeader::new(
                parent.hash(),
                parent.header.height + 1,
                *salt,
                Address::from_index(*salt % 16),
                Seal::Work {
                    nonce: *salt,
                    difficulty: 1 + salt % 1_000,
                },
            ),
            vec![Transaction::Coinbase {
                to: Address::from_index(*salt % 16),
                value: 1,
                height: parent.header.height + 1,
            }],
        );
        blocks.push(block);
    }
    blocks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn canonical_chain_is_always_a_valid_path(
        spec in arb_tree(40),
        rule_pick in 0usize..3,
    ) {
        let rule = [ForkChoice::LongestChain, ForkChoice::HeaviestWork, ForkChoice::Ghost][rule_pick];
        let mut cfg = ChainConfig::bitcoin_like();
        cfg.fork_choice = rule;
        let genesis = dcs_chain::genesis_block(&cfg);
        let blocks = make_blocks(&spec, &genesis);
        let mut chain = Chain::new(genesis.clone(), cfg, NullMachine);
        for b in &blocks[1..] {
            let _ = chain.import(b.clone()); // duplicates allowed to error
        }
        // Invariant 1: canonical[i] links to canonical[i-1].
        let canonical = chain.canonical().to_vec();
        prop_assert_eq!(canonical[0], genesis.hash());
        for w in canonical.windows(2) {
            let child = &chain.tree().get(&w[1]).unwrap().block;
            prop_assert_eq!(child.header.parent, w[0]);
        }
        // Invariant 2: heights are consecutive.
        for (h, hash) in canonical.iter().enumerate() {
            prop_assert_eq!(chain.tree().get(hash).unwrap().block.header.height, h as u64);
            prop_assert!(chain.is_canonical(hash));
        }
        // Invariant 3: the tip is a leaf under the rule's own scoring (no
        // canonical child exists beyond it).
        prop_assert_eq!(*canonical.last().unwrap(), chain.tip_hash());
    }

    #[test]
    fn delivery_order_does_not_change_the_final_tip_score(
        spec in arb_tree(30),
        shuffle_seed in any::<u64>(),
    ) {
        // Different delivery orders may pick different first-seen
        // tie-break winners, but the *score* of the selected tip (height
        // for longest-chain) must match.
        let cfg = ChainConfig::bitcoin_like();
        let genesis = dcs_chain::genesis_block(&cfg);
        let blocks = make_blocks(&spec, &genesis);

        let run = |order: &[Block]| {
            let mut chain = Chain::new(genesis.clone(), cfg.clone(), NullMachine);
            for b in order {
                let _ = chain.import(b.clone());
            }
            chain.height()
        };
        let in_order = run(&blocks[1..]);

        let mut shuffled: Vec<Block> = blocks[1..].to_vec();
        let mut rng = dcs_sim::Rng::seed_from(shuffle_seed);
        rng.shuffle(&mut shuffled);
        let out_of_order = run(&shuffled);
        prop_assert_eq!(in_order, out_of_order);
    }

    #[test]
    fn stats_are_consistent(spec in arb_tree(40)) {
        let cfg = ChainConfig::bitcoin_like();
        let genesis = dcs_chain::genesis_block(&cfg);
        let blocks = make_blocks(&spec, &genesis);
        let mut chain = Chain::new(genesis, cfg, NullMachine);
        for b in &blocks[1..] {
            let _ = chain.import(b.clone());
        }
        let stats = chain.stats();
        let hist_total: u64 = stats.reorg_depth_hist.iter().sum();
        prop_assert_eq!(hist_total, stats.reorgs);
        prop_assert!(stats.max_reorg_depth <= stats.blocks_reverted);
        prop_assert_eq!(
            chain.stale_blocks(),
            chain.tree().len() as u64 - chain.canonical().len() as u64
        );
    }
}
