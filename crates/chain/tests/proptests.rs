//! Property-based tests for the chain layer: arbitrary block trees must
//! leave the chain manager in a consistent state — the canonical chain is
//! a valid path, fork choice is insensitive to delivery order (up to
//! first-seen tie-breaking), and reorgs never corrupt state.

use dcs_chain::{Chain, NullMachine, PrunedStore};
use dcs_crypto::Address;
use dcs_primitives::{Block, BlockHeader, ChainConfig, ForkChoice, Seal, Transaction};
use proptest::prelude::*;
use std::sync::Arc;

/// Builds a random tree description: each entry is (parent index into the
/// list of already-created blocks, salt).
fn arb_tree(max: usize) -> impl Strategy<Value = Vec<(usize, u64)>> {
    proptest::collection::vec((any::<usize>(), any::<u64>()), 1..max)
}

fn make_blocks(spec: &[(usize, u64)], genesis: &Block) -> Vec<Block> {
    let mut blocks: Vec<Block> = vec![genesis.clone()];
    for (parent_raw, salt) in spec {
        let parent = &blocks[parent_raw % blocks.len()];
        let block = Block::new(
            BlockHeader::new(
                parent.hash(),
                parent.header.height + 1,
                *salt,
                Address::from_index(*salt % 16),
                Seal::Work {
                    nonce: *salt,
                    difficulty: 1 + salt % 1_000,
                },
            ),
            vec![Transaction::Coinbase {
                to: Address::from_index(*salt % 16),
                value: 1,
                height: parent.header.height + 1,
            }],
        );
        blocks.push(block);
    }
    blocks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn canonical_chain_is_always_a_valid_path(
        spec in arb_tree(40),
        rule_pick in 0usize..3,
    ) {
        let rule = [ForkChoice::LongestChain, ForkChoice::HeaviestWork, ForkChoice::Ghost][rule_pick];
        let mut cfg = ChainConfig::bitcoin_like();
        cfg.fork_choice = rule;
        let genesis = dcs_chain::genesis_block(&cfg);
        let blocks = make_blocks(&spec, &genesis);
        let mut chain = Chain::new(genesis.clone(), cfg, NullMachine);
        for b in &blocks[1..] {
            let _ = chain.import(b.clone()); // duplicates allowed to error
        }
        // Invariant 1: canonical[i] links to canonical[i-1].
        let canonical = chain.canonical().to_vec();
        prop_assert_eq!(canonical[0], genesis.hash());
        for w in canonical.windows(2) {
            let child = chain.tree().get(&w[1]).unwrap().header();
            prop_assert_eq!(child.parent, w[0]);
        }
        // Invariant 2: heights are consecutive.
        for (h, hash) in canonical.iter().enumerate() {
            prop_assert_eq!(chain.tree().get(hash).unwrap().height(), h as u64);
            prop_assert!(chain.is_canonical(hash));
        }
        // Invariant 3: the tip is a leaf under the rule's own scoring (no
        // canonical child exists beyond it).
        prop_assert_eq!(*canonical.last().unwrap(), chain.tip_hash());
    }

    #[test]
    fn delivery_order_does_not_change_the_final_tip_score(
        spec in arb_tree(30),
        shuffle_seed in any::<u64>(),
    ) {
        // Different delivery orders may pick different first-seen
        // tie-break winners, but the *score* of the selected tip (height
        // for longest-chain) must match.
        let cfg = ChainConfig::bitcoin_like();
        let genesis = dcs_chain::genesis_block(&cfg);
        let blocks = make_blocks(&spec, &genesis);

        let run = |order: &[Block]| {
            let mut chain = Chain::new(genesis.clone(), cfg.clone(), NullMachine);
            for b in order {
                let _ = chain.import(b.clone());
            }
            chain.height()
        };
        let in_order = run(&blocks[1..]);

        let mut shuffled: Vec<Block> = blocks[1..].to_vec();
        let mut rng = dcs_sim::Rng::seed_from(shuffle_seed);
        rng.shuffle(&mut shuffled);
        let out_of_order = run(&shuffled);
        prop_assert_eq!(in_order, out_of_order);
    }

    #[test]
    fn archival_and_pruned_backends_agree(
        main_len in 10usize..40,
        forks in proptest::collection::vec(
            // (main height offset at which the fork starts counting from the
            //  delivery cursor, blocks back from there, fork length, salt,
            //  deliver the fork children-first to exercise the orphan pool)
            (0usize..8, 0u64..3, 1usize..4, any::<u64>(), any::<bool>()),
            0..10,
        ),
        rule_pick in 0usize..3,
        keep_depth in 0u64..8,
    ) {
        // The retention policy must be invisible to consensus: over the same
        // randomized import sequence (near-tip forks that force reorgs and
        // out-of-order deliveries that exercise the orphan pool), an
        // archival node and a pruning node must land on identical tips,
        // canonical chains, and incremental stats. Forks stay within the
        // finality window — a pruned node's contract does not cover reorgs
        // past its horizon. Blocks are shared `Arc`s, so the two chains
        // also exercise the zero-copy path.
        let rule = [ForkChoice::LongestChain, ForkChoice::HeaviestWork, ForkChoice::Ghost][rule_pick];
        let mut cfg = ChainConfig::bitcoin_like();
        cfg.fork_choice = rule;
        let genesis = dcs_chain::genesis_block(&cfg);

        // Uniform-work child so every rule reorgs only near the tip.
        let child = |parent: &Block, salt: u64| {
            Arc::new(Block::new(
                BlockHeader::new(
                    parent.hash(),
                    parent.header.height + 1,
                    salt,
                    Address::from_index(salt % 16),
                    Seal::Work { nonce: salt, difficulty: 1 },
                ),
                vec![Transaction::Coinbase {
                    to: Address::from_index(salt % 16),
                    value: 1,
                    height: parent.header.height + 1,
                }],
            ))
        };
        let mut main: Vec<Arc<Block>> = vec![Arc::new(genesis.clone())];
        for i in 0..main_len {
            let b = child(main.last().unwrap(), i as u64);
            main.push(b);
        }

        let mut archival = Chain::new(genesis.clone(), cfg.clone(), NullMachine);
        let mut pruned =
            Chain::with_store(genesis.clone(), cfg, NullMachine, PrunedStore::new(keep_depth));
        let deliver = |a: &mut Chain<NullMachine>,
                           p: &mut Chain<NullMachine, PrunedStore>,
                           b: &Arc<Block>|
         -> Result<(), TestCaseError> {
            prop_assert_eq!(a.import(Arc::clone(b)), p.import(Arc::clone(b)));
            Ok(())
        };

        let mut cursor = 1usize; // next undelivered main block
        for (at, back, len, salt, children_first) in forks {
            // Advance the main chain to the fork's start point.
            let stop = (cursor + at).min(main.len());
            while cursor < stop {
                deliver(&mut archival, &mut pruned, &main[cursor])?;
                cursor += 1;
            }
            // Build a short fork rooted near the delivered tip.
            let delivered_tip = cursor - 1;
            let root = &main[delivered_tip.saturating_sub(back as usize)];
            let mut fork = Vec::with_capacity(len);
            let mut parent = Arc::clone(root);
            for i in 0..len {
                let b = child(&parent, salt.wrapping_add(1_000_000 + i as u64));
                parent = Arc::clone(&b);
                fork.push(b);
            }
            // Children-first delivery parks the tail as orphans until the
            // fork's first block connects them all at once.
            if children_first {
                fork.reverse();
            }
            for b in &fork {
                deliver(&mut archival, &mut pruned, b)?;
            }
        }
        while cursor < main.len() {
            deliver(&mut archival, &mut pruned, &main[cursor])?;
            cursor += 1;
        }

        prop_assert_eq!(archival.tip_hash(), pruned.tip_hash());
        prop_assert_eq!(archival.canonical(), pruned.canonical());
        prop_assert_eq!(archival.canon_stats(), pruned.canon_stats());
        prop_assert_eq!(archival.stats(), pruned.stats());
        prop_assert_eq!(archival.tree().len(), pruned.tree().len());
        // The pruned store never holds more body bytes than the archival one.
        prop_assert!(
            pruned.tree().store_stats().resident_body_bytes
                <= archival.tree().store_stats().resident_body_bytes
        );
        // Headers and work metadata survive pruning for every stored block.
        for sb in archival.tree().iter() {
            let other = pruned.tree().get(&sb.hash()).expect("same block set");
            prop_assert_eq!(sb.header(), other.header());
            prop_assert_eq!(sb.total_work, other.total_work);
        }
    }

    #[test]
    fn stats_are_consistent(spec in arb_tree(40)) {
        let cfg = ChainConfig::bitcoin_like();
        let genesis = dcs_chain::genesis_block(&cfg);
        let blocks = make_blocks(&spec, &genesis);
        let mut chain = Chain::new(genesis, cfg, NullMachine);
        for b in &blocks[1..] {
            let _ = chain.import(b.clone());
        }
        let stats = chain.stats();
        let hist_total: u64 = stats.reorg_depth_hist.iter().sum();
        prop_assert_eq!(hist_total, stats.reorgs);
        prop_assert!(stats.max_reorg_depth <= stats.blocks_reverted);
        prop_assert_eq!(
            chain.stale_blocks(),
            chain.tree().len() as u64 - chain.canonical().len() as u64
        );
    }
}
