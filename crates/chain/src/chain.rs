//! The chain manager: owns the block tree, a fork-choice rule, and an
//! application [`StateMachine`], and keeps the machine's state exactly in
//! sync with the currently selected branch — reverting and re-applying
//! blocks across reorgs. This is the component that delivers the paper's
//! consistency property ("the blockchain data should be exactly identical at
//! all peers", §2.7): every peer running the same rule over the same block
//! set lands on the same canonical chain and state root.

use crate::forkchoice::best_tip_with;
use crate::store::{ArchivalStore, BlockStore, BlockTree};
use crate::ChainError;
use dcs_crypto::{merkle_root_with, Hash256, VerifyPipeline};
use dcs_primitives::{Block, ChainConfig, Receipt, Transaction};
use dcs_trace::{Id as TraceId, ImportOutcome, TraceEvent, Tracer};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The application layer beneath the chain: applies blocks to mutable state
/// and can revert them. This is the platform's equivalent of the ABCI
/// interface the paper cites for blockchain middleware (§5.2, \[29\]).
pub trait StateMachine: core::fmt::Debug {
    /// Opaque undo token for one applied block.
    type Undo: core::fmt::Debug;

    /// Applies all transactions of `block`, returning receipts and an undo
    /// token.
    ///
    /// # Errors
    ///
    /// A human-readable reason if any transaction is invalid; the machine
    /// must be left unchanged in that case.
    fn apply_block(&mut self, block: &Block) -> Result<(Vec<Receipt>, Self::Undo), String>;

    /// Reverts a previously applied block given its undo token. Undo tokens
    /// are always presented in exact LIFO order.
    fn revert_block(&mut self, undo: Self::Undo);

    /// The authenticated root of the current state, compared against header
    /// commitments when they are present.
    fn state_root(&self) -> Hash256;
}

/// A state machine that accepts everything and keeps no state; used for
/// consensus-only experiments where transaction semantics don't matter.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullMachine;

impl StateMachine for NullMachine {
    type Undo = ();

    fn apply_block(&mut self, block: &Block) -> Result<(Vec<Receipt>, ()), String> {
        Ok((
            block
                .txs
                .iter()
                .map(|tx| Receipt::success(tx.id()))
                .collect(),
            (),
        ))
    }

    fn revert_block(&mut self, _undo: ()) {}

    fn state_root(&self) -> Hash256 {
        Hash256::ZERO
    }
}

/// What happened as a result of importing a block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainEvent {
    /// The canonical chain grew by exactly this block.
    Extended {
        /// Hash of the new tip.
        block: Hash256,
    },
    /// The canonical chain switched branches.
    Reorg {
        /// Blocks reverted from the old branch.
        reverted: u64,
        /// Blocks applied from the new branch.
        applied: u64,
        /// New tip hash.
        new_tip: Hash256,
    },
    /// The block joined a non-canonical branch (a "stale"/"uncle" block).
    SideChain {
        /// Hash of the side-chain block.
        block: Hash256,
    },
    /// The block's parent is unknown; it waits in the orphan pool.
    Orphaned,
}

/// Cumulative consistency statistics — the raw material of experiments E2,
/// E4, and E13.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChainStats {
    /// Branch switches observed.
    pub reorgs: u64,
    /// Deepest revert observed.
    pub max_reorg_depth: u64,
    /// Total blocks reverted across all reorgs.
    pub blocks_reverted: u64,
    /// Blocks that failed state validation.
    pub invalid_blocks: u64,
    /// Orphans evicted by the pool cap (see
    /// [`BlockTree::set_orphan_cap`](crate::BlockTree::set_orphan_cap)).
    pub orphans_evicted: u64,
    /// Unblocked orphans rejected by structural checks.
    pub orphans_rejected: u64,
    /// Histogram of revert depths: `reorg_depth_hist[d]` counts reorgs that
    /// reverted exactly `d` blocks (depth ≥ 15 lands in the last bucket).
    pub reorg_depth_hist: [u64; 16],
    /// Broken internal invariants survived at runtime (e.g. a canonical
    /// hash missing from the store). Always 0 in a healthy run; the
    /// determinism harness asserts it stays that way.
    pub internal_errors: u64,
}

/// Incrementally maintained statistics about the *current* canonical chain,
/// updated by O(delta) work on every apply/revert instead of a full-chain
/// walk at query time. Genesis is excluded (it carries only a zero-value
/// coinbase).
///
/// Invariant: after every import, these totals are exactly what a fresh
/// walk of [`Chain::canonical`] would produce — reorgs shed the abandoned
/// branch's contribution and absorb the new branch's, and the invalid-block
/// recovery path restores the old branch's contribution along with its
/// state. The store proptests pin this equivalence across backends.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CanonStats {
    /// Canonical blocks above genesis.
    pub blocks: u64,
    /// Committed transactions on the canonical chain, coinbases excluded —
    /// the numerator of every throughput metric.
    pub committed_txs: u64,
    /// Total fees offered by canonical transactions.
    pub total_fees: u128,
    /// Per-canonical-block contribution, so a revert can subtract exactly
    /// what the apply added without re-reading the body.
    per_block: BTreeMap<Hash256, BlockDelta>,
}

/// One canonical block's contribution to [`CanonStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockDelta {
    txs: u32,
    fees: u128,
}

impl CanonStats {
    fn absorb(&mut self, hash: Hash256, block: &Block) {
        let delta = BlockDelta {
            txs: block
                .txs
                .iter()
                .filter(|t| !matches!(t, Transaction::Coinbase { .. }))
                .count() as u32,
            fees: u128::from(block.offered_fees()),
        };
        self.blocks += 1;
        self.committed_txs += u64::from(delta.txs);
        self.total_fees += delta.fees;
        self.per_block.insert(hash, delta);
    }

    /// Removes one block's contribution; `false` if it was never absorbed
    /// (a broken invariant the caller counts instead of panicking on).
    fn shed(&mut self, hash: &Hash256) -> bool {
        let Some(delta) = self.per_block.remove(hash) else {
            return false;
        };
        self.blocks -= 1;
        self.committed_txs -= u64::from(delta.txs);
        self.total_fees -= delta.fees;
        true
    }

    /// Committed (non-coinbase) transactions in the given canonical block;
    /// `None` if the block is not canonical (or is genesis).
    pub fn block_txs(&self, hash: &Hash256) -> Option<u32> {
        self.per_block.get(hash).map(|d| d.txs)
    }
}

/// The chain manager, generic over the block-record backend (archival by
/// default). See the crate docs for an example.
#[derive(Debug)]
pub struct Chain<M: StateMachine, S: BlockStore = ArchivalStore> {
    tree: BlockTree<S>,
    config: ChainConfig,
    machine: M,
    canonical: Vec<Hash256>,
    undos: Vec<M::Undo>,
    receipts: Vec<(Hash256, Vec<Receipt>)>,
    invalid: BTreeSet<Hash256>,
    stats: ChainStats,
    canon_stats: CanonStats,
    pipeline: Option<Arc<VerifyPipeline>>,
    tracer: Tracer,
    metrics: Option<crate::ChainMetrics>,
    /// Highest finalized height already traced, so [`Chain::import_at`]
    /// emits each [`TraceEvent::Finalized`] height exactly once.
    traced_finalized: u64,
    /// When true, `Seal::Work` headers must actually hash below their
    /// difficulty target (real grinding; used by low-difficulty tests).
    pub check_pow_hash: bool,
    /// When true, blocks exceeding the local `block_tx_limit` are rejected —
    /// the node-version-dependent rule behind hard forks (§3.1).
    pub enforce_block_limit: bool,
}

impl<M: StateMachine> Chain<M> {
    /// Creates an archival chain at `genesis` with the given config and
    /// machine.
    pub fn new(genesis: impl Into<Arc<Block>>, config: ChainConfig, machine: M) -> Self {
        Self::with_store(genesis, config, machine, ArchivalStore::default())
    }
}

impl<M: StateMachine, S: BlockStore> Chain<M, S> {
    /// Creates a chain over the given record backend — e.g.
    /// [`PrunedStore`](crate::PrunedStore) for a body-pruning node.
    pub fn with_store(
        genesis: impl Into<Arc<Block>>,
        config: ChainConfig,
        machine: M,
        store: S,
    ) -> Self {
        let tree = BlockTree::with_store(genesis, store);
        let gh = tree.genesis();
        Chain {
            tree,
            config,
            machine,
            canonical: vec![gh],
            undos: Vec::new(),
            receipts: Vec::new(),
            invalid: BTreeSet::new(),
            stats: ChainStats::default(),
            canon_stats: CanonStats::default(),
            pipeline: None,
            tracer: Tracer::disabled(),
            metrics: None,
            traced_finalized: 0,
            check_pow_hash: false,
            enforce_block_limit: false,
        }
    }

    /// Installs a tracer; [`Chain::import_at`] emits import, orphan, reorg,
    /// and finality events through it. Disabled by default.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The chain tracer (disabled unless [`Chain::set_tracer`] ran).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Installs live metrics; [`Chain::import`] bumps import-outcome
    /// counters and head-position gauges through them. Updates are relaxed
    /// atomic stores off the acceptance logic — installing metrics never
    /// changes which blocks are accepted (DESIGN.md §16).
    pub fn set_metrics(&mut self, metrics: crate::ChainMetrics) {
        self.metrics = Some(metrics);
    }

    /// The installed chain metrics, if any.
    pub fn metrics(&self) -> Option<&crate::ChainMetrics> {
        self.metrics.as_ref()
    }

    /// Routes the per-import body check (transaction ids + Merkle root)
    /// through a verification pipeline: ids are computed on the pipeline's
    /// worker pool and the root via parallel level hashing. The accepted
    /// block set is unchanged — the same root comparison gates the same
    /// [`ChainError::BadTxRoot`] — and the tree's serial recomputation is
    /// skipped so each body is hashed exactly once.
    pub fn with_pipeline(mut self, pipeline: Arc<VerifyPipeline>) -> Self {
        self.set_pipeline(pipeline);
        self
    }

    /// See [`Chain::with_pipeline`].
    pub fn set_pipeline(&mut self, pipeline: Arc<VerifyPipeline>) {
        self.pipeline = Some(pipeline);
        self.tree.check_tx_roots = false;
    }

    /// The verification pipeline, if one is attached.
    pub fn pipeline(&self) -> Option<&Arc<VerifyPipeline>> {
        self.pipeline.as_ref()
    }

    /// The underlying block tree.
    pub fn tree(&self) -> &BlockTree<S> {
        &self.tree
    }

    /// Mutable access to the block tree (orphan-cap tuning, test setup).
    pub fn tree_mut(&mut self) -> &mut BlockTree<S> {
        &mut self.tree
    }

    /// The chain configuration.
    pub fn config(&self) -> &ChainConfig {
        &self.config
    }

    /// The application state machine.
    pub fn machine(&self) -> &M {
        &self.machine
    }

    /// Mutable access to the application state machine (read-only queries
    /// that need `&mut` internally, test setup).
    pub fn machine_mut(&mut self) -> &mut M {
        &mut self.machine
    }

    /// Current tip hash.
    pub fn tip_hash(&self) -> Hash256 {
        // `canonical` starts at genesis and pops never reach below it.
        self.canonical
            .last()
            .copied()
            .unwrap_or_else(|| self.tree.genesis())
    }

    /// Current tip block.
    pub fn tip(&self) -> &Block {
        // Genesis is always stored, and `tip_hash` falls back to it.
        self.tree.get(&self.tip_hash()).expect("tip stored").block() // dcs-lint: allow(panic-path)
    }

    /// Height of the canonical tip.
    pub fn height(&self) -> u64 {
        self.canonical.len() as u64 - 1
    }

    /// The canonical hash at `height`, if within the chain.
    pub fn canonical_at(&self, height: u64) -> Option<Hash256> {
        self.canonical.get(height as usize).copied()
    }

    /// The full canonical chain, genesis first.
    pub fn canonical(&self) -> &[Hash256] {
        &self.canonical
    }

    /// True if `hash` is on the canonical chain.
    pub fn is_canonical(&self, hash: &Hash256) -> bool {
        self.tree
            .get(hash)
            .is_some_and(|sb| self.canonical_at(sb.height()) == Some(*hash))
    }

    /// Consistency statistics so far (orphan-pool counters folded in from
    /// the tree).
    pub fn stats(&self) -> ChainStats {
        let mut stats = self.stats;
        stats.orphans_evicted = self.tree.orphans_evicted();
        stats.orphans_rejected = self.tree.orphans_rejected();
        stats
    }

    /// Incremental statistics about the current canonical chain — O(1) at
    /// query time where a naive implementation walks every canonical body.
    pub fn canon_stats(&self) -> &CanonStats {
        &self.canon_stats
    }

    /// Blocks in the tree that are not on the canonical chain (the paper's
    /// "branches"; Ethereum's uncles). Orphans are not counted.
    pub fn stale_blocks(&self) -> u64 {
        self.tree.len() as u64 - self.canonical.len() as u64
    }

    /// Receipts for every canonical block applied so far, in application
    /// order, drained by the caller (the middleware event bus consumes
    /// these).
    pub fn drain_receipts(&mut self) -> Vec<(Hash256, Vec<Receipt>)> {
        std::mem::take(&mut self.receipts)
    }

    /// A Bitcoin-style block locator: canonical hashes sampled newest
    /// first, dense for the most recent ten then at exponentially growing
    /// gaps, always ending at genesis. A peer receiving this finds the
    /// highest entry on its own canonical chain — the sync common ancestor —
    /// in O(log chain) entries regardless of how far the asker is behind.
    pub fn locator(&self) -> Vec<Hash256> {
        let mut locator = Vec::new();
        let mut step = 1u64;
        let mut h = self.height();
        loop {
            if let Some(hash) = self.canonical_at(h) {
                locator.push(hash);
            }
            if h == 0 {
                break;
            }
            if locator.len() >= 10 {
                step = step.saturating_mul(2);
            }
            h = h.saturating_sub(step);
        }
        locator
    }

    /// Serves a locator-based range request: finds the highest locator
    /// entry on this chain's canonical branch (falling back to genesis)
    /// and returns up to `max` consecutive canonical blocks above it,
    /// oldest first, plus this chain's tip height. Stops early at a body a
    /// pruning store dropped — an empty reply with a higher tip height
    /// tells the asker to re-target an archival peer.
    pub fn blocks_after(&self, locator: &[Hash256], max: usize) -> (Vec<Arc<Block>>, u64) {
        let start = locator
            .iter()
            .find(|h| self.is_canonical(h))
            .and_then(|h| self.tree.get(h).map(|sb| sb.height()))
            .unwrap_or(0);
        let mut blocks = Vec::new();
        for h in (start + 1)..=self.height() {
            if blocks.len() >= max {
                break;
            }
            let Some(body) = self
                .canonical_at(h)
                .and_then(|hash| self.tree.get(&hash).and_then(|sb| sb.body().cloned()))
            else {
                break;
            };
            blocks.push(body);
        }
        (blocks, self.height())
    }

    /// Cold-rebuilds the canonical state from the block store — the
    /// restart path after a crash: the store (headers, work, bodies) is
    /// the durable part of a node, while the state machine, undo stack,
    /// and canonical index are in-memory and lost. Re-runs fork choice
    /// from genesis over the stored tree with a fresh `machine` and
    /// re-applies the winning branch. Consistency counters survive;
    /// receipts replayed here are discarded (they were delivered before
    /// the crash). The winning branch's bodies must be resident, which
    /// holds for archival stores and for pruning stores above the finality
    /// horizon.
    ///
    /// # Errors
    ///
    /// [`ChainError::Internal`] if the stored tree is inconsistent (e.g. a
    /// canonical-path body is missing).
    pub fn rebuild_from_store(&mut self, machine: M) -> Result<(), ChainError> {
        self.machine = machine;
        self.canonical.truncate(1);
        self.undos.clear();
        self.receipts.clear();
        self.canon_stats = CanonStats::default();
        // The one-shot genesis→tip apply below is replay, not new history:
        // keep the lifetime consistency stats as they were.
        let saved = self.stats;
        let result = self.update_head();
        self.stats = saved;
        self.receipts.clear();
        result.map(|_| ())
    }

    fn check_seal(&self, block: &Block) -> Result<(), ChainError> {
        if self.check_pow_hash && !block.header.meets_pow_target() {
            return Err(ChainError::BadSeal(
                "header hash does not meet its difficulty target".into(),
            ));
        }
        Ok(())
    }

    /// Node-local consensus-rule validation. This is where hard forks live
    /// (paper §3.1: "hard forks when new versions of blockchain code are
    /// incompatible with previous ones"): a node running an older rule set
    /// (e.g. a smaller `block_tx_limit`, cf. Segwit2x \[42\]) rejects blocks
    /// its peers accept, and the user base divides.
    fn check_rules(&self, block: &Block) -> Result<(), ChainError> {
        if self.enforce_block_limit && block.txs.len() > self.config.block_tx_limit + 1 {
            // +1: the coinbase rides on top of the client-tx limit.
            return Err(ChainError::BadTransaction(format!(
                "block carries {} transactions, local rule allows {}",
                block.txs.len(),
                self.config.block_tx_limit + 1
            )));
        }
        Ok(())
    }

    /// Parallel replacement for the tree's serial transaction-root check,
    /// active when a pipeline is attached: the block's (cached, multi-lane
    /// batch-hashed) ids feed Merkle levels that hash in parallel.
    /// Bit-identical decision to `Block::verify_tx_root`.
    fn check_body(&self, block: &Block) -> Result<(), ChainError> {
        let Some(pipeline) = &self.pipeline else {
            return Ok(()); // BlockTree::insert performs the serial check
        };
        if merkle_root_with(block.tx_ids(), pipeline.pool()) != block.header.tx_root {
            return Err(ChainError::BadTxRoot);
        }
        Ok(())
    }

    /// Imports a block: stores it, recomputes fork choice, and applies or
    /// reorgs the state machine as needed. Accepts either an owned
    /// [`Block`] or an [`Arc<Block>`]; in the latter case the block is
    /// shared with the tree at zero copies — gossip, storage, and serving
    /// all bump the same refcount.
    ///
    /// # Errors
    ///
    /// Structural errors ([`ChainError::Duplicate`], bad height/root/seal).
    /// `UnknownParent` is *not* an error here — the block is parked and
    /// [`ChainEvent::Orphaned`] is returned.
    pub fn import(&mut self, block: impl Into<Arc<Block>>) -> Result<ChainEvent, ChainError> {
        let block = block.into();
        self.check_seal(&block)?;
        self.check_rules(&block)?;
        self.check_body(&block)?;
        let inserted = self.tree.insert_or_orphan(block)?;
        if inserted.is_empty() {
            if let Some(m) = &self.metrics {
                m.record(
                    &ChainEvent::Orphaned,
                    self.height(),
                    self.config.confirmation_depth,
                );
            }
            return Ok(ChainEvent::Orphaned);
        }
        let old_tip = self.tip_hash();
        let event = self.update_head()?;
        // If nothing changed, the imported block landed on a side branch.
        let event = match event {
            Some(ev) => ev,
            None => {
                debug_assert_eq!(self.tip_hash(), old_tip);
                ChainEvent::SideChain { block: inserted[0] }
            }
        };
        if let Some(m) = &self.metrics {
            m.record(&event, self.height(), self.config.confirmation_depth);
        }
        Ok(event)
    }

    /// [`Chain::import`] plus trace emission: records import, orphan,
    /// reorg, and finality-advance events at sim time `at_us` through the
    /// installed tracer. With no tracer installed this is exactly
    /// `import` — the hash/height pre-computation is skipped too.
    ///
    /// # Errors
    ///
    /// Same as [`Chain::import`].
    pub fn import_at(
        &mut self,
        block: impl Into<Arc<Block>>,
        at_us: u64,
    ) -> Result<ChainEvent, ChainError> {
        let block = block.into();
        if !self.tracer.is_enabled() {
            return self.import(block);
        }
        let id = TraceId(block.hash().into_bytes());
        let height = block.header.height;
        let event = self.import(block)?;
        match &event {
            ChainEvent::Extended { .. } => self.tracer.emit(
                at_us,
                TraceEvent::BlockImported {
                    block: id,
                    height,
                    outcome: ImportOutcome::Extended,
                },
            ),
            ChainEvent::SideChain { .. } => self.tracer.emit(
                at_us,
                TraceEvent::BlockImported {
                    block: id,
                    height,
                    outcome: ImportOutcome::SideChain,
                },
            ),
            ChainEvent::Orphaned => self
                .tracer
                .emit(at_us, TraceEvent::BlockOrphaned { block: id }),
            ChainEvent::Reorg {
                reverted, applied, ..
            } => {
                self.tracer.emit(
                    at_us,
                    TraceEvent::Reorg {
                        reverted: *reverted,
                        applied: *applied,
                    },
                );
                self.tracer.emit(
                    at_us,
                    TraceEvent::BlockImported {
                        block: id,
                        height,
                        outcome: ImportOutcome::Extended,
                    },
                );
            }
        }
        let finalized = self.height().saturating_sub(self.config.confirmation_depth);
        if finalized > self.traced_finalized {
            self.traced_finalized = finalized;
            self.tracer
                .emit(at_us, TraceEvent::Finalized { height: finalized });
        }
        Ok(event)
    }

    /// Pops the canonical tip, reverting the machine and shedding its stats
    /// contribution. Does not touch the block body, so reverts work even
    /// across bodies a pruning store has dropped.
    ///
    /// # Errors
    ///
    /// [`ChainError::Internal`] if the canonical/undo stacks are out of
    /// sync — a broken invariant that is reported, not panicked on.
    fn pop_canonical(&mut self) -> Result<(), ChainError> {
        let Some(hash) = self.canonical.pop() else {
            return Err(ChainError::Internal("revert reached below genesis"));
        };
        let Some(undo) = self.undos.pop() else {
            return Err(ChainError::Internal("canonical block without an undo"));
        };
        self.machine.revert_block(undo);
        if !self.canon_stats.shed(&hash) {
            self.stats.internal_errors += 1;
        }
        Ok(())
    }

    /// Recomputes the best tip and moves the state machine onto it.
    /// Returns `None` if the head did not move.
    fn update_head(&mut self) -> Result<Option<ChainEvent>, ChainError> {
        loop {
            let invalid = &self.invalid;
            let tree = &self.tree;
            let new_tip = best_tip_with(tree, self.config.fork_choice, |h| {
                // A tip is viable if no block on its path back to the first
                // known-canonical ancestor is invalid.
                let mut cur = *h;
                loop {
                    if invalid.contains(&cur) {
                        return false;
                    }
                    // A tip whose path is not fully stored is not viable.
                    let Some(sb) = tree.get(&cur) else {
                        return false;
                    };
                    if sb.height() == 0 {
                        return true;
                    }
                    cur = sb.header().parent;
                }
            });
            let old_tip = self.tip_hash();
            if new_tip == old_tip {
                return Ok(None);
            }
            let ancestor = self.tree.common_ancestor(&old_tip, &new_tip);
            let anc_height = self
                .tree
                .get(&ancestor)
                .ok_or(ChainError::Internal("common ancestor not stored"))?
                .height();

            // Revert the old branch down to the ancestor.
            let mut reverted = 0u64;
            while self.height() > anc_height {
                self.pop_canonical()?;
                reverted += 1;
            }

            // Apply the new branch upward from the ancestor.
            let mut to_apply = Vec::new();
            let mut cur = new_tip;
            while cur != ancestor {
                to_apply.push(cur);
                cur = self
                    .tree
                    .get(&cur)
                    .ok_or(ChainError::Internal("new-branch block not stored"))?
                    .header()
                    .parent;
            }
            to_apply.reverse();

            let mut applied = 0u64;
            let mut failure: Option<Hash256> = None;
            for hash in &to_apply {
                // Refcount bump, not a body copy: applying a 10k-tx block
                // costs the same as a 0-tx block on this line.
                let block = Arc::clone(
                    self.tree
                        .get(hash)
                        .ok_or(ChainError::Internal("apply-path block not stored"))?
                        .block(),
                );
                match self.machine.apply_block(&block) {
                    Ok((receipts, undo)) => {
                        // Verify the header's state commitment when present.
                        if block.header.state_root != Hash256::ZERO
                            && self.machine.state_root() != block.header.state_root
                        {
                            self.machine.revert_block(undo);
                            failure = Some(*hash);
                            break;
                        }
                        self.canonical.push(*hash);
                        self.undos.push(undo);
                        self.receipts.push((*hash, receipts));
                        self.canon_stats.absorb(*hash, &block);
                        applied += 1;
                    }
                    Err(_reason) => {
                        failure = Some(*hash);
                        break;
                    }
                }
            }

            if let Some(bad) = failure {
                // Poison the failing block, roll everything back to the
                // ancestor, restore the old branch, and retry fork choice.
                self.invalid.insert(bad);
                self.stats.invalid_blocks += 1;
                while self.height() > anc_height {
                    self.pop_canonical()?;
                }
                // Restore the old branch exactly as it was.
                let mut old_branch = Vec::new();
                let mut cur = old_tip;
                while cur != ancestor {
                    old_branch.push(cur);
                    cur = self
                        .tree
                        .get(&cur)
                        .ok_or(ChainError::Internal("old-branch block not stored"))?
                        .header()
                        .parent;
                }
                old_branch.reverse();
                for hash in old_branch {
                    let block = Arc::clone(
                        self.tree
                            .get(&hash)
                            .ok_or(ChainError::Internal("old-branch block not stored"))?
                            .block(),
                    );
                    let (receipts, undo) = self
                        .machine
                        .apply_block(&block)
                        .map_err(ChainError::BadTransaction)?;
                    let _ = receipts; // already delivered the first time
                    self.canonical.push(hash);
                    self.undos.push(undo);
                    self.canon_stats.absorb(hash, &block);
                }
                continue; // re-run fork choice without the poisoned block
            }

            let event = if reverted == 0 && applied == 1 {
                ChainEvent::Extended { block: new_tip }
            } else {
                self.stats.reorgs += 1;
                self.stats.max_reorg_depth = self.stats.max_reorg_depth.max(reverted);
                self.stats.blocks_reverted += reverted;
                self.stats.reorg_depth_hist[(reverted as usize).min(15)] += 1;
                ChainEvent::Reorg {
                    reverted,
                    applied,
                    new_tip,
                }
            };
            // The head moved: advance the backend's finality horizon so a
            // pruning store can drop bodies `confirmation_depth` behind it.
            let finalized = self.height().saturating_sub(self.config.confirmation_depth);
            self.tree.note_finalized(finalized);
            return Ok(Some(event));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::PrunedStore;
    use dcs_crypto::Address;
    use dcs_primitives::{AccountTx, BlockHeader, Seal, Transaction};

    fn cfg() -> ChainConfig {
        ChainConfig::bitcoin_like()
    }

    fn child(parent: &Block, salt: u64) -> Block {
        Block::new(
            BlockHeader::new(
                parent.hash(),
                parent.header.height + 1,
                salt,
                Address::from_index(salt),
                Seal::None,
            ),
            vec![],
        )
    }

    fn new_chain() -> (Chain<NullMachine>, Block) {
        let g = crate::genesis_block(&cfg());
        (Chain::new(g.clone(), cfg(), NullMachine), g)
    }

    /// Recomputes [`CanonStats`] the slow way, for equivalence checks.
    fn recompute<M: StateMachine, S: BlockStore>(chain: &Chain<M, S>) -> CanonStats {
        let mut stats = CanonStats::default();
        for hash in chain.canonical().iter().skip(1) {
            let block = chain.tree().get(hash).unwrap().block();
            stats.absorb(*hash, block);
        }
        stats
    }

    #[test]
    fn extension_and_receipts() {
        let (mut chain, g) = new_chain();
        let b1 = child(&g, 1);
        let ev = chain.import(b1.clone()).unwrap();
        assert_eq!(ev, ChainEvent::Extended { block: b1.hash() });
        assert_eq!(chain.height(), 1);
        assert_eq!(chain.tip_hash(), b1.hash());
        let receipts = chain.drain_receipts();
        assert_eq!(receipts.len(), 1);
        assert_eq!(receipts[0].0, b1.hash());
        assert!(chain.drain_receipts().is_empty(), "drained");
    }

    #[test]
    fn import_shares_the_arc() {
        let (mut chain, g) = new_chain();
        let b1 = Arc::new(child(&g, 1));
        chain.import(Arc::clone(&b1)).unwrap();
        assert!(Arc::ptr_eq(
            chain.tree().get(&b1.hash()).unwrap().block(),
            &b1
        ));
    }

    #[test]
    fn import_at_traces_imports_reorgs_and_finality_once() {
        use dcs_trace::TraceConfig;
        let (mut chain, g) = new_chain();
        chain.set_tracer(Tracer::new(0, &TraceConfig::full()));
        let depth = chain.config().confirmation_depth;

        // a-branch of 2, then a b-branch of 3 forces a reorg.
        let a1 = child(&g, 1);
        let a2 = child(&a1, 2);
        let b1 = child(&g, 10);
        let b2 = child(&b1, 11);
        let b3 = child(&b2, 12);
        chain.import_at(a1, 100).unwrap();
        chain.import_at(a2, 200).unwrap();
        chain.import_at(b1.clone(), 300).unwrap();
        chain.import_at(b2, 400).unwrap();
        chain.import_at(b3.clone(), 500).unwrap();

        let evs: Vec<TraceEvent> = chain.tracer().records().map(|r| r.event).collect();
        assert!(evs.contains(&TraceEvent::Reorg {
            reverted: 2,
            applied: 3
        }));
        assert!(evs.contains(&TraceEvent::BlockImported {
            block: TraceId(b1.hash().into_bytes()),
            height: 1,
            outcome: ImportOutcome::SideChain,
        }));
        // An orphan is traced as such.
        let far = child(&b3, 99);
        let orphan = child(&far, 100);
        chain.import_at(orphan.clone(), 600).unwrap();
        assert!(chain.tracer().records().any(|r| r.event
            == TraceEvent::BlockOrphaned {
                block: TraceId(orphan.hash().into_bytes())
            }));

        // Extend past the confirmation depth: each finalized height is
        // emitted exactly once.
        let mut tip = b3;
        for i in 0..depth + 2 {
            tip = child(&tip, 200 + i);
            chain.import_at(tip.clone(), 1_000 + i).unwrap();
        }
        let finals: Vec<u64> = chain
            .tracer()
            .records()
            .filter_map(|r| match r.event {
                TraceEvent::Finalized { height } => Some(height),
                _ => None,
            })
            .collect();
        let expect: Vec<u64> = (1..=chain.height() - depth).collect();
        assert_eq!(finals, expect, "each height finalized exactly once");
    }

    #[test]
    fn side_chain_then_reorg() {
        let (mut chain, g) = new_chain();
        let a1 = child(&g, 1);
        let b1 = child(&g, 10);
        let b2 = child(&b1, 11);
        chain.import(a1.clone()).unwrap();
        let ev = chain.import(b1.clone()).unwrap();
        assert_eq!(ev, ChainEvent::SideChain { block: b1.hash() });
        assert_eq!(chain.tip_hash(), a1.hash());

        // b2 makes the b-branch longer → reorg of depth 1.
        let ev = chain.import(b2.clone()).unwrap();
        assert_eq!(
            ev,
            ChainEvent::Reorg {
                reverted: 1,
                applied: 2,
                new_tip: b2.hash()
            }
        );
        assert_eq!(chain.canonical(), &[g.hash(), b1.hash(), b2.hash()]);
        assert_eq!(chain.stats().reorgs, 1);
        assert_eq!(chain.stats().max_reorg_depth, 1);
        assert_eq!(chain.stale_blocks(), 1); // a1
        assert!(chain.is_canonical(&b1.hash()));
        assert!(!chain.is_canonical(&a1.hash()));
    }

    #[test]
    fn orphan_import_then_connect() {
        let (mut chain, g) = new_chain();
        let b1 = child(&g, 1);
        let b2 = child(&b1, 2);
        assert_eq!(chain.import(b2.clone()).unwrap(), ChainEvent::Orphaned);
        assert_eq!(chain.height(), 0);
        let ev = chain.import(b1.clone()).unwrap();
        // b1 connects and pulls in b2 → head jumps two blocks.
        assert!(matches!(
            ev,
            ChainEvent::Reorg {
                reverted: 0,
                applied: 2,
                ..
            }
        ));
        assert_eq!(chain.tip_hash(), b2.hash());
    }

    #[test]
    fn duplicate_rejected() {
        let (mut chain, g) = new_chain();
        let b1 = child(&g, 1);
        chain.import(b1.clone()).unwrap();
        assert_eq!(chain.import(b1), Err(ChainError::Duplicate));
    }

    #[test]
    fn canon_stats_track_extensions_and_reorgs() {
        let (mut chain, g) = new_chain();
        let tx = |v| {
            Transaction::Account(AccountTx::transfer(
                Address::from_index(1),
                Address::from_index(2),
                v,
                0,
            ))
        };
        let with_txs = |parent: &Block, salt: u64, n: u64| {
            Block::new(
                BlockHeader::new(
                    parent.hash(),
                    parent.header.height + 1,
                    salt,
                    Address::from_index(salt),
                    Seal::None,
                ),
                (0..n).map(|i| tx(salt * 100 + i)).collect(),
            )
        };
        let a1 = with_txs(&g, 1, 3);
        let b1 = with_txs(&g, 10, 2);
        let b2 = with_txs(&b1, 11, 5);
        chain.import(a1.clone()).unwrap();
        assert_eq!(chain.canon_stats().committed_txs, 3);
        assert_eq!(chain.canon_stats().block_txs(&a1.hash()), Some(3));

        chain.import(b1.clone()).unwrap(); // side chain: stats unchanged
        assert_eq!(chain.canon_stats().committed_txs, 3);

        chain.import(b2.clone()).unwrap(); // reorg onto the b-branch
        assert_eq!(chain.canon_stats().committed_txs, 7);
        assert_eq!(chain.canon_stats().blocks, 2);
        assert_eq!(chain.canon_stats().block_txs(&a1.hash()), None, "shed");
        assert_eq!(chain.canon_stats().block_txs(&b2.hash()), Some(5));
        assert_eq!(
            *chain.canon_stats(),
            recompute(&chain),
            "incremental ≡ walk"
        );
        assert!(chain.canon_stats().total_fees > 0);
    }

    #[test]
    fn pruned_backend_matches_archival_decisions() {
        let g = crate::genesis_block(&cfg());
        let mut archival = Chain::new(g.clone(), cfg(), NullMachine);
        let mut pruned = Chain::with_store(g.clone(), cfg(), NullMachine, PrunedStore::new(2));
        let mut parent = g.clone();
        for h in 1..=20u64 {
            let b = child(&parent, h);
            assert_eq!(
                archival.import(b.clone()).unwrap(),
                pruned.import(b.clone()).unwrap()
            );
            parent = b;
        }
        assert_eq!(archival.tip_hash(), pruned.tip_hash());
        assert_eq!(archival.canonical(), pruned.canonical());
        assert_eq!(archival.canon_stats(), pruned.canon_stats());
        // confirmation_depth 6 + keep_depth 2: bodies below 20-6-2=12 pruned.
        let stats = pruned.tree().store_stats();
        assert_eq!(stats.bodies_pruned, 12);
        assert!(stats.resident_body_bytes < archival.tree().store_stats().resident_body_bytes);
    }

    /// A state machine that rejects blocks containing any account tx whose
    /// value is 666, to exercise the invalid-branch recovery path.
    #[derive(Debug, Default)]
    struct Picky {
        applied: Vec<Hash256>,
    }

    impl StateMachine for Picky {
        type Undo = Hash256;

        fn apply_block(&mut self, block: &Block) -> Result<(Vec<Receipt>, Hash256), String> {
            for tx in &block.txs {
                if let Transaction::Account(a) = tx {
                    if a.value == 666 {
                        return Err("cursed value".into());
                    }
                }
            }
            let h = block.hash();
            self.applied.push(h);
            Ok((vec![], h))
        }

        fn revert_block(&mut self, undo: Hash256) {
            assert_eq!(self.applied.pop(), Some(undo), "LIFO revert order");
        }

        fn state_root(&self) -> Hash256 {
            Hash256::ZERO
        }
    }

    #[test]
    fn invalid_branch_is_poisoned_and_old_branch_restored() {
        let g = crate::genesis_block(&cfg());
        let mut chain = Chain::new(g.clone(), cfg(), Picky::default());
        let a1 = child(&g, 1);
        chain.import(a1.clone()).unwrap();

        // Build a longer branch whose middle block is invalid.
        let b1 = child(&g, 10);
        let cursed = Transaction::Account(AccountTx::transfer(
            Address::from_index(1),
            Address::from_index(2),
            666,
            0,
        ));
        let b2 = Block::new(
            BlockHeader::new(b1.hash(), 2, 11, Address::from_index(11), Seal::None),
            vec![cursed],
        );
        let b3 = child(&b2, 12);

        chain.import(b1.clone()).unwrap();
        chain.import(b2.clone()).unwrap();
        let _ = chain.import(b3.clone()).unwrap();

        // The cursed branch must not win; a1 remains the tip.
        assert_eq!(chain.tip_hash(), a1.hash());
        assert_eq!(chain.stats().invalid_blocks, 1);
        assert_eq!(chain.machine().applied, vec![a1.hash()]);
        // Stats restored along with the old branch.
        assert_eq!(*chain.canon_stats(), recompute(&chain));
    }

    #[test]
    fn pipelined_body_check_matches_serial_decisions() {
        // Serial chain and pipelined chain must accept and reject the same
        // blocks, and land on identical canonical chains.
        let g = crate::genesis_block(&cfg());
        let mut serial = Chain::new(g.clone(), cfg(), NullMachine);
        let mut piped = Chain::new(g.clone(), cfg(), NullMachine)
            .with_pipeline(std::sync::Arc::new(VerifyPipeline::new(4, 0)));

        let tx = |v| {
            Transaction::Account(AccountTx::transfer(
                Address::from_index(1),
                Address::from_index(2),
                v,
                0,
            ))
        };
        let b1 = Block::new(
            BlockHeader::new(g.hash(), 1, 1, Address::from_index(1), Seal::None),
            (0..10).map(tx).collect(),
        );
        assert_eq!(
            serial.import(b1.clone()).unwrap(),
            piped.import(b1.clone()).unwrap()
        );

        // A body/header mismatch is rejected by both, with the same error.
        let mut tampered = Block::new(
            BlockHeader::new(b1.hash(), 2, 2, Address::from_index(2), Seal::None),
            (10..14).map(tx).collect(),
        );
        tampered.txs.push(tx(99)); // body no longer matches the committed root
        assert_eq!(serial.import(tampered.clone()), Err(ChainError::BadTxRoot));
        assert_eq!(piped.import(tampered), Err(ChainError::BadTxRoot));

        let b2 = Block::new(
            BlockHeader::new(b1.hash(), 2, 2, Address::from_index(2), Seal::None),
            (10..14).map(tx).collect(),
        );
        serial.import(b2.clone()).unwrap();
        piped.import(b2).unwrap();
        assert_eq!(serial.canonical(), piped.canonical());
    }

    #[test]
    fn pipelined_chain_rejects_tampered_orphan_at_import() {
        // With a pipeline the body check runs at import even for orphans.
        let g = crate::genesis_block(&cfg());
        let mut chain = Chain::new(g.clone(), cfg(), NullMachine)
            .with_pipeline(std::sync::Arc::new(VerifyPipeline::serial()));
        let b1 = child(&g, 1);
        let mut orphan = child(&b1, 2);
        orphan.txs.push(Transaction::Account(AccountTx::transfer(
            Address::from_index(1),
            Address::from_index(2),
            5,
            0,
        )));
        assert_eq!(chain.import(orphan), Err(ChainError::BadTxRoot));
    }

    #[test]
    fn pow_hash_check_enforced_when_enabled() {
        let g = crate::genesis_block(&cfg());
        let mut chain = Chain::new(g.clone(), cfg(), NullMachine);
        chain.check_pow_hash = true;
        // A block claiming 16 difficulty bits without grinding will
        // essentially always fail the check.
        let block = Block::new(
            BlockHeader::new(
                g.hash(),
                1,
                1,
                Address::ZERO,
                Seal::Work {
                    nonce: 12345,
                    difficulty: 1 << 16,
                },
            ),
            vec![],
        );
        assert!(matches!(chain.import(block), Err(ChainError::BadSeal(_))));
    }

    #[test]
    fn ghost_rule_reorgs_toward_heavy_subtree() {
        let g = crate::genesis_block(&cfg());
        let mut config = cfg();
        config.fork_choice = dcs_primitives::ForkChoice::Ghost;
        let mut chain = Chain::new(g.clone(), config, NullMachine);
        let a1 = child(&g, 1);
        let a2 = child(&a1, 2);
        let b1 = child(&g, 10);
        let u1 = child(&b1, 11);
        let u2 = child(&b1, 12);
        let u3 = child(&b1, 13);
        chain.import(a1.clone()).unwrap();
        chain.import(a2.clone()).unwrap();
        chain.import(b1.clone()).unwrap();
        assert_eq!(chain.tip_hash(), a2.hash());
        chain.import(u1.clone()).unwrap();
        chain.import(u2.clone()).unwrap();
        chain.import(u3.clone()).unwrap();
        // Subtree under b1 now has 4 blocks vs 2 under a1 → GHOST switches.
        let tip = chain.tip_hash();
        assert!(
            [u1.hash(), u2.hash(), u3.hash()].contains(&tip),
            "tip should be inside the b-subtree"
        );
        assert_eq!(tip, u1.hash(), "first-seen tie-break among uncles");
    }

    #[test]
    fn locator_is_dense_then_exponential_and_ends_at_genesis() {
        let (mut chain, g) = new_chain();
        let mut tip = g.clone();
        for i in 0..100 {
            tip = child(&tip, i);
            chain.import(tip.clone()).unwrap();
        }
        let locator = chain.locator();
        assert_eq!(locator[0], chain.tip_hash());
        assert_eq!(*locator.last().unwrap(), g.hash());
        // Dense for the first ten entries: heights 100, 99, ..., 91.
        for (i, hash) in locator.iter().take(10).enumerate() {
            assert_eq!(chain.canonical_at(100 - i as u64), Some(*hash));
        }
        // O(log n) total: far fewer entries than blocks.
        assert!(locator.len() < 20, "locator has {} entries", locator.len());
        // Every entry is canonical.
        assert!(locator.iter().all(|h| chain.is_canonical(h)));

        // A fresh chain's locator is just genesis.
        let (fresh, g2) = new_chain();
        assert_eq!(fresh.locator(), vec![g2.hash()]);
    }

    #[test]
    fn blocks_after_serves_from_common_ancestor_in_batches() {
        let (mut chain, _g) = new_chain();
        let (mut behind, _) = new_chain();
        let mut tip = _g.clone();
        for i in 0..30 {
            tip = child(&tip, i);
            chain.import(tip.clone()).unwrap();
            if i < 12 {
                behind.import(tip.clone()).unwrap();
            }
        }
        let (blocks, tip_height) = chain.blocks_after(&behind.locator(), 8);
        assert_eq!(tip_height, 30);
        assert_eq!(blocks.len(), 8, "bounded batch");
        assert_eq!(blocks[0].header.height, 13, "starts above the asker's tip");
        for w in blocks.windows(2) {
            assert_eq!(w[1].header.parent, w[0].hash(), "consecutive canonical");
        }
        // An unknown locator falls back to genesis.
        let (from_genesis, _) = chain.blocks_after(&[], 5);
        assert_eq!(from_genesis[0].header.height, 1);
    }

    #[test]
    fn blocks_after_stops_at_pruned_bodies() {
        let mut config = cfg();
        config.confirmation_depth = 2;
        let g = crate::genesis_block(&config);
        let mut chain = Chain::with_store(g.clone(), config, NullMachine, PrunedStore::new(0));
        let mut tip = g;
        for i in 0..20 {
            tip = child(&tip, i);
            chain.import(tip.clone()).unwrap();
        }
        // Deep bodies are gone: a from-genesis request cannot be served.
        let (blocks, tip_height) = chain.blocks_after(&[], 50);
        assert_eq!(tip_height, 20);
        assert!(
            blocks.is_empty(),
            "pruned responder cannot serve deep history"
        );
    }

    #[test]
    fn rebuild_from_store_restores_canonical_state_and_keeps_stats() {
        let (mut chain, g) = new_chain();
        let coinbase = |height| Transaction::Coinbase {
            to: Address::from_index(9),
            value: 50,
            height,
        };
        let pay = |nonce| {
            Transaction::Account(AccountTx::transfer(
                Address::from_index(1),
                Address::from_index(2),
                5,
                nonce,
            ))
        };
        // A short fork so the reorg counter is non-zero before the crash.
        let a1 = child(&g, 1);
        let mut b1 = child(&g, 10);
        b1.txs = vec![coinbase(1), pay(0)];
        let b1 = Block::new(b1.header, b1.txs);
        let mut b2 = child(&b1, 11);
        b2.txs = vec![coinbase(2), pay(1)];
        let b2 = Block::new(b2.header, b2.txs);
        chain.import(a1).unwrap();
        chain.import(b1).unwrap();
        chain.import(b2).unwrap();
        chain.drain_receipts();

        let tip = chain.tip_hash();
        let canonical = chain.canonical().to_vec();
        let stats = chain.stats();
        let canon_stats = chain.canon_stats().clone();
        assert_eq!(stats.reorgs, 1);
        assert_eq!(canon_stats.committed_txs, 2);

        chain.rebuild_from_store(NullMachine).unwrap();

        assert_eq!(chain.tip_hash(), tip, "fork choice re-picks the same tip");
        assert_eq!(chain.canonical(), canonical.as_slice());
        assert_eq!(chain.stats(), stats, "consistency counters survive");
        assert_eq!(chain.canon_stats(), &canon_stats);
        assert!(
            chain.drain_receipts().is_empty(),
            "replayed receipts are not re-delivered"
        );
        // The rebuilt replica keeps working: it can extend its tip.
        let next = child(chain.tip(), 99);
        assert!(matches!(
            chain.import(next).unwrap(),
            ChainEvent::Extended { .. }
        ));
    }
}
