//! The system/data layer glue (§4.4–4.5 of the paper): block storage as a
//! tree, branch selection ("fork choice", §2.4), and a reorg-safe chain
//! manager that keeps an application state machine in sync with the
//! currently selected branch.
//!
//! The three branch-selection rules the paper discusses are implemented and
//! compared in experiment E2:
//!
//! * **Longest chain** — Nakamoto consensus (Bitcoin).
//! * **Heaviest work** — accumulate `2^difficulty` per block.
//! * **GHOST** — greedy heaviest-observed-subtree (Ethereum's answer to
//!   short block times, §2.7).
//!
//! # Examples
//!
//! ```
//! use dcs_chain::{BlockTree, Chain, NullMachine};
//! use dcs_primitives::{Block, BlockHeader, ChainConfig, Seal};
//! use dcs_crypto::Hash256;
//!
//! let cfg = ChainConfig::bitcoin_like();
//! let genesis = dcs_chain::genesis_block(&cfg);
//! let mut chain = Chain::new(genesis.clone(), cfg, NullMachine::default());
//! let child = Block::new(
//!     BlockHeader::new(genesis.hash(), 1, 1, dcs_crypto::Address::ZERO, Seal::None),
//!     vec![],
//! );
//! chain.import(child.clone()).unwrap();
//! assert_eq!(chain.tip_hash(), child.hash());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod forkchoice;
pub mod metrics;
pub mod store;

pub use chain::{CanonStats, Chain, ChainEvent, ChainStats, NullMachine, StateMachine};
pub use forkchoice::best_tip;
pub use metrics::ChainMetrics;
pub use store::{ArchivalStore, BlockStore, BlockTree, PrunedStore, StoreStats, StoredBlock};

use dcs_crypto::Address;
use dcs_primitives::{Block, BlockHeader, ChainConfig, Seal};

/// Errors from importing blocks into the chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// The block's parent is not (yet) known; the caller may hold it as an
    /// orphan and retry after syncing.
    UnknownParent(dcs_crypto::Hash256),
    /// The same block was imported twice (not an error in gossip settings,
    /// but reported so callers can count duplicates).
    Duplicate,
    /// The header height does not follow its parent.
    BadHeight {
        /// Height carried by the header.
        got: u64,
        /// Parent height + 1.
        expected: u64,
    },
    /// The body does not match the header's transaction Merkle root.
    BadTxRoot,
    /// The consensus seal failed verification.
    BadSeal(String),
    /// A transaction in the block failed state application.
    BadTransaction(String),
    /// The post-execution state root did not match the header commitment.
    BadStateRoot,
    /// A broken internal invariant was detected and survived (e.g. a
    /// canonical hash missing from the store). Never caused by peer input;
    /// counted in [`ChainStats::internal_errors`] so a healthy run can
    /// assert it stayed at zero.
    Internal(&'static str),
}

impl core::fmt::Display for ChainError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChainError::UnknownParent(h) => write!(f, "unknown parent {h}"),
            ChainError::Duplicate => write!(f, "duplicate block"),
            ChainError::BadHeight { got, expected } => {
                write!(f, "bad height {got}, expected {expected}")
            }
            ChainError::BadTxRoot => write!(f, "transaction root mismatch"),
            ChainError::BadSeal(msg) => write!(f, "bad seal: {msg}"),
            ChainError::BadTransaction(msg) => write!(f, "bad transaction: {msg}"),
            ChainError::BadStateRoot => write!(f, "state root mismatch"),
            ChainError::Internal(msg) => write!(f, "internal invariant broken: {msg}"),
        }
    }
}

impl std::error::Error for ChainError {}

/// Builds the deterministic genesis block for a configuration.
pub fn genesis_block(cfg: &ChainConfig) -> Block {
    Block::new(
        BlockHeader::new(dcs_crypto::Hash256::ZERO, 0, 0, Address::ZERO, Seal::None),
        vec![dcs_primitives::Transaction::Coinbase {
            to: Address::ZERO,
            value: 0,
            height: u64::from(cfg.chain_id), // make genesis unique per chain
        }],
    )
}
