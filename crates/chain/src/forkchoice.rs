//! Branch selection algorithms (§2.4 of the paper): given the block tree,
//! pick the tip every honest peer should build on. All three rules break
//! ties by earliest arrival (first-seen, as Bitcoin does), which keeps the
//! choice deterministic in the simulator.

use crate::store::{BlockStore, BlockTree};
use dcs_crypto::Hash256;
use dcs_primitives::ForkChoice;
use std::collections::BTreeMap;

/// Selects the best tip under the given rule.
///
/// # Examples
///
/// ```
/// use dcs_chain::{best_tip, BlockTree};
/// use dcs_primitives::{ChainConfig, ForkChoice};
///
/// let tree = BlockTree::new(dcs_chain::genesis_block(&ChainConfig::bitcoin_like()));
/// let tip = best_tip(&tree, ForkChoice::LongestChain);
/// assert_eq!(tip, tree.genesis());
/// ```
pub fn best_tip<S: BlockStore>(tree: &BlockTree<S>, rule: ForkChoice) -> Hash256 {
    best_tip_with(tree, rule, |_| true)
}

/// Like [`best_tip`], but only considers blocks accepted by `viable` —
/// used by the chain manager to route around blocks that failed state
/// validation. Operates on headers and tree metadata only, so it works
/// unchanged over a body-pruning backend.
pub fn best_tip_with<S: BlockStore>(
    tree: &BlockTree<S>,
    rule: ForkChoice,
    viable: impl Fn(&Hash256) -> bool,
) -> Hash256 {
    match rule {
        ForkChoice::LongestChain => extremal_tip(tree, |sb| u128::from(sb.header().height), viable),
        ForkChoice::HeaviestWork => extremal_tip(tree, |sb| sb.total_work, viable),
        ForkChoice::Ghost => ghost_tip(tree, viable),
    }
}

fn extremal_tip<S: BlockStore>(
    tree: &BlockTree<S>,
    score: impl Fn(&crate::store::StoredBlock) -> u128,
    viable: impl Fn(&Hash256) -> bool,
) -> Hash256 {
    let pick_best = |candidates: &mut dyn Iterator<Item = Hash256>| {
        let mut best: Option<(u128, u64, Hash256)> = None;
        for hash in candidates {
            if !viable(&hash) {
                continue;
            }
            // Candidates come from the tree itself; a miss would be a
            // broken invariant — skip the candidate rather than panic.
            let Some(sb) = tree.get(&hash) else {
                continue;
            };
            let key = (score(sb), sb.arrival, hash);
            match &best {
                None => best = Some(key),
                Some((s, a, _)) => {
                    // Higher score wins; on ties, earlier arrival wins.
                    if key.0 > *s || (key.0 == *s && key.1 < *a) {
                        best = Some(key);
                    }
                }
            }
        }
        best.map(|b| b.2)
    };
    if let Some(tip) = pick_best(&mut tree.tips().into_iter()) {
        return tip;
    }
    // Every leaf is non-viable (e.g. the only extension of the chain failed
    // validation): pick the best *interior* viable block instead — the
    // chain must never abandon already-valid history.
    pick_best(&mut tree.iter().map(crate::store::StoredBlock::hash))
        .unwrap_or_else(|| tree.genesis())
}

/// GHOST: starting from genesis, repeatedly step into the child whose
/// *subtree* carries the most blocks (not the longest path), until reaching
/// a leaf. Uncle blocks thus still contribute security even though they are
/// off the selected chain — which is why Ethereum tolerates 10–40 s blocks
/// (paper §2.7).
fn ghost_tip<S: BlockStore>(tree: &BlockTree<S>, viable: impl Fn(&Hash256) -> bool) -> Hash256 {
    // Precompute subtree sizes in one bottom-up pass to stay O(n).
    let mut sizes: BTreeMap<Hash256, u64> = BTreeMap::new();
    // Post-order traversal with an explicit stack.
    let mut stack = vec![(tree.genesis(), false)];
    while let Some((hash, expanded)) = stack.pop() {
        // Child links only point at stored blocks; skip on a broken link.
        let Some(sb) = tree.get(&hash) else {
            continue;
        };
        if expanded || sb.children.is_empty() {
            let size = 1 + sb
                .children
                .iter()
                .map(|c| sizes.get(c).copied().unwrap_or(0))
                .sum::<u64>();
            sizes.insert(hash, size);
        } else {
            stack.push((hash, true));
            for c in &sb.children {
                stack.push((*c, false));
            }
        }
    }
    let mut cur = tree.genesis();
    loop {
        let Some(sb) = tree.get(&cur) else {
            return cur;
        };
        if sb.children.is_empty() {
            return cur;
        }
        let mut best: Option<(u64, u64, Hash256)> = None;
        for &c in &sb.children {
            if !viable(&c) {
                continue;
            }
            let Some(child_sb) = tree.get(&c) else {
                continue;
            };
            let key = (sizes.get(&c).copied().unwrap_or(0), child_sb.arrival, c);
            match &best {
                None => best = Some(key),
                Some((s, a, _)) => {
                    if key.0 > *s || (key.0 == *s && key.1 < *a) {
                        best = Some(key);
                    }
                }
            }
        }
        // All children non-viable: stop here.
        match best {
            Some((_, _, next)) => cur = next,
            None => return cur,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_crypto::Address;
    use dcs_primitives::{Block, BlockHeader, ChainConfig, Seal};

    fn genesis() -> Block {
        crate::genesis_block(&ChainConfig::bitcoin_like())
    }

    fn child(parent: &Block, salt: u64, difficulty: u64) -> Block {
        Block::new(
            BlockHeader::new(
                parent.hash(),
                parent.header.height + 1,
                salt,
                Address::from_index(salt),
                Seal::Work {
                    nonce: salt,
                    difficulty,
                },
            ),
            vec![],
        )
    }

    /// Builds the classic GHOST example: a short branch with many siblings
    /// ("uncles") versus a longer but lighter branch.
    ///
    /// genesis ── a1 ── a2 ── a3          (longest chain, 3 deep)
    ///        └── b1 ── b2
    ///              ├── u1
    ///              ├── u2
    ///              └── u3                 (heavier subtree under b1)
    fn ghost_tree() -> (BlockTree, Block, Block) {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        let a1 = child(&g, 1, 1);
        let a2 = child(&a1, 2, 1);
        let a3 = child(&a2, 3, 1);
        let b1 = child(&g, 10, 1);
        let b2 = child(&b1, 11, 1);
        let u1 = child(&b1, 12, 1);
        let u2 = child(&b1, 13, 1);
        let u3 = child(&b1, 14, 1);
        for b in [&a1, &a2, &a3, &b1, &b2, &u1, &u2, &u3] {
            tree.insert(b.clone()).unwrap();
        }
        (tree, a3, b2)
    }

    #[test]
    fn genesis_only_tree_returns_genesis() {
        let tree = BlockTree::new(genesis());
        for rule in [
            ForkChoice::LongestChain,
            ForkChoice::HeaviestWork,
            ForkChoice::Ghost,
        ] {
            assert_eq!(best_tip(&tree, rule), tree.genesis());
        }
    }

    #[test]
    fn longest_chain_picks_deepest() {
        let (tree, a3, _) = ghost_tree();
        assert_eq!(best_tip(&tree, ForkChoice::LongestChain), a3.hash());
    }

    #[test]
    fn ghost_picks_heaviest_subtree_over_longest_path() {
        let (tree, a3, b2) = ghost_tree();
        // The b-branch subtree has 5 blocks vs 3 for the a-branch; GHOST
        // descends into b1, then to the earliest-arrival child b2.
        let tip = best_tip(&tree, ForkChoice::Ghost);
        assert_eq!(tip, b2.hash());
        assert_ne!(tip, a3.hash());
    }

    #[test]
    fn heaviest_work_beats_length() {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        // Long branch of trivial work.
        let a1 = child(&g, 1, 1);
        let a2 = child(&a1, 2, 1);
        let a3 = child(&a2, 3, 1);
        // Short branch with one very heavy block.
        let b1 = child(&g, 10, 1 << 20);
        for b in [&a1, &a2, &a3, &b1] {
            tree.insert(b.clone()).unwrap();
        }
        assert_eq!(best_tip(&tree, ForkChoice::LongestChain), a3.hash());
        assert_eq!(best_tip(&tree, ForkChoice::HeaviestWork), b1.hash());
    }

    #[test]
    fn first_seen_tie_break() {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        let first = child(&g, 1, 1);
        let second = child(&g, 2, 1);
        tree.insert(first.clone()).unwrap();
        tree.insert(second.clone()).unwrap();
        // Equal height, equal work, equal subtree size → first arrival wins.
        for rule in [
            ForkChoice::LongestChain,
            ForkChoice::HeaviestWork,
            ForkChoice::Ghost,
        ] {
            assert_eq!(best_tip(&tree, rule), first.hash(), "{rule:?}");
        }
    }
}
