//! The block tree: every valid block ever seen, indexed by hash, with
//! parent/child links, cumulative work, and an orphan pool for blocks that
//! arrive before their parents (routine under gossip reordering).
//!
//! Storage is **zero-copy and pluggable**: blocks enter the tree as
//! [`Arc<Block>`] and are never deep-copied again — gossip re-broadcast,
//! import, state application, and block-request serving all share the same
//! allocation through refcount bumps. The record backing store is abstracted
//! behind the [`BlockStore`] trait with two backends:
//!
//! * [`ArchivalStore`] — keeps every body forever (the default, and what
//!   every simulated full node historically did);
//! * [`PrunedStore`] — drops bodies a configurable depth behind the
//!   finalized tip while retaining headers, cumulative work, and child
//!   links, so fork choice, common-ancestor walks, and light-client header
//!   sync keep working on a fraction of the memory (the paper's §5.4
//!   "full download of the blockchain … will continue to grow" concern).

use crate::ChainError;
use dcs_crypto::Hash256;
use dcs_primitives::{Block, BlockHeader};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Default bound on blocks parked in the orphan pool; beyond it the oldest
/// orphans are evicted in arrival order (a gossip peer can always re-serve
/// them via a `BlockRequest`).
pub const DEFAULT_ORPHAN_CAP: usize = 512;

/// What a [`StoredBlock`] currently retains: the full body, or — after
/// pruning — only the header.
#[derive(Debug, Clone)]
enum StoredData {
    /// The full block, shared with gossip/serving paths.
    Full(Arc<Block>),
    /// Header-only: the body was pruned below the finality horizon.
    HeaderOnly(BlockHeader),
}

/// A block plus the tree metadata maintained for it.
#[derive(Debug, Clone)]
pub struct StoredBlock {
    hash: Hash256,
    data: StoredData,
    /// Sum of `header.work()` from genesis to this block.
    pub total_work: u128,
    /// Hashes of known children.
    pub children: Vec<Hash256>,
    /// Import order (used for first-seen tie-breaking, as Bitcoin does).
    pub arrival: u64,
}

impl StoredBlock {
    fn new(block: Arc<Block>, total_work: u128, arrival: u64) -> Self {
        StoredBlock {
            hash: block.hash(),
            data: StoredData::Full(block),
            total_work,
            children: Vec::new(),
            arrival,
        }
    }

    /// The block hash, computed once at insertion.
    pub fn hash(&self) -> Hash256 {
        self.hash
    }

    /// The header — always retained, even after the body is pruned.
    pub fn header(&self) -> &BlockHeader {
        match &self.data {
            StoredData::Full(b) => &b.header,
            StoredData::HeaderOnly(h) => h,
        }
    }

    /// Height shorthand.
    pub fn height(&self) -> u64 {
        self.header().height
    }

    /// The full block, if the body is still resident (`None` once pruned).
    pub fn body(&self) -> Option<&Arc<Block>> {
        match &self.data {
            StoredData::Full(b) => Some(b),
            StoredData::HeaderOnly(_) => None,
        }
    }

    /// The full block.
    ///
    /// # Panics
    ///
    /// Panics if the body was pruned. Hot paths (state apply/revert, tip
    /// access) only touch blocks above the finality horizon, where bodies
    /// are guaranteed resident on every backend.
    pub fn block(&self) -> &Arc<Block> {
        // The panic is this accessor's documented contract (see above).
        self.body()
            .expect("block body pruned below the finality horizon") // dcs-lint: allow(panic-path)
    }

    /// Drops the body, keeping the header. Returns the approximate bytes
    /// released (0 if already pruned).
    fn prune_body(&mut self) -> u64 {
        if let StoredData::Full(b) = &self.data {
            let freed = approx_body_bytes(b);
            let header = b.header.clone();
            self.data = StoredData::HeaderOnly(header);
            freed
        } else {
            0
        }
    }
}

/// Cheap estimate of a block body's resident size in bytes (struct sizes,
/// no encoding pass — this feeds accounting on the import hot path, not an
/// exact allocator census).
fn approx_body_bytes(block: &Block) -> u64 {
    let per_tx = std::mem::size_of::<dcs_primitives::Transaction>() as u64 + 48;
    std::mem::size_of::<Block>() as u64 + per_tx * block.txs.len() as u64
}

/// Counters describing what a [`BlockStore`] currently holds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Blocks stored (headers always resident).
    pub blocks: u64,
    /// Blocks whose bodies are still resident.
    pub bodies_resident: u64,
    /// Bodies dropped by pruning since genesis.
    pub bodies_pruned: u64,
    /// Approximate bytes of resident bodies.
    pub resident_body_bytes: u64,
}

/// Record storage behind [`BlockTree`]: lookup, insertion, iteration, and a
/// finality notification that lets backends discard what they no longer
/// need. Structural invariants (linkage, heights, children) are enforced by
/// the tree; backends only decide *retention*.
pub trait BlockStore: core::fmt::Debug {
    /// Looks up a stored block by hash.
    fn get(&self, hash: &Hash256) -> Option<&StoredBlock>;
    /// Mutable lookup (child-link maintenance).
    fn get_mut(&mut self, hash: &Hash256) -> Option<&mut StoredBlock>;
    /// Inserts a record (the tree guarantees the hash is fresh).
    fn insert(&mut self, record: StoredBlock);
    /// Number of stored blocks.
    fn len(&self) -> usize;
    /// True if no blocks are stored (never true under a [`BlockTree`],
    /// which always holds genesis).
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// True if `hash` is stored.
    fn contains(&self, hash: &Hash256) -> bool {
        self.get(hash).is_some()
    }
    /// Iterates over all stored blocks in unspecified order.
    fn iter<'a>(&'a self) -> Box<dyn Iterator<Item = &'a StoredBlock> + 'a>;
    /// The finalized height advanced; backends may discard data they no
    /// longer serve (an archival store ignores this).
    fn note_finalized(&mut self, finalized_height: u64);
    /// Retention counters.
    fn stats(&self) -> StoreStats;
}

/// The default backend: every body retained forever.
#[derive(Debug, Clone, Default)]
pub struct ArchivalStore {
    blocks: BTreeMap<Hash256, StoredBlock>,
    resident_bytes: u64,
}

impl BlockStore for ArchivalStore {
    fn get(&self, hash: &Hash256) -> Option<&StoredBlock> {
        self.blocks.get(hash)
    }

    fn get_mut(&mut self, hash: &Hash256) -> Option<&mut StoredBlock> {
        self.blocks.get_mut(hash)
    }

    fn insert(&mut self, record: StoredBlock) {
        if let Some(body) = record.body() {
            self.resident_bytes += approx_body_bytes(body);
        }
        self.blocks.insert(record.hash(), record);
    }

    fn len(&self) -> usize {
        self.blocks.len()
    }

    fn iter<'a>(&'a self) -> Box<dyn Iterator<Item = &'a StoredBlock> + 'a> {
        Box::new(self.blocks.values())
    }

    fn note_finalized(&mut self, _finalized_height: u64) {}

    fn stats(&self) -> StoreStats {
        StoreStats {
            blocks: self.blocks.len() as u64,
            bodies_resident: self.blocks.len() as u64,
            bodies_pruned: 0,
            resident_body_bytes: self.resident_bytes,
        }
    }
}

/// A pruning backend: bodies more than `keep_depth` blocks below the
/// finalized height are dropped (headers, cumulative work, and child links
/// remain, so fork choice and ancestor walks are unaffected). This is the
/// paper's pruned-node archetype: consensus-complete, history-light.
#[derive(Debug, Clone)]
pub struct PrunedStore {
    blocks: BTreeMap<Hash256, StoredBlock>,
    /// Heights that still have resident bodies → the blocks at that height.
    resident_by_height: BTreeMap<u64, Vec<Hash256>>,
    keep_depth: u64,
    resident_bytes: u64,
    bodies_pruned: u64,
}

impl PrunedStore {
    /// A store that keeps bodies for blocks within `keep_depth` of the
    /// finalized height and drops everything older.
    pub fn new(keep_depth: u64) -> Self {
        PrunedStore {
            blocks: BTreeMap::new(),
            resident_by_height: BTreeMap::new(),
            keep_depth,
            resident_bytes: 0,
            bodies_pruned: 0,
        }
    }

    /// The configured retention depth behind the finalized height.
    pub fn keep_depth(&self) -> u64 {
        self.keep_depth
    }
}

impl BlockStore for PrunedStore {
    fn get(&self, hash: &Hash256) -> Option<&StoredBlock> {
        self.blocks.get(hash)
    }

    fn get_mut(&mut self, hash: &Hash256) -> Option<&mut StoredBlock> {
        self.blocks.get_mut(hash)
    }

    fn insert(&mut self, record: StoredBlock) {
        if let Some(body) = record.body() {
            self.resident_bytes += approx_body_bytes(body);
            self.resident_by_height
                .entry(record.height())
                .or_default()
                .push(record.hash());
        }
        self.blocks.insert(record.hash(), record);
    }

    fn len(&self) -> usize {
        self.blocks.len()
    }

    fn iter<'a>(&'a self) -> Box<dyn Iterator<Item = &'a StoredBlock> + 'a> {
        Box::new(self.blocks.values())
    }

    fn note_finalized(&mut self, finalized_height: u64) {
        let horizon = finalized_height.saturating_sub(self.keep_depth);
        // Split off the heights still within retention; what remains in
        // `self.resident_by_height` is exactly the prune set.
        let keep = self.resident_by_height.split_off(&horizon);
        let prune = std::mem::replace(&mut self.resident_by_height, keep);
        for (_, hashes) in prune {
            for hash in hashes {
                if let Some(record) = self.blocks.get_mut(&hash) {
                    let freed = record.prune_body();
                    if freed > 0 {
                        self.resident_bytes = self.resident_bytes.saturating_sub(freed);
                        self.bodies_pruned += 1;
                    }
                }
            }
        }
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            blocks: self.blocks.len() as u64,
            bodies_resident: self.blocks.len() as u64 - self.bodies_pruned,
            bodies_pruned: self.bodies_pruned,
            resident_body_bytes: self.resident_bytes,
        }
    }
}

/// An in-memory tree of blocks rooted at genesis, generic over the record
/// backend (archival by default).
#[derive(Debug, Clone)]
pub struct BlockTree<S: BlockStore = ArchivalStore> {
    store: S,
    genesis: Hash256,
    /// parent hash → orphans waiting on it, each with its precomputed hash.
    orphans: BTreeMap<Hash256, Vec<(Hash256, Arc<Block>)>>,
    /// Orphans in arrival order (for cap eviction); entries may be stale
    /// after a connect and are skipped lazily.
    orphan_order: VecDeque<(Hash256, Hash256)>, // (parent, orphan hash)
    orphan_cap: usize,
    orphans_evicted: u64,
    orphans_rejected: u64,
    arrivals: u64,
    /// When false, [`BlockTree::insert`] skips its serial transaction-root
    /// recomputation. Only [`Chain`](crate::Chain) flips this, after taking
    /// over the check with a parallel verification pipeline — every block
    /// still has its root verified exactly once.
    pub check_tx_roots: bool,
}

impl BlockTree<ArchivalStore> {
    /// Creates an archival tree holding only `genesis`.
    pub fn new(genesis: impl Into<Arc<Block>>) -> Self {
        Self::with_store(genesis, ArchivalStore::default())
    }
}

impl<S: BlockStore> BlockTree<S> {
    /// Creates a tree over the given backend, holding only `genesis`.
    pub fn with_store(genesis: impl Into<Arc<Block>>, mut store: S) -> Self {
        let genesis = genesis.into();
        let gh = genesis.hash();
        let work = genesis.header.work();
        store.insert(StoredBlock::new(genesis, work, 0));
        BlockTree {
            store,
            genesis: gh,
            orphans: BTreeMap::new(),
            orphan_order: VecDeque::new(),
            orphan_cap: DEFAULT_ORPHAN_CAP,
            orphans_evicted: 0,
            orphans_rejected: 0,
            arrivals: 1,
            check_tx_roots: true,
        }
    }

    /// The record backend.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Retention counters from the backend.
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// The genesis hash.
    pub fn genesis(&self) -> Hash256 {
        self.genesis
    }

    /// Total blocks stored (excluding orphans awaiting parents).
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Always false: a tree at least contains genesis.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of blocks parked in the orphan pool.
    pub fn orphan_count(&self) -> usize {
        self.orphans.values().map(Vec::len).sum()
    }

    /// Orphans evicted by the pool cap since genesis.
    pub fn orphans_evicted(&self) -> u64 {
        self.orphans_evicted
    }

    /// Unblocked orphans that then failed structural checks (bad height or
    /// transaction root) — surfaced instead of silently dropped.
    pub fn orphans_rejected(&self) -> u64 {
        self.orphans_rejected
    }

    /// Bounds the orphan pool; the oldest orphans are evicted first once
    /// the cap is hit.
    pub fn set_orphan_cap(&mut self, cap: usize) {
        self.orphan_cap = cap.max(1);
        self.evict_orphans_to_cap(self.orphan_cap);
    }

    /// Forwards the finalized height to the backend so it can prune.
    pub fn note_finalized(&mut self, finalized_height: u64) {
        self.store.note_finalized(finalized_height);
    }

    /// Looks up a stored block by hash.
    pub fn get(&self, hash: &Hash256) -> Option<&StoredBlock> {
        self.store.get(hash)
    }

    /// True if the block is in the tree.
    pub fn contains(&self, hash: &Hash256) -> bool {
        self.store.contains(hash)
    }

    /// Inserts a block whose parent is present, after structural checks
    /// (height linkage and transaction root). The block is stored as-is —
    /// callers holding an `Arc` share it with the tree at zero copies.
    ///
    /// # Errors
    ///
    /// * [`ChainError::UnknownParent`] — caller should use
    ///   [`BlockTree::insert_or_orphan`] under gossip.
    /// * [`ChainError::Duplicate`], [`ChainError::BadHeight`],
    ///   [`ChainError::BadTxRoot`].
    pub fn insert(&mut self, block: impl Into<Arc<Block>>) -> Result<Hash256, ChainError> {
        let block = block.into();
        let hash = block.hash();
        if self.store.contains(&hash) {
            return Err(ChainError::Duplicate);
        }
        let parent = self
            .store
            .get(&block.header.parent)
            .ok_or(ChainError::UnknownParent(block.header.parent))?;
        let expected = parent.height() + 1;
        if block.header.height != expected {
            return Err(ChainError::BadHeight {
                got: block.header.height,
                expected,
            });
        }
        if self.check_tx_roots && !block.verify_tx_root() {
            return Err(ChainError::BadTxRoot);
        }
        let total_work = parent.total_work + block.header.work();
        let parent_hash = block.header.parent;
        let arrival = self.arrivals;
        self.arrivals += 1;
        self.store
            .insert(StoredBlock::new(block, total_work, arrival));
        self.store
            .get_mut(&parent_hash)
            .ok_or(ChainError::Internal("parent vanished during insert"))?
            .children
            .push(hash);
        Ok(hash)
    }

    /// Inserts a block, parking it as an orphan if the parent is missing.
    /// Returns all hashes actually inserted (the block plus any orphans it
    /// unblocked), in insertion order; empty if the block was orphaned.
    /// Unblocked orphans that fail structural checks are counted in
    /// [`BlockTree::orphans_rejected`] rather than silently dropped.
    ///
    /// # Errors
    ///
    /// Structural errors other than `UnknownParent` are returned as-is.
    pub fn insert_or_orphan(
        &mut self,
        block: impl Into<Arc<Block>>,
    ) -> Result<Vec<Hash256>, ChainError> {
        let block = block.into();
        if !self.store.contains(&block.header.parent) {
            self.park_orphan(block);
            return Ok(vec![]);
        }
        let hash = self.insert(block)?;
        let mut inserted = vec![hash];
        let mut frontier = vec![hash];
        while let Some(parent) = frontier.pop() {
            if let Some(waiting) = self.orphans.remove(&parent) {
                for (_, orphan) in waiting {
                    match self.insert(orphan) {
                        Ok(h) => {
                            inserted.push(h);
                            frontier.push(h);
                        }
                        Err(_) => self.orphans_rejected += 1,
                    }
                }
            }
        }
        Ok(inserted)
    }

    fn park_orphan(&mut self, block: Arc<Block>) {
        let hash = block.hash();
        let parent = block.header.parent;
        let bucket = self.orphans.entry(parent).or_default();
        if bucket.iter().any(|(h, _)| *h == hash) {
            return; // already parked
        }
        bucket.push((hash, block));
        self.orphan_order.push_back((parent, hash));
        self.evict_orphans_to_cap(self.orphan_cap);
    }

    fn evict_orphans_to_cap(&mut self, cap: usize) {
        while self.orphan_count() > cap {
            let Some((parent, hash)) = self.orphan_order.pop_front() else {
                break;
            };
            if let Some(bucket) = self.orphans.get_mut(&parent) {
                if let Some(pos) = bucket.iter().position(|(h, _)| *h == hash) {
                    bucket.remove(pos);
                    if bucket.is_empty() {
                        self.orphans.remove(&parent);
                    }
                    self.orphans_evicted += 1;
                }
            }
            // Stale entry (orphan already connected): skip without counting.
        }
    }

    /// The path of hashes from genesis to `tip`, inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `tip` is not in the tree.
    pub fn path_from_genesis(&self, tip: &Hash256) -> Vec<Hash256> {
        let mut path = vec![*tip];
        let mut cur = *tip;
        while cur != self.genesis {
            // Documented contract: the caller passes a stored tip.
            cur = self.store.get(&cur).expect("path stored").header().parent; // dcs-lint: allow(panic-path)
            path.push(cur);
        }
        path.reverse();
        path
    }

    /// Lowest common ancestor of two blocks in the tree. Operates on
    /// headers only, so it works across pruned history.
    ///
    /// # Panics
    ///
    /// Panics if either hash is not in the tree.
    pub fn common_ancestor(&self, a: &Hash256, b: &Hash256) -> Hash256 {
        // Documented contract: both hashes are stored (see # Panics above).
        let height = |h: &Hash256| self.store.get(h).expect("block stored").height(); // dcs-lint: allow(panic-path)
        let parent = |h: &Hash256| self.store.get(h).expect("block stored").header().parent; // dcs-lint: allow(panic-path)
        let mut a = *a;
        let mut b = *b;
        while height(&a) > height(&b) {
            a = parent(&a);
        }
        while height(&b) > height(&a) {
            b = parent(&b);
        }
        while a != b {
            a = parent(&a);
            b = parent(&b);
        }
        a
    }

    /// Iterates over all stored blocks in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &StoredBlock> {
        self.store.iter()
    }

    /// Leaf blocks (no children): the candidate tips.
    pub fn tips(&self) -> Vec<Hash256> {
        self.store
            .iter()
            .filter(|sb| sb.children.is_empty())
            .map(StoredBlock::hash)
            .collect()
    }

    /// Number of blocks in the subtree rooted at `hash` (inclusive); the
    /// weight used by GHOST.
    pub fn subtree_size(&self, hash: &Hash256) -> u64 {
        let mut count = 0;
        let mut stack = vec![*hash];
        while let Some(h) = stack.pop() {
            count += 1;
            // Child links only ever point at stored blocks.
            // dcs-lint: allow(panic-path)
            stack.extend(&self.store.get(&h).expect("subtree stored").children);
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_crypto::Address;
    use dcs_primitives::{BlockHeader, ChainConfig, Seal};

    fn genesis() -> Block {
        crate::genesis_block(&ChainConfig::bitcoin_like())
    }

    fn child_of(parent: &Block, salt: u64) -> Block {
        Block::new(
            BlockHeader::new(
                parent.hash(),
                parent.header.height + 1,
                salt,
                Address::from_index(salt),
                Seal::None,
            ),
            vec![],
        )
    }

    #[test]
    fn insert_and_lookup() {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        let b1 = child_of(&g, 1);
        let h1 = tree.insert(b1.clone()).unwrap();
        assert_eq!(h1, b1.hash());
        assert!(tree.contains(&h1));
        assert_eq!(tree.len(), 2);
        assert_eq!(**tree.get(&h1).unwrap().block(), b1);
        assert_eq!(tree.get(&h1).unwrap().hash(), h1);
        assert_eq!(tree.get(&tree.genesis()).unwrap().children, vec![h1]);
    }

    #[test]
    fn insert_shares_the_arc_zero_copy() {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        let b1 = Arc::new(child_of(&g, 1));
        let h1 = tree.insert(Arc::clone(&b1)).unwrap();
        // The tree holds the same allocation the caller does.
        assert!(Arc::ptr_eq(tree.get(&h1).unwrap().block(), &b1));
    }

    #[test]
    fn duplicate_rejected() {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        let b1 = child_of(&g, 1);
        tree.insert(b1.clone()).unwrap();
        assert_eq!(tree.insert(b1), Err(ChainError::Duplicate));
    }

    #[test]
    fn unknown_parent_rejected() {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        let b1 = child_of(&g, 1);
        let b2 = child_of(&b1, 2); // parent not inserted
        assert!(matches!(tree.insert(b2), Err(ChainError::UnknownParent(_))));
    }

    #[test]
    fn bad_height_rejected() {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        let mut b1 = child_of(&g, 1);
        b1.header.height = 5;
        assert_eq!(
            tree.insert(b1),
            Err(ChainError::BadHeight {
                got: 5,
                expected: 1
            })
        );
    }

    #[test]
    fn bad_tx_root_rejected() {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        let mut b1 = child_of(&g, 1);
        b1.header.tx_root = dcs_crypto::sha256(b"lies");
        assert_eq!(tree.insert(b1), Err(ChainError::BadTxRoot));
    }

    #[test]
    fn total_work_accumulates() {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        let mut b1 = child_of(&g, 1);
        b1.header.seal = Seal::Work {
            nonce: 0,
            difficulty: 1024,
        };
        let b1 = Block::new(b1.header, vec![]);
        let h1 = tree.insert(b1.clone()).unwrap();
        assert_eq!(tree.get(&h1).unwrap().total_work, 1 + 1024);
    }

    #[test]
    fn path_and_common_ancestor() {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        let a1 = child_of(&g, 1);
        let a2 = child_of(&a1, 2);
        let b1 = child_of(&g, 10);
        let b2 = child_of(&b1, 11);
        for b in [&a1, &a2, &b1, &b2] {
            tree.insert(b.clone()).unwrap();
        }
        assert_eq!(
            tree.path_from_genesis(&a2.hash()),
            vec![g.hash(), a1.hash(), a2.hash()]
        );
        assert_eq!(tree.common_ancestor(&a2.hash(), &b2.hash()), g.hash());
        assert_eq!(tree.common_ancestor(&a2.hash(), &a1.hash()), a1.hash());
        assert_eq!(tree.common_ancestor(&a2.hash(), &a2.hash()), a2.hash());
    }

    #[test]
    fn orphans_connect_when_parent_arrives() {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        let b1 = child_of(&g, 1);
        let b2 = child_of(&b1, 2);
        let b3 = child_of(&b2, 3);
        // Deliver out of order: 3, 2, then 1.
        assert_eq!(tree.insert_or_orphan(b3.clone()).unwrap(), vec![]);
        assert_eq!(tree.insert_or_orphan(b2.clone()).unwrap(), vec![]);
        assert_eq!(tree.orphan_count(), 2);
        let inserted = tree.insert_or_orphan(b1.clone()).unwrap();
        assert_eq!(inserted, vec![b1.hash(), b2.hash(), b3.hash()]);
        assert_eq!(tree.orphan_count(), 0);
        assert_eq!(tree.len(), 4);
    }

    #[test]
    fn orphan_pool_caps_and_evicts_oldest() {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        tree.set_orphan_cap(3);
        let missing = child_of(&g, 99); // never inserted
        let orphans: Vec<Block> = (0..5).map(|i| child_of(&missing, i)).collect();
        for o in &orphans {
            tree.insert_or_orphan(o.clone()).unwrap();
        }
        assert_eq!(tree.orphan_count(), 3, "capped");
        assert_eq!(tree.orphans_evicted(), 2, "two oldest evicted");
        // The survivors are the three most recent arrivals.
        let inserted = tree.insert_or_orphan(missing.clone()).unwrap();
        assert_eq!(inserted.len(), 4); // missing + 3 surviving orphans
        assert!(!inserted.contains(&orphans[0].hash()));
        assert!(!inserted.contains(&orphans[1].hash()));
    }

    #[test]
    fn duplicate_orphans_parked_once() {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        let b1 = child_of(&g, 1);
        let b2 = child_of(&b1, 2);
        tree.insert_or_orphan(b2.clone()).unwrap();
        tree.insert_or_orphan(b2.clone()).unwrap();
        assert_eq!(tree.orphan_count(), 1);
    }

    #[test]
    fn rejected_unblocked_orphans_are_counted() {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        let b1 = child_of(&g, 1);
        // An orphan whose height is wrong relative to its claimed parent:
        // it parks fine, but fails structural checks once unblocked.
        let mut bad = child_of(&b1, 2);
        bad.header.height = 9;
        let bad = Block::new(bad.header, vec![]);
        assert_eq!(tree.insert_or_orphan(bad).unwrap(), vec![]);
        assert_eq!(tree.orphans_rejected(), 0);
        let inserted = tree.insert_or_orphan(b1.clone()).unwrap();
        assert_eq!(inserted, vec![b1.hash()], "bad orphan not inserted");
        assert_eq!(tree.orphans_rejected(), 1, "rejection surfaced");
    }

    #[test]
    fn tips_and_subtree_size() {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        let a1 = child_of(&g, 1);
        let a2 = child_of(&a1, 2);
        let b1 = child_of(&g, 10);
        for b in [&a1, &a2, &b1] {
            tree.insert(b.clone()).unwrap();
        }
        let mut tips = tree.tips();
        tips.sort();
        let mut expect = vec![a2.hash(), b1.hash()];
        expect.sort();
        assert_eq!(tips, expect);
        assert_eq!(tree.subtree_size(&g.hash()), 4);
        assert_eq!(tree.subtree_size(&a1.hash()), 2);
        assert_eq!(tree.subtree_size(&b1.hash()), 1);
    }

    #[test]
    fn pruned_store_drops_bodies_keeps_headers() {
        let g = genesis();
        let mut tree = BlockTree::with_store(g.clone(), PrunedStore::new(2));
        let mut parent = g.clone();
        let mut hashes = vec![g.hash()];
        for h in 1..=10u64 {
            let b = child_of(&parent, h);
            hashes.push(tree.insert(b.clone()).unwrap());
            parent = b;
        }
        // Finalize height 8: bodies below 8 - 2 = 6 are dropped.
        tree.note_finalized(8);
        let stats = tree.store_stats();
        assert_eq!(stats.blocks, 11);
        assert_eq!(stats.bodies_pruned, 6, "genesis..height 5 pruned");
        for (height, hash) in hashes.iter().enumerate() {
            let sb = tree.get(hash).unwrap();
            assert_eq!(sb.height(), height as u64, "headers retained");
            assert_eq!(sb.body().is_some(), height >= 6, "bodies split at horizon");
        }
        // Ancestor walks still work across pruned history.
        assert_eq!(tree.common_ancestor(&hashes[10], &hashes[3]), hashes[3]);
        assert_eq!(tree.path_from_genesis(&hashes[10]).len(), 11);
        // Pruning is idempotent and monotone.
        tree.note_finalized(8);
        assert_eq!(tree.store_stats().bodies_pruned, 6);
        assert!(tree.store_stats().resident_body_bytes < 11 * 200);
    }

    #[test]
    fn archival_store_retains_everything() {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        let mut parent = g.clone();
        for h in 1..=5u64 {
            let b = child_of(&parent, h);
            tree.insert(b.clone()).unwrap();
            parent = b;
        }
        tree.note_finalized(5);
        let stats = tree.store_stats();
        assert_eq!(stats.bodies_pruned, 0);
        assert_eq!(stats.bodies_resident, 6);
    }
}
