//! The block tree: every valid block ever seen, indexed by hash, with
//! parent/child links, cumulative work, and an orphan pool for blocks that
//! arrive before their parents (routine under gossip reordering).

use crate::ChainError;
use dcs_crypto::Hash256;
use dcs_primitives::Block;
use std::collections::HashMap;

/// A block plus the tree metadata maintained for it.
#[derive(Debug, Clone)]
pub struct StoredBlock {
    /// The block itself.
    pub block: Block,
    /// Sum of `header.work()` from genesis to this block.
    pub total_work: u128,
    /// Hashes of known children.
    pub children: Vec<Hash256>,
    /// Import order (used for first-seen tie-breaking, as Bitcoin does).
    pub arrival: u64,
}

/// An in-memory tree of blocks rooted at genesis.
#[derive(Debug, Clone)]
pub struct BlockTree {
    blocks: HashMap<Hash256, StoredBlock>,
    genesis: Hash256,
    orphans: HashMap<Hash256, Vec<Block>>, // parent hash → waiting blocks
    arrivals: u64,
    /// When false, [`BlockTree::insert`] skips its serial transaction-root
    /// recomputation. Only [`Chain`](crate::Chain) flips this, after taking
    /// over the check with a parallel verification pipeline — every block
    /// still has its root verified exactly once.
    pub check_tx_roots: bool,
}

impl BlockTree {
    /// Creates a tree holding only `genesis`.
    pub fn new(genesis: Block) -> Self {
        let gh = genesis.hash();
        let mut blocks = HashMap::new();
        blocks.insert(
            gh,
            StoredBlock {
                total_work: genesis.header.work(),
                block: genesis,
                children: Vec::new(),
                arrival: 0,
            },
        );
        BlockTree {
            blocks,
            genesis: gh,
            orphans: HashMap::new(),
            arrivals: 1,
            check_tx_roots: true,
        }
    }

    /// The genesis hash.
    pub fn genesis(&self) -> Hash256 {
        self.genesis
    }

    /// Total blocks stored (excluding orphans awaiting parents).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Always false: a tree at least contains genesis.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of blocks parked in the orphan pool.
    pub fn orphan_count(&self) -> usize {
        self.orphans.values().map(Vec::len).sum()
    }

    /// Looks up a stored block by hash.
    pub fn get(&self, hash: &Hash256) -> Option<&StoredBlock> {
        self.blocks.get(hash)
    }

    /// True if the block is in the tree.
    pub fn contains(&self, hash: &Hash256) -> bool {
        self.blocks.contains_key(hash)
    }

    /// Inserts a block whose parent is present, after structural checks
    /// (height linkage and transaction root). Returns the hashes of any
    /// orphans that became connectable and were inserted as a result.
    ///
    /// # Errors
    ///
    /// * [`ChainError::UnknownParent`] — caller should use
    ///   [`BlockTree::insert_or_orphan`] under gossip.
    /// * [`ChainError::Duplicate`], [`ChainError::BadHeight`],
    ///   [`ChainError::BadTxRoot`].
    pub fn insert(&mut self, block: Block) -> Result<Hash256, ChainError> {
        let hash = block.hash();
        if self.blocks.contains_key(&hash) {
            return Err(ChainError::Duplicate);
        }
        let parent = self
            .blocks
            .get(&block.header.parent)
            .ok_or(ChainError::UnknownParent(block.header.parent))?;
        let expected = parent.block.header.height + 1;
        if block.header.height != expected {
            return Err(ChainError::BadHeight {
                got: block.header.height,
                expected,
            });
        }
        if self.check_tx_roots && !block.verify_tx_root() {
            return Err(ChainError::BadTxRoot);
        }
        let total_work = parent.total_work + block.header.work();
        let parent_hash = block.header.parent;
        let arrival = self.arrivals;
        self.arrivals += 1;
        self.blocks.insert(
            hash,
            StoredBlock {
                block,
                total_work,
                children: Vec::new(),
                arrival,
            },
        );
        self.blocks
            .get_mut(&parent_hash)
            .expect("parent checked above")
            .children
            .push(hash);
        Ok(hash)
    }

    /// Inserts a block, parking it as an orphan if the parent is missing.
    /// Returns all hashes actually inserted (the block plus any orphans it
    /// unblocked), in insertion order; empty if the block was orphaned.
    ///
    /// # Errors
    ///
    /// Structural errors other than `UnknownParent` are returned as-is.
    pub fn insert_or_orphan(&mut self, block: Block) -> Result<Vec<Hash256>, ChainError> {
        if !self.blocks.contains_key(&block.header.parent) {
            self.orphans
                .entry(block.header.parent)
                .or_default()
                .push(block);
            return Ok(vec![]);
        }
        let hash = self.insert(block)?;
        let mut inserted = vec![hash];
        let mut frontier = vec![hash];
        while let Some(parent) = frontier.pop() {
            if let Some(waiting) = self.orphans.remove(&parent) {
                for orphan in waiting {
                    if let Ok(h) = self.insert(orphan) {
                        inserted.push(h);
                        frontier.push(h);
                    }
                }
            }
        }
        Ok(inserted)
    }

    /// The path of hashes from genesis to `tip`, inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `tip` is not in the tree.
    pub fn path_from_genesis(&self, tip: &Hash256) -> Vec<Hash256> {
        let mut path = vec![*tip];
        let mut cur = *tip;
        while cur != self.genesis {
            cur = self.blocks[&cur].block.header.parent;
            path.push(cur);
        }
        path.reverse();
        path
    }

    /// Lowest common ancestor of two blocks in the tree.
    ///
    /// # Panics
    ///
    /// Panics if either hash is not in the tree.
    pub fn common_ancestor(&self, a: &Hash256, b: &Hash256) -> Hash256 {
        let mut a = *a;
        let mut b = *b;
        while self.blocks[&a].block.header.height > self.blocks[&b].block.header.height {
            a = self.blocks[&a].block.header.parent;
        }
        while self.blocks[&b].block.header.height > self.blocks[&a].block.header.height {
            b = self.blocks[&b].block.header.parent;
        }
        while a != b {
            a = self.blocks[&a].block.header.parent;
            b = self.blocks[&b].block.header.parent;
        }
        a
    }

    /// Iterates over all stored blocks in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &StoredBlock> {
        self.blocks.values()
    }

    /// Leaf blocks (no children): the candidate tips.
    pub fn tips(&self) -> Vec<Hash256> {
        self.blocks
            .iter()
            .filter(|(_, sb)| sb.children.is_empty())
            .map(|(h, _)| *h)
            .collect()
    }

    /// Number of blocks in the subtree rooted at `hash` (inclusive); the
    /// weight used by GHOST.
    pub fn subtree_size(&self, hash: &Hash256) -> u64 {
        let mut count = 0;
        let mut stack = vec![*hash];
        while let Some(h) = stack.pop() {
            count += 1;
            stack.extend(&self.blocks[&h].children);
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_crypto::Address;
    use dcs_primitives::{BlockHeader, ChainConfig, Seal};

    fn genesis() -> Block {
        crate::genesis_block(&ChainConfig::bitcoin_like())
    }

    fn child_of(parent: &Block, salt: u64) -> Block {
        Block::new(
            BlockHeader::new(
                parent.hash(),
                parent.header.height + 1,
                salt,
                Address::from_index(salt),
                Seal::None,
            ),
            vec![],
        )
    }

    #[test]
    fn insert_and_lookup() {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        let b1 = child_of(&g, 1);
        let h1 = tree.insert(b1.clone()).unwrap();
        assert_eq!(h1, b1.hash());
        assert!(tree.contains(&h1));
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.get(&h1).unwrap().block, b1);
        assert_eq!(tree.get(&tree.genesis()).unwrap().children, vec![h1]);
    }

    #[test]
    fn duplicate_rejected() {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        let b1 = child_of(&g, 1);
        tree.insert(b1.clone()).unwrap();
        assert_eq!(tree.insert(b1), Err(ChainError::Duplicate));
    }

    #[test]
    fn unknown_parent_rejected() {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        let b1 = child_of(&g, 1);
        let b2 = child_of(&b1, 2); // parent not inserted
        assert!(matches!(tree.insert(b2), Err(ChainError::UnknownParent(_))));
    }

    #[test]
    fn bad_height_rejected() {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        let mut b1 = child_of(&g, 1);
        b1.header.height = 5;
        assert_eq!(
            tree.insert(b1),
            Err(ChainError::BadHeight {
                got: 5,
                expected: 1
            })
        );
    }

    #[test]
    fn bad_tx_root_rejected() {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        let mut b1 = child_of(&g, 1);
        b1.header.tx_root = dcs_crypto::sha256(b"lies");
        assert_eq!(tree.insert(b1), Err(ChainError::BadTxRoot));
    }

    #[test]
    fn total_work_accumulates() {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        let mut b1 = child_of(&g, 1);
        b1.header.seal = Seal::Work {
            nonce: 0,
            difficulty: 1024,
        };
        let b1 = Block::new(b1.header, vec![]);
        let h1 = tree.insert(b1.clone()).unwrap();
        assert_eq!(tree.get(&h1).unwrap().total_work, 1 + 1024);
    }

    #[test]
    fn path_and_common_ancestor() {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        let a1 = child_of(&g, 1);
        let a2 = child_of(&a1, 2);
        let b1 = child_of(&g, 10);
        let b2 = child_of(&b1, 11);
        for b in [&a1, &a2, &b1, &b2] {
            tree.insert(b.clone()).unwrap();
        }
        assert_eq!(
            tree.path_from_genesis(&a2.hash()),
            vec![g.hash(), a1.hash(), a2.hash()]
        );
        assert_eq!(tree.common_ancestor(&a2.hash(), &b2.hash()), g.hash());
        assert_eq!(tree.common_ancestor(&a2.hash(), &a1.hash()), a1.hash());
        assert_eq!(tree.common_ancestor(&a2.hash(), &a2.hash()), a2.hash());
    }

    #[test]
    fn orphans_connect_when_parent_arrives() {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        let b1 = child_of(&g, 1);
        let b2 = child_of(&b1, 2);
        let b3 = child_of(&b2, 3);
        // Deliver out of order: 3, 2, then 1.
        assert_eq!(tree.insert_or_orphan(b3.clone()).unwrap(), vec![]);
        assert_eq!(tree.insert_or_orphan(b2.clone()).unwrap(), vec![]);
        assert_eq!(tree.orphan_count(), 2);
        let inserted = tree.insert_or_orphan(b1.clone()).unwrap();
        assert_eq!(inserted, vec![b1.hash(), b2.hash(), b3.hash()]);
        assert_eq!(tree.orphan_count(), 0);
        assert_eq!(tree.len(), 4);
    }

    #[test]
    fn tips_and_subtree_size() {
        let g = genesis();
        let mut tree = BlockTree::new(g.clone());
        let a1 = child_of(&g, 1);
        let a2 = child_of(&a1, 2);
        let b1 = child_of(&g, 10);
        for b in [&a1, &a2, &b1] {
            tree.insert(b.clone()).unwrap();
        }
        let mut tips = tree.tips();
        tips.sort();
        let mut expect = vec![a2.hash(), b1.hash()];
        expect.sort();
        assert_eq!(tips, expect);
        assert_eq!(tree.subtree_size(&g.hash()), 4);
        assert_eq!(tree.subtree_size(&a1.hash()), 2);
        assert_eq!(tree.subtree_size(&b1.hash()), 1);
    }
}
