//! Chain-side live metrics: height, finality, and import-outcome counters.
//!
//! Installed per replica with [`Chain::set_metrics`](crate::Chain::set_metrics);
//! every update is a relaxed atomic bump off the import path's decision
//! logic, so attaching metrics never changes which blocks a replica accepts
//! (the determinism suite asserts bit-identical digests with metrics on vs
//! off — DESIGN.md §16).

use crate::chain::ChainEvent;
use dcs_metrics::{Counter, Gauge, Registry};

/// Per-replica chain instruments, registered under a `node` label.
#[derive(Debug, Clone)]
pub struct ChainMetrics {
    height: Gauge,
    finalized: Gauge,
    finality_lag: Gauge,
    extended: Counter,
    side_chain: Counter,
    orphaned: Counter,
    reorgs: Counter,
    blocks_reverted: Counter,
}

impl ChainMetrics {
    /// Registers the chain series for the replica labeled `node`.
    pub fn register(registry: &Registry, node: &str) -> Self {
        let l = [("node", node)];
        ChainMetrics {
            height: registry.gauge("dcs_chain_height", "canonical chain height", &l),
            finalized: registry.gauge(
                "dcs_chain_finalized_height",
                "highest height at confirmation depth",
                &l,
            ),
            finality_lag: registry.gauge(
                "dcs_chain_finality_lag",
                "blocks between tip and finalized height",
                &l,
            ),
            extended: registry.counter(
                "dcs_chain_imports_total",
                "block imports by outcome",
                &[("node", node), ("outcome", "extended")],
            ),
            side_chain: registry.counter(
                "dcs_chain_imports_total",
                "block imports by outcome",
                &[("node", node), ("outcome", "side_chain")],
            ),
            orphaned: registry.counter(
                "dcs_chain_imports_total",
                "block imports by outcome",
                &[("node", node), ("outcome", "orphaned")],
            ),
            reorgs: registry.counter(
                "dcs_chain_imports_total",
                "block imports by outcome",
                &[("node", node), ("outcome", "reorg")],
            ),
            blocks_reverted: registry.counter(
                "dcs_chain_blocks_reverted_total",
                "canonical blocks reverted across reorgs",
                &l,
            ),
        }
    }

    /// Records one import outcome plus the post-import head position.
    pub fn record(&self, event: &ChainEvent, height: u64, confirmation_depth: u64) {
        match event {
            ChainEvent::Extended { .. } => self.extended.inc(),
            ChainEvent::SideChain { .. } => self.side_chain.inc(),
            ChainEvent::Orphaned => self.orphaned.inc(),
            ChainEvent::Reorg { reverted, .. } => {
                self.reorgs.inc();
                self.blocks_reverted.add(*reverted);
            }
        }
        let finalized = height.saturating_sub(confirmation_depth);
        self.height.set(height as i64);
        self.finalized.set(finalized as i64);
        self.finality_lag.set((height - finalized) as i64);
    }
}
