//! Gossip dissemination support (§2.3: "gossiping is employed to broadcast
//! data, such as new transactions and blocks, among the peers").
//!
//! The [`Gossiper`] tracks which item ids a peer has already seen so flood
//! gossip terminates: on first sight a node forwards to its neighbors
//! (except the sender); repeats are dropped.

use dcs_crypto::Hash256;
use std::collections::BTreeSet;

/// Per-peer gossip deduplication state.
///
/// # Examples
///
/// ```
/// use dcs_net::Gossiper;
/// use dcs_crypto::sha256;
///
/// let mut g = Gossiper::new();
/// let id = sha256(b"block 7");
/// assert!(g.first_sight(id), "new item: forward it");
/// assert!(!g.first_sight(id), "repeat: drop it");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Gossiper {
    seen: BTreeSet<Hash256>,
}

impl Gossiper {
    /// Creates an empty dedup table.
    pub fn new() -> Self {
        Gossiper::default()
    }

    /// Records `id` as seen; returns `true` exactly once per id — the signal
    /// to process and re-forward.
    pub fn first_sight(&mut self, id: Hash256) -> bool {
        self.seen.insert(id)
    }

    /// True if `id` has been seen before.
    pub fn has_seen(&self, id: &Hash256) -> bool {
        self.seen.contains(id)
    }

    /// Number of distinct items seen.
    pub fn seen_count(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_crypto::sha256;

    #[test]
    fn dedup_semantics() {
        let mut g = Gossiper::new();
        let a = sha256(b"a");
        let b = sha256(b"b");
        assert!(!g.has_seen(&a));
        assert!(g.first_sight(a));
        assert!(g.has_seen(&a));
        assert!(!g.first_sight(a));
        assert!(g.first_sight(b));
        assert_eq!(g.seen_count(), 2);
    }
}
