//! The network layer (§4.6 of the paper): a deterministic simulation of the
//! unstructured peer-to-peer overlays blockchains run on (§2.3), including
//! overlay topology construction, per-link latency distributions, message
//! loss, partitions, bandwidth accounting, and gossip dissemination.
//!
//! The paper stresses that "the network topology is not often disclosed or
//! well understood in popular blockchain systems" and calls for
//! investigating "the network conditions and their impacts on the
//! blockchain"; this crate makes those conditions first-class experimental
//! parameters.
//!
//! # Examples
//!
//! ```
//! use dcs_net::{LatencyModel, NetConfig, Topology};
//! use dcs_sim::SimDuration;
//!
//! let cfg = NetConfig {
//!     nodes: 16,
//!     topology: Topology::KRegular { k: 4 },
//!     latency: LatencyModel::Uniform {
//!         lo: SimDuration::from_millis(20),
//!         hi: SimDuration::from_millis(100),
//!     },
//!     drop_probability: 0.0,
//!     bandwidth_bytes_per_sec: None,
//! };
//! let net = dcs_net::Network::<String>::new(cfg, 42);
//! assert_eq!(net.node_count(), 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod engine;
pub mod gossip;
pub mod latency;
pub mod network;
pub mod runner;
pub mod topology;

pub use gossip::Gossiper;
pub use latency::LatencyModel;
pub use network::{NetConfig, NetStats, Network};
pub use runner::{Action, Ctx, Protocol, Runner};
pub use topology::Topology;

use serde::{Deserialize, Serialize};

/// Identifies one simulated peer.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub usize);

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}
