//! Overlay topology construction. Public blockchains use unstructured
//! overlays where "each peer is connected to a variable set of neighbors"
//! (§2.3); these builders produce the usual families, always guaranteeing
//! connectivity so gossip can reach every peer.

use crate::NodeId;
use dcs_sim::Rng;
use serde::{Deserialize, Serialize};

/// Overlay shapes available to experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Topology {
    /// Every peer connected to every other (small consortium networks).
    Complete,
    /// A ring: each peer linked to its two neighbors.
    Ring,
    /// Ring plus `k - 2` random extra links per node (connected, low
    /// diameter — the shape closest to real Bitcoin overlays).
    KRegular {
        /// Target degree (≥ 2).
        k: usize,
    },
    /// Erdős–Rényi: each pair linked independently with probability `p`,
    /// with a ring added underneath to guarantee connectivity.
    ErdosRenyi {
        /// Per-pair link probability.
        p: f64,
    },
    /// A hub-and-spoke star with node 0 at the center (the degenerate
    /// "centralized" overlay; useful as a decentralization baseline).
    Star,
}

/// Builds the adjacency lists for `n` nodes under the given topology.
/// Deterministic given the RNG state. Self-links and duplicates never occur.
///
/// # Panics
///
/// Panics if `n == 0`, or `k < 2` for `KRegular`.
pub fn build(topology: Topology, n: usize, rng: &mut Rng) -> Vec<Vec<NodeId>> {
    assert!(n > 0, "topology needs at least one node");
    let mut adj: Vec<std::collections::BTreeSet<usize>> =
        vec![std::collections::BTreeSet::new(); n];
    let link = |adj: &mut Vec<std::collections::BTreeSet<usize>>, a: usize, b: usize| {
        if a != b {
            adj[a].insert(b);
            adj[b].insert(a);
        }
    };
    match topology {
        Topology::Complete => {
            for a in 0..n {
                for b in (a + 1)..n {
                    link(&mut adj, a, b);
                }
            }
        }
        Topology::Ring => {
            for a in 0..n {
                link(&mut adj, a, (a + 1) % n);
            }
        }
        Topology::KRegular { k } => {
            assert!(k >= 2, "k-regular needs k >= 2, got {k}");
            for a in 0..n {
                link(&mut adj, a, (a + 1) % n);
            }
            if n > 2 {
                for a in 0..n {
                    while adj[a].len() < k.min(n - 1) {
                        let b = rng.below(n as u64) as usize;
                        link(&mut adj, a, b);
                    }
                }
            }
        }
        Topology::ErdosRenyi { p } => {
            for a in 0..n {
                link(&mut adj, a, (a + 1) % n);
            }
            for a in 0..n {
                for b in (a + 1)..n {
                    if rng.chance(p) {
                        link(&mut adj, a, b);
                    }
                }
            }
        }
        Topology::Star => {
            for b in 1..n {
                link(&mut adj, 0, b);
            }
        }
    }
    adj.into_iter()
        .map(|set| set.into_iter().map(NodeId).collect())
        .collect()
}

/// Breadth-first check that every node can reach every other.
pub fn is_connected(adj: &[Vec<NodeId>]) -> bool {
    if adj.is_empty() {
        return true;
    }
    let mut seen = vec![false; adj.len()];
    let mut queue = std::collections::VecDeque::from([0usize]);
    seen[0] = true;
    let mut count = 1;
    while let Some(a) = queue.pop_front() {
        for &NodeId(b) in &adj[a] {
            if !seen[b] {
                seen[b] = true;
                count += 1;
                queue.push_back(b);
            }
        }
    }
    count == adj.len()
}

/// The overlay diameter (longest shortest path); `usize::MAX` when
/// disconnected. Used to relate propagation delay to topology in E2.
pub fn diameter(adj: &[Vec<NodeId>]) -> usize {
    let n = adj.len();
    let mut best = 0;
    for start in 0..n {
        let mut dist = vec![usize::MAX; n];
        dist[start] = 0;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(a) = queue.pop_front() {
            for &NodeId(b) in &adj[a] {
                if dist[b] == usize::MAX {
                    dist[b] = dist[a] + 1;
                    queue.push_back(b);
                }
            }
        }
        let far = dist.into_iter().max().unwrap_or(0);
        if far == usize::MAX {
            return usize::MAX;
        }
        best = best.max(far);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::seed_from(99)
    }

    #[test]
    fn complete_topology() {
        let adj = build(Topology::Complete, 5, &mut rng());
        assert!(adj.iter().all(|nbrs| nbrs.len() == 4));
        assert!(is_connected(&adj));
        assert_eq!(diameter(&adj), 1);
    }

    #[test]
    fn ring_topology() {
        let adj = build(Topology::Ring, 6, &mut rng());
        assert!(adj.iter().all(|nbrs| nbrs.len() == 2));
        assert_eq!(diameter(&adj), 3);
    }

    #[test]
    fn k_regular_is_connected_with_degree_at_least_k() {
        let adj = build(Topology::KRegular { k: 4 }, 50, &mut rng());
        assert!(is_connected(&adj));
        assert!(adj.iter().all(|nbrs| nbrs.len() >= 4));
        // No self links, no duplicates (BTreeSet guarantees, but verify).
        for (a, nbrs) in adj.iter().enumerate() {
            assert!(!nbrs.contains(&NodeId(a)));
            let mut d = nbrs.clone();
            d.dedup();
            assert_eq!(d.len(), nbrs.len());
        }
    }

    #[test]
    fn k_regular_symmetric() {
        let adj = build(Topology::KRegular { k: 3 }, 20, &mut rng());
        for (a, nbrs) in adj.iter().enumerate() {
            for b in nbrs {
                assert!(adj[b.0].contains(&NodeId(a)), "link {a}-{b} not symmetric");
            }
        }
    }

    #[test]
    fn erdos_renyi_connected_even_at_p_zero() {
        let adj = build(Topology::ErdosRenyi { p: 0.0 }, 12, &mut rng());
        assert!(is_connected(&adj), "ring substrate keeps it connected");
    }

    #[test]
    fn star_topology() {
        let adj = build(Topology::Star, 9, &mut rng());
        assert_eq!(adj[0].len(), 8);
        assert!(adj[1..].iter().all(|nbrs| *nbrs == vec![NodeId(0)]));
        assert_eq!(diameter(&adj), 2);
    }

    #[test]
    fn single_node_graphs() {
        for t in [Topology::Complete, Topology::Ring, Topology::Star] {
            let adj = build(t, 1, &mut rng());
            assert!(adj[0].is_empty());
            assert!(is_connected(&adj));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = build(Topology::KRegular { k: 4 }, 30, &mut Rng::seed_from(5));
        let b = build(Topology::KRegular { k: 4 }, 30, &mut Rng::seed_from(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn k_too_small_panics() {
        build(Topology::KRegular { k: 1 }, 5, &mut rng());
    }
}
